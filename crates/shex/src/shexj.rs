//! ShExJ — the JSON interchange form of schemas.
//!
//! Real ShEx tooling (shex.js, PyShEx, shex-scala — the implementations
//! around the paper) exchanges schemas as JSON. This module maps our
//! Regular Shape Expression AST to a ShExJ-style document and back:
//!
//! ```json
//! {
//!   "type": "Schema",
//!   "start": "Person",
//!   "shapes": [
//!     { "type": "Shape", "id": "Person", "expression": {
//!         "type": "EachOf", "expressions": [
//!           { "type": "TripleConstraint",
//!             "predicate": "http://xmlns.com/foaf/0.1/age",
//!             "valueExpr": { "type": "NodeConstraint",
//!                            "datatype": "http://www.w3.org/2001/XMLSchema#integer" } },
//!           ...
//!         ] } }
//!   ]
//! }
//! ```
//!
//! Cardinalities ride on the constrained expression as `min` / `max`
//! (`-1` = unbounded), as in ShExJ. Constructs specific to the paper
//! (`∅`, explicit `ε`, the `NOT` extension) use `"type"` values of
//! `"Empty"`, `"Epsilon"`, and `"Not"`.
//!
//! Round-trip guarantee: `to_json` output is canonical — cardinality
//! sugar normalises (`{0,∞}` → `*` etc.), so
//! `to_json(from_json(to_json(s))) == to_json(s)` (property-tested).

use serde_json::{json, Map, Value};

use crate::ast::{ArcConstraint, ObjectConstraint, PredicateSet, ShapeExpr, ShapeLabel};
use crate::constraint::{Facet, NodeConstraint, NodeKind, ValueSetValue};
use crate::schema::{Schema, SchemaError};
use shapex_rdf::term::{Literal, Term};
use shapex_rdf::xsd::Numeric;

/// Errors when reading a ShExJ document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShexjError {
    /// The input is not syntactically valid JSON.
    Json(String),
    /// The JSON does not follow the expected ShExJ structure.
    Structure(String),
    /// The decoded schema is ill-formed (duplicate labels, dangling refs).
    Schema(String),
}

impl std::fmt::Display for ShexjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShexjError::Json(m) => write!(f, "invalid JSON: {m}"),
            ShexjError::Structure(m) => write!(f, "invalid ShExJ: {m}"),
            ShexjError::Schema(m) => write!(f, "invalid schema: {m}"),
        }
    }
}

impl std::error::Error for ShexjError {}

impl From<SchemaError> for ShexjError {
    fn from(e: SchemaError) -> Self {
        ShexjError::Schema(e.to_string())
    }
}

/// Serializes a schema to a ShExJ JSON string (pretty-printed).
pub fn to_json(schema: &Schema) -> String {
    let mut doc = Map::new();
    doc.insert("type".into(), json!("Schema"));
    if let Some(start) = schema.start() {
        doc.insert("start".into(), json!(start.as_str()));
    }
    let shapes: Vec<Value> = schema
        .iter()
        .map(|(label, expr)| {
            json!({
                "type": "Shape",
                "id": label.as_str(),
                "expression": expr_to_json(expr),
            })
        })
        .collect();
    doc.insert("shapes".into(), Value::Array(shapes));
    serde_json::to_string_pretty(&Value::Object(doc)).expect("valid JSON value")
}

/// Parses a ShExJ JSON string into a schema.
pub fn from_json(input: &str) -> Result<Schema, ShexjError> {
    let value: Value = serde_json::from_str(input).map_err(|e| ShexjError::Json(e.to_string()))?;
    let obj = expect_obj(&value, "Schema")?;
    let mut schema = Schema::new();
    if let Some(start) = obj.get("start") {
        let start = start
            .as_str()
            .ok_or_else(|| ShexjError::Structure("start must be a string".into()))?;
        schema.set_start(ShapeLabel::new(start));
    }
    let shapes = obj
        .get("shapes")
        .and_then(Value::as_array)
        .ok_or_else(|| ShexjError::Structure("missing shapes array".into()))?;
    for shape in shapes {
        let shape = expect_obj(shape, "Shape")?;
        let id = shape
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| ShexjError::Structure("shape missing id".into()))?;
        let expr = match shape.get("expression") {
            Some(e) => expr_from_json(e)?,
            None => ShapeExpr::Epsilon,
        };
        schema.add_shape(ShapeLabel::new(id), expr)?;
    }
    schema.check_references()?;
    Ok(schema)
}

fn expect_obj<'a>(v: &'a Value, ty: &str) -> Result<&'a Map<String, Value>, ShexjError> {
    let obj = v
        .as_object()
        .ok_or_else(|| ShexjError::Structure(format!("expected {ty} object")))?;
    match obj.get("type").and_then(Value::as_str) {
        Some(t) if t == ty => Ok(obj),
        Some(t) => Err(ShexjError::Structure(format!(
            "expected type {ty}, found {t}"
        ))),
        None => Err(ShexjError::Structure(format!("{ty} object missing type"))),
    }
}

// ---- expressions ----

fn expr_to_json(expr: &ShapeExpr) -> Value {
    match expr {
        ShapeExpr::Empty => json!({"type": "Empty"}),
        ShapeExpr::Epsilon => json!({"type": "Epsilon"}),
        ShapeExpr::Arc(arc) => arc_to_json(arc),
        ShapeExpr::Star(e) => with_cardinality(expr_to_json(e), 0, -1),
        ShapeExpr::Plus(e) => with_cardinality(expr_to_json(e), 1, -1),
        ShapeExpr::Opt(e) => with_cardinality(expr_to_json(e), 0, 1),
        // `e{1,1}` is `e` — canonicalised so decode(encode(x)) re-encodes
        // identically (the fixpoint property).
        ShapeExpr::Repeat(e, 1, Some(1)) => expr_to_json(e),
        ShapeExpr::Repeat(e, min, max) => {
            with_cardinality(expr_to_json(e), *min as i64, max.map_or(-1, |m| m as i64))
        }
        ShapeExpr::And(_, _) => {
            let mut items = Vec::new();
            flatten(expr, true, &mut items);
            json!({"type": "EachOf", "expressions": items})
        }
        ShapeExpr::Or(_, _) => {
            let mut items = Vec::new();
            flatten(expr, false, &mut items);
            json!({"type": "OneOf", "expressions": items})
        }
    }
}

/// Flattens an And/Or spine into ShExJ's n-ary EachOf/OneOf.
fn flatten(expr: &ShapeExpr, and: bool, out: &mut Vec<Value>) {
    match (expr, and) {
        (ShapeExpr::And(a, b), true) => {
            flatten(a, and, out);
            flatten(b, and, out);
        }
        (ShapeExpr::Or(a, b), false) => {
            flatten(a, and, out);
            flatten(b, and, out);
        }
        _ => out.push(expr_to_json(expr)),
    }
}

/// Attaches `min`/`max` to an expression object; when the object already
/// carries a cardinality (nested, e.g. `(e{2}){3}`), wraps it in a
/// one-element EachOf first, as ShExJ has no double cardinality.
fn with_cardinality(v: Value, min: i64, max: i64) -> Value {
    let mut obj = match v {
        Value::Object(o) if !o.contains_key("min") && !o.contains_key("max") => o,
        other => {
            let mut wrapper = Map::new();
            wrapper.insert("type".into(), json!("EachOf"));
            wrapper.insert("expressions".into(), Value::Array(vec![other]));
            wrapper
        }
    };
    obj.insert("min".into(), json!(min));
    obj.insert("max".into(), json!(max));
    Value::Object(obj)
}

fn arc_to_json(arc: &ArcConstraint) -> Value {
    let mut obj = Map::new();
    obj.insert("type".into(), json!("TripleConstraint"));
    match &arc.predicates {
        PredicateSet::Any => {
            obj.insert("predicateWildcard".into(), json!(true));
        }
        PredicateSet::Iris(iris) if iris.len() == 1 => {
            obj.insert("predicate".into(), json!(&*iris[0]));
        }
        PredicateSet::Iris(iris) => {
            obj.insert(
                "predicates".into(),
                Value::Array(iris.iter().map(|i| json!(&**i)).collect()),
            );
        }
    }
    if arc.inverse {
        obj.insert("inverse".into(), json!(true));
    }
    match &arc.object {
        ObjectConstraint::Ref(l) => {
            obj.insert(
                "valueExpr".into(),
                json!({"type": "ShapeRef", "reference": l.as_str()}),
            );
        }
        ObjectConstraint::Value(NodeConstraint::Any) => {} // omitted = any
        ObjectConstraint::Value(c) => {
            obj.insert("valueExpr".into(), constraint_to_json(c));
        }
    }
    Value::Object(obj)
}

fn expr_from_json(v: &Value) -> Result<ShapeExpr, ShexjError> {
    let obj = v
        .as_object()
        .ok_or_else(|| ShexjError::Structure("expected expression object".into()))?;
    let ty = obj
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| ShexjError::Structure("expression missing type".into()))?;
    let base = match ty {
        "Empty" => ShapeExpr::Empty,
        "Epsilon" => ShapeExpr::Epsilon,
        "TripleConstraint" => arc_from_json(obj)?,
        "EachOf" | "OneOf" => {
            let items = obj
                .get("expressions")
                .and_then(Value::as_array)
                .ok_or_else(|| ShexjError::Structure(format!("{ty} missing expressions")))?;
            let exprs: Result<Vec<_>, _> = items.iter().map(expr_from_json).collect();
            if ty == "EachOf" {
                ShapeExpr::and_all(exprs?)
            } else {
                ShapeExpr::or_all(exprs?)
            }
        }
        other => {
            return Err(ShexjError::Structure(format!(
                "unknown expression type {other}"
            )))
        }
    };
    // Cardinality riding on the object?
    let min = obj.get("min").and_then(Value::as_i64);
    let max = obj.get("max").and_then(Value::as_i64);
    match (min, max) {
        (None, None) => Ok(base),
        (min, max) => {
            let min = min.unwrap_or(1);
            let max = max.unwrap_or(1);
            if min < 0 || (max < -1) || (max != -1 && max < min) {
                return Err(ShexjError::Structure(format!(
                    "invalid cardinality {{{min},{max}}}"
                )));
            }
            Ok(match (min, max) {
                (1, 1) => base,
                (0, -1) => ShapeExpr::star(base),
                (1, -1) => ShapeExpr::plus(base),
                (0, 1) => ShapeExpr::opt(base),
                (m, -1) => ShapeExpr::repeat(base, m as u32, None),
                (m, n) => ShapeExpr::repeat(base, m as u32, Some(n as u32)),
            })
        }
    }
}

fn arc_from_json(obj: &Map<String, Value>) -> Result<ShapeExpr, ShexjError> {
    let predicates = if obj.get("predicateWildcard").and_then(Value::as_bool) == Some(true) {
        PredicateSet::Any
    } else if let Some(p) = obj.get("predicate").and_then(Value::as_str) {
        PredicateSet::one(p)
    } else if let Some(list) = obj.get("predicates").and_then(Value::as_array) {
        let iris: Result<Vec<Box<str>>, _> = list
            .iter()
            .map(|p| {
                p.as_str()
                    .map(Box::from)
                    .ok_or_else(|| ShexjError::Structure("predicate must be a string".into()))
            })
            .collect();
        PredicateSet::Iris(iris?)
    } else {
        return Err(ShexjError::Structure(
            "TripleConstraint missing predicate".into(),
        ));
    };
    let object = match obj.get("valueExpr") {
        None => ObjectConstraint::Value(NodeConstraint::Any),
        Some(v) => {
            let vo = v
                .as_object()
                .ok_or_else(|| ShexjError::Structure("valueExpr must be an object".into()))?;
            match vo.get("type").and_then(Value::as_str) {
                Some("ShapeRef") => {
                    let r = vo.get("reference").and_then(Value::as_str).ok_or_else(|| {
                        ShexjError::Structure("ShapeRef missing reference".into())
                    })?;
                    ObjectConstraint::Ref(ShapeLabel::new(r))
                }
                _ => ObjectConstraint::Value(constraint_from_json(v)?),
            }
        }
    };
    let mut arc = ArcConstraint::new(predicates, object);
    arc.inverse = obj.get("inverse").and_then(Value::as_bool) == Some(true);
    Ok(ShapeExpr::Arc(arc))
}

// ---- node constraints ----

fn constraint_to_json(c: &NodeConstraint) -> Value {
    match c {
        NodeConstraint::Not(inner) => {
            json!({"type": "Not", "shapeExpr": constraint_to_json(inner)})
        }
        _ => {
            let mut obj = Map::new();
            obj.insert("type".into(), json!("NodeConstraint"));
            fill_constraint(c, &mut obj);
            Value::Object(obj)
        }
    }
}

/// Writes one constraint's fields; `AllOf` merges its members into the
/// same NodeConstraint object (ShExJ style: nodeKind + datatype + facets
/// coexist as fields).
fn fill_constraint(c: &NodeConstraint, obj: &mut Map<String, Value>) {
    match c {
        NodeConstraint::Any => {}
        NodeConstraint::Kind(k) => {
            let name = match k {
                NodeKind::Iri => "iri",
                NodeKind::BNode => "bnode",
                NodeKind::Literal => "literal",
                NodeKind::NonLiteral => "nonliteral",
            };
            obj.insert("nodeKind".into(), json!(name));
        }
        NodeConstraint::Datatype(dt) => {
            obj.insert("datatype".into(), json!(&**dt));
        }
        NodeConstraint::ValueSet(vs) => {
            obj.insert(
                "values".into(),
                Value::Array(vs.iter().map(value_to_json).collect()),
            );
        }
        NodeConstraint::Facet(f) => {
            let (key, value) = facet_to_json(f);
            obj.insert(key.into(), value);
        }
        NodeConstraint::AllOf(cs) => {
            for inner in cs {
                fill_constraint(inner, obj);
            }
        }
        NodeConstraint::AnyOf(cs) => {
            // Dialect extension (like "not" below): ShExJ proper spells
            // value disjunction as a ShapeOr of constraints.
            obj.insert(
                "anyOf".into(),
                Value::Array(cs.iter().map(constraint_to_json).collect()),
            );
        }
        NodeConstraint::Not(_) => {
            // handled by constraint_to_json; nested Not inside AllOf keeps
            // its own wrapper object under "not".
            obj.insert("not".into(), constraint_to_json(c));
        }
    }
}

fn facet_to_json(f: &Facet) -> (&'static str, Value) {
    fn num(n: &Numeric) -> Value {
        match n {
            Numeric::Decimal { unscaled, scale: 0 } => json!(*unscaled as i64),
            Numeric::Decimal { unscaled, scale } => {
                json!(*unscaled as f64 / 10f64.powi(*scale as i32))
            }
            Numeric::Double(d) => json!(d),
        }
    }
    match f {
        Facet::MinInclusive(n) => ("mininclusive", num(n)),
        Facet::MinExclusive(n) => ("minexclusive", num(n)),
        Facet::MaxInclusive(n) => ("maxinclusive", num(n)),
        Facet::MaxExclusive(n) => ("maxexclusive", num(n)),
        Facet::Length(n) => ("length", json!(n)),
        Facet::MinLength(n) => ("minlength", json!(n)),
        Facet::MaxLength(n) => ("maxlength", json!(n)),
        Facet::Pattern(p) => ("pattern", json!(&**p)),
    }
}

fn value_to_json(v: &ValueSetValue) -> Value {
    match v {
        ValueSetValue::Term(Term::Iri(iri)) => json!(iri.as_str()),
        ValueSetValue::Term(Term::Literal(l)) => {
            let mut obj = Map::new();
            obj.insert("value".into(), json!(l.lexical_form()));
            if let Some(lang) = l.language() {
                obj.insert("language".into(), json!(lang));
            } else if l.datatype() != shapex_rdf::vocab::xsd::STRING {
                obj.insert("type".into(), json!(l.datatype()));
            }
            Value::Object(obj)
        }
        ValueSetValue::Term(Term::BlankNode(b)) => {
            json!({"type": "BNode", "label": b.label()})
        }
        ValueSetValue::IriStem(s) => json!({"type": "IriStem", "stem": &**s}),
        ValueSetValue::Language(t) => json!({"type": "Language", "languageTag": &**t}),
        ValueSetValue::LanguageStem(t) => {
            json!({"type": "LanguageStem", "stem": &**t})
        }
    }
}

fn constraint_from_json(v: &Value) -> Result<NodeConstraint, ShexjError> {
    let obj = v
        .as_object()
        .ok_or_else(|| ShexjError::Structure("expected constraint object".into()))?;
    if obj.get("type").and_then(Value::as_str) == Some("Not") {
        let inner = obj
            .get("shapeExpr")
            .ok_or_else(|| ShexjError::Structure("Not missing shapeExpr".into()))?;
        return Ok(NodeConstraint::Not(Box::new(constraint_from_json(inner)?)));
    }
    let mut parts: Vec<NodeConstraint> = Vec::new();
    if let Some(kind) = obj.get("nodeKind").and_then(Value::as_str) {
        let k = match kind {
            "iri" => NodeKind::Iri,
            "bnode" => NodeKind::BNode,
            "literal" => NodeKind::Literal,
            "nonliteral" => NodeKind::NonLiteral,
            other => return Err(ShexjError::Structure(format!("unknown nodeKind {other}"))),
        };
        parts.push(NodeConstraint::Kind(k));
    }
    if let Some(dt) = obj.get("datatype").and_then(Value::as_str) {
        parts.push(NodeConstraint::Datatype(dt.into()));
    }
    if let Some(values) = obj.get("values").and_then(Value::as_array) {
        let vs: Result<Vec<_>, _> = values.iter().map(value_from_json).collect();
        parts.push(NodeConstraint::ValueSet(vs?));
    }
    for (key, build) in FACET_KEYS {
        if let Some(raw) = obj.get(*key) {
            parts.push(NodeConstraint::Facet(build(raw)?));
        }
    }
    if let Some(not) = obj.get("not") {
        parts.push(constraint_from_json(not)?);
    }
    if let Some(any) = obj.get("anyOf").and_then(Value::as_array) {
        let members: Result<Vec<_>, _> = any.iter().map(constraint_from_json).collect();
        parts.push(NodeConstraint::AnyOf(members?));
    }
    Ok(match parts.len() {
        0 => NodeConstraint::Any,
        1 => parts.pop().expect("one element"),
        _ => NodeConstraint::AllOf(parts),
    })
}

type FacetBuilder = fn(&Value) -> Result<Facet, ShexjError>;

fn numeric_facet(v: &Value) -> Result<Numeric, ShexjError> {
    if let Some(i) = v.as_i64() {
        return Ok(Numeric::integer(i as i128));
    }
    if let Some(f) = v.as_f64() {
        return Ok(Numeric::Double(f));
    }
    Err(ShexjError::Structure(
        "numeric facet must be a number".into(),
    ))
}

fn usize_facet(v: &Value) -> Result<usize, ShexjError> {
    v.as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| ShexjError::Structure("length facet must be a non-negative integer".into()))
}

const FACET_KEYS: &[(&str, FacetBuilder)] = &[
    ("mininclusive", |v| {
        Ok(Facet::MinInclusive(numeric_facet(v)?))
    }),
    ("minexclusive", |v| {
        Ok(Facet::MinExclusive(numeric_facet(v)?))
    }),
    ("maxinclusive", |v| {
        Ok(Facet::MaxInclusive(numeric_facet(v)?))
    }),
    ("maxexclusive", |v| {
        Ok(Facet::MaxExclusive(numeric_facet(v)?))
    }),
    ("length", |v| Ok(Facet::Length(usize_facet(v)?))),
    ("minlength", |v| Ok(Facet::MinLength(usize_facet(v)?))),
    ("maxlength", |v| Ok(Facet::MaxLength(usize_facet(v)?))),
    ("pattern", |v| {
        v.as_str()
            .map(|s| Facet::Pattern(s.into()))
            .ok_or_else(|| ShexjError::Structure("pattern must be a string".into()))
    }),
];

fn value_from_json(v: &Value) -> Result<ValueSetValue, ShexjError> {
    if let Some(iri) = v.as_str() {
        return Ok(ValueSetValue::Term(Term::iri(iri)));
    }
    let obj = v
        .as_object()
        .ok_or_else(|| ShexjError::Structure("value must be a string or object".into()))?;
    match obj.get("type").and_then(Value::as_str) {
        Some("IriStem") => {
            let stem = obj
                .get("stem")
                .and_then(Value::as_str)
                .ok_or_else(|| ShexjError::Structure("IriStem missing stem".into()))?;
            Ok(ValueSetValue::IriStem(stem.into()))
        }
        Some("Language") => {
            let tag = obj
                .get("languageTag")
                .and_then(Value::as_str)
                .ok_or_else(|| ShexjError::Structure("Language missing languageTag".into()))?;
            Ok(ValueSetValue::Language(tag.into()))
        }
        Some("LanguageStem") => {
            let stem = obj
                .get("stem")
                .and_then(Value::as_str)
                .ok_or_else(|| ShexjError::Structure("LanguageStem missing stem".into()))?;
            Ok(ValueSetValue::LanguageStem(stem.into()))
        }
        Some("BNode") => {
            let label = obj
                .get("label")
                .and_then(Value::as_str)
                .ok_or_else(|| ShexjError::Structure("BNode missing label".into()))?;
            Ok(ValueSetValue::Term(Term::blank(label)))
        }
        _ => {
            // ObjectLiteral: { value, type?, language? }
            let lexical = obj
                .get("value")
                .and_then(Value::as_str)
                .ok_or_else(|| ShexjError::Structure("literal value missing".into()))?;
            if let Some(lang) = obj.get("language").and_then(Value::as_str) {
                return Ok(ValueSetValue::Term(Term::Literal(Literal::lang_string(
                    lexical, lang,
                ))));
            }
            if let Some(dt) = obj.get("type").and_then(Value::as_str) {
                return Ok(ValueSetValue::Term(Term::Literal(Literal::typed(
                    lexical, dt,
                ))));
            }
            Ok(ValueSetValue::Term(Term::Literal(Literal::string(lexical))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shexc;

    const PERSON: &str = r#"
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
        start = @<Person>
        <Person> {
          foaf:age xsd:integer
          , foaf:name xsd:string+
          , foaf:knows @<Person>*
        }
    "#;

    #[test]
    fn person_schema_roundtrips() {
        let schema = shexc::parse(PERSON).unwrap();
        let j = to_json(&schema);
        assert!(j.contains("\"type\": \"Schema\""), "{j}");
        assert!(j.contains("TripleConstraint"), "{j}");
        assert!(j.contains("ShapeRef"), "{j}");
        let back = from_json(&j).unwrap();
        assert_eq!(back.start().unwrap().as_str(), "Person");
        // Canonical fixpoint: serialize(parse(serialize(x))) == serialize(x)
        assert_eq!(to_json(&back), j);
        // And the round-tripped schema is structurally identical here
        // (Person uses only canonical cardinalities).
        assert_eq!(schema.get(&"Person".into()), back.get(&"Person".into()));
    }

    #[test]
    fn cardinalities_roundtrip() {
        let schema =
            shexc::parse("PREFIX e: <http://e/>\n<S> { e:a .{2,5}, e:b .{3,}, e:c .?, e:d .{4} }")
                .unwrap();
        let j = to_json(&schema);
        let back = from_json(&j).unwrap();
        assert_eq!(schema.get(&"S".into()), back.get(&"S".into()), "{j}");
    }

    #[test]
    fn nested_cardinality_wraps() {
        let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { (e:a .{2})+ }").unwrap();
        let j = to_json(&schema);
        assert!(j.contains("EachOf"), "{j}");
        let back = from_json(&j).unwrap();
        // Fixpoint, not structural equality (the wrapper normalises).
        assert_eq!(to_json(&back), j);
    }

    #[test]
    fn constraints_roundtrip() {
        let schema = shexc::parse(
            r#"
            PREFIX e: <http://e/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <S> {
              e:v [1 "x" "t"@en <http://e/i> <http://e/stem>~ @fr @de~],
              e:n xsd:integer MININCLUSIVE 0 MAXEXCLUSIVE 150,
              e:k NOT LITERAL,
              e:p PATTERN "[a-z]+",
              e:l LITERAL MINLENGTH 2 MAXLENGTH 10,
              ^e:inv IRI
            }
            "#,
        )
        .unwrap();
        let j = to_json(&schema);
        let back = from_json(&j).unwrap();
        assert_eq!(schema.get(&"S".into()), back.get(&"S".into()), "{j}");
    }

    #[test]
    fn alternatives_roundtrip() {
        let schema =
            shexc::parse("PREFIX e: <http://e/>\n<S> { e:a [1] | e:b [2] | e:c [3] }").unwrap();
        let j = to_json(&schema);
        assert!(j.contains("OneOf"), "{j}");
        let back = from_json(&j).unwrap();
        assert_eq!(schema.get(&"S".into()), back.get(&"S".into()));
    }

    #[test]
    fn empty_shape_roundtrips() {
        let schema = shexc::parse("<S> { }").unwrap();
        let back = from_json(&to_json(&schema)).unwrap();
        assert_eq!(back.get(&"S".into()), Some(&ShapeExpr::Epsilon));
    }

    #[test]
    fn structural_errors() {
        assert!(matches!(from_json("not json"), Err(ShexjError::Json(_))));
        assert!(matches!(
            from_json("{\"type\": \"NotASchema\", \"shapes\": []}"),
            Err(ShexjError::Structure(_))
        ));
        assert!(matches!(
            from_json("{\"type\": \"Schema\"}"),
            Err(ShexjError::Structure(_))
        ));
        // dangling reference
        let bad = r#"{"type":"Schema","shapes":[
            {"type":"Shape","id":"S","expression":
              {"type":"TripleConstraint","predicate":"http://e/p",
               "valueExpr":{"type":"ShapeRef","reference":"Missing"}}}]}"#;
        assert!(matches!(from_json(bad), Err(ShexjError::Schema(_))));
        // invalid cardinality
        let bad = r#"{"type":"Schema","shapes":[
            {"type":"Shape","id":"S","expression":
              {"type":"TripleConstraint","predicate":"http://e/p",
               "min":3,"max":1}}]}"#;
        assert!(matches!(from_json(bad), Err(ShexjError::Structure(_))));
    }

    #[test]
    fn validation_agrees_after_json_roundtrip() {
        // ShExJ carries no prefix table, so compare the shape bodies
        // (the semantics), not the prefix declarations.
        let schema = shexc::parse(PERSON).unwrap();
        let back = from_json(&to_json(&schema)).unwrap();
        for (label, expr) in schema.iter() {
            assert_eq!(Some(expr), back.get(label));
        }
    }
}

#![warn(missing_docs)]
//! # shapex-shex
//!
//! Regular Shape Expressions (the paper's §4 algebra and §8 schemas), node
//! constraints, the ShExC compact-syntax parser, a pretty-printer, and the
//! Brzozowski string-regex engine backing the `PATTERN` facet.
//!
//! ```
//! use shapex_shex::shexc;
//!
//! let schema = shexc::parse(r#"
//!     PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//!     PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
//!     <Person> {
//!       foaf:age xsd:integer
//!       , foaf:name xsd:string+
//!       , foaf:knows @<Person>*
//!     }
//! "#).unwrap();
//! assert!(schema.is_recursive(&"Person".into()));
//! ```

pub mod ast;
pub mod constraint;
pub mod display;
pub mod lints;
pub mod sat;
pub mod schema;
pub mod shapemap;
pub mod shexc;
pub mod shexj;
pub mod strre;

pub use ast::{ArcConstraint, ObjectConstraint, PredicateSet, ShapeExpr, ShapeLabel};
pub use constraint::{Facet, NodeConstraint, NodeKind, ValueSetValue};
pub use sat::{conj_sat, constraint_sat, Sat3};
pub use schema::{Schema, SchemaError};
pub use shapemap::{Association, ShapeMap};

//! Node constraints: the object value sets `vo ⊆ Vo` of arc constraints.
//!
//! The paper treats `vo` abstractly as a subset of `Vo` and instantiates it
//! with datatype subsets of `L` ("we can consider xsd:int and xsd:string as
//! subsets of L", Example 6) and with explicit value sets (`{1, 2}` in
//! Example 5). This module gives those subsets a concrete, composable
//! syntax mirroring ShEx: node kinds, datatypes, value sets (with stems),
//! numeric and string facets, conjunction, and — as the §10 extension —
//! negation.

use std::cmp::Ordering;
use std::fmt;

use shapex_rdf::term::Term;
use shapex_rdf::vocab::{rdf, xsd};
use shapex_rdf::xsd::{is_valid_lexical, Numeric};

use crate::strre::Regex;

/// The four ShEx node kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An IRI.
    Iri,
    /// A blank node.
    BNode,
    /// A literal.
    Literal,
    /// An IRI or blank node.
    NonLiteral,
}

impl NodeKind {
    /// Does `term` have this kind?
    pub fn matches(self, term: &Term) -> bool {
        match self {
            NodeKind::Iri => term.is_iri(),
            NodeKind::BNode => term.is_blank(),
            NodeKind::Literal => term.is_literal(),
            NodeKind::NonLiteral => !term.is_literal(),
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeKind::Iri => "IRI",
            NodeKind::BNode => "BNODE",
            NodeKind::Literal => "LITERAL",
            NodeKind::NonLiteral => "NONLITERAL",
        })
    }
}

/// One member of a value set `[ ... ]`.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSetValue {
    /// An exact term (IRI or literal).
    Term(Term),
    /// An IRI stem `<http://e/ns>~`: any IRI starting with the stem.
    IriStem(Box<str>),
    /// A language tag `@en`: any langString with exactly that tag
    /// (compared case-insensitively).
    Language(Box<str>),
    /// A language stem `@en~`: tag equal to or prefixed by `stem-`.
    LanguageStem(Box<str>),
}

impl ValueSetValue {
    /// Does `term` belong to this value-set member?
    pub fn matches(&self, term: &Term) -> bool {
        match self {
            ValueSetValue::Term(t) => t == term,
            ValueSetValue::IriStem(stem) => term
                .as_iri()
                .is_some_and(|iri| iri.as_str().starts_with(&**stem)),
            ValueSetValue::Language(tag) => term.as_literal().is_some_and(|l| {
                l.language()
                    .is_some_and(|lang| lang.eq_ignore_ascii_case(tag))
            }),
            ValueSetValue::LanguageStem(stem) => term.as_literal().is_some_and(|l| {
                l.language().is_some_and(|lang| {
                    let lang = lang.to_ascii_lowercase();
                    let stem = stem.to_ascii_lowercase();
                    lang == stem || lang.starts_with(&format!("{stem}-"))
                })
            }),
        }
    }
}

/// A string or numeric facet, refining a node constraint (ShEx-style;
/// these are the "predicates" the paper's §10 names as extensions).
#[derive(Debug, Clone, PartialEq)]
pub enum Facet {
    /// Numeric `≥` bound.
    MinInclusive(Numeric),
    /// Numeric `>` bound.
    MinExclusive(Numeric),
    /// Numeric `≤` bound.
    MaxInclusive(Numeric),
    /// Numeric `<` bound.
    MaxExclusive(Numeric),
    /// Exact length in characters of the lexical form / IRI / bnode label.
    Length(usize),
    /// Minimum length in characters.
    MinLength(usize),
    /// Maximum length in characters.
    MaxLength(usize),
    /// Full-match regular expression over the string value, evaluated with
    /// the Brzozowski engine in [`crate::strre`].
    Pattern(Box<str>),
}

impl Facet {
    /// Does `term` satisfy this facet?
    pub fn matches(&self, term: &Term) -> bool {
        match self {
            Facet::MinInclusive(b) => cmp_numeric(term, b, &[Ordering::Greater, Ordering::Equal]),
            Facet::MinExclusive(b) => cmp_numeric(term, b, &[Ordering::Greater]),
            Facet::MaxInclusive(b) => cmp_numeric(term, b, &[Ordering::Less, Ordering::Equal]),
            Facet::MaxExclusive(b) => cmp_numeric(term, b, &[Ordering::Less]),
            Facet::Length(n) => string_value(term).chars().count() == *n,
            Facet::MinLength(n) => string_value(term).chars().count() >= *n,
            Facet::MaxLength(n) => string_value(term).chars().count() <= *n,
            Facet::Pattern(p) => match Regex::new(p) {
                Ok(re) => re.is_match(string_value(term)),
                Err(_) => false, // invalid patterns match nothing
            },
        }
    }
}

/// The string a string facet inspects: lexical form for literals, the IRI
/// text for IRIs, the label for blank nodes (ShEx semantics).
fn string_value(term: &Term) -> &str {
    match term {
        Term::Iri(i) => i.as_str(),
        Term::BlankNode(b) => b.label(),
        Term::Literal(l) => l.lexical_form(),
    }
}

fn cmp_numeric(term: &Term, bound: &Numeric, accept: &[Ordering]) -> bool {
    let Some(lit) = term.as_literal() else {
        return false;
    };
    let Some(value) = Numeric::of_literal(lit) else {
        return false;
    };
    value
        .compare(*bound)
        .is_some_and(|ord| accept.contains(&ord))
}

/// A node constraint — a decidable subset of `Vo`.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeConstraint {
    /// `.` — any term at all.
    Any,
    /// `IRI` / `BNODE` / `LITERAL` / `NONLITERAL`.
    Kind(NodeKind),
    /// A datatype IRI: literals whose declared datatype is exactly this IRI
    /// *and* whose lexical form is valid for it. `xsd:string` additionally
    /// accepts plain literals; language-tagged strings only match
    /// `rdf:langString`.
    Datatype(Box<str>),
    /// A value set `[v1 v2 ...]`: any member matching.
    ValueSet(Vec<ValueSetValue>),
    /// A single facet.
    Facet(Facet),
    /// Conjunction, e.g. `xsd:integer MININCLUSIVE 0`.
    AllOf(Vec<NodeConstraint>),
    /// Disjunction: any member matching. Not produced by the ShExC parser
    /// (ShEx spells value disjunction as shape `OR`); the SHACL front-end
    /// compiles `sh:or` over value-testable shapes to this.
    AnyOf(Vec<NodeConstraint>),
    /// Negation (§10 extension): `NOT <constraint>`.
    Not(Box<NodeConstraint>),
}

impl NodeConstraint {
    /// Convenience: `datatype ∧ facets`.
    pub fn datatype_with(datatype: impl Into<Box<str>>, facets: Vec<Facet>) -> Self {
        let mut all = vec![NodeConstraint::Datatype(datatype.into())];
        all.extend(facets.into_iter().map(NodeConstraint::Facet));
        if all.len() == 1 {
            all.pop().expect("one element")
        } else {
            NodeConstraint::AllOf(all)
        }
    }

    /// The membership test `o ∈ vo` (paper Fig. 1, rule *Arc*).
    pub fn matches(&self, term: &Term) -> bool {
        match self {
            NodeConstraint::Any => true,
            NodeConstraint::Kind(k) => k.matches(term),
            NodeConstraint::Datatype(dt) => datatype_matches(dt, term),
            NodeConstraint::ValueSet(vs) => vs.iter().any(|v| v.matches(term)),
            NodeConstraint::Facet(f) => f.matches(term),
            NodeConstraint::AllOf(cs) => cs.iter().all(|c| c.matches(term)),
            NodeConstraint::AnyOf(cs) => cs.iter().any(|c| c.matches(term)),
            NodeConstraint::Not(c) => !c.matches(term),
        }
    }
}

fn datatype_matches(datatype: &str, term: &Term) -> bool {
    let Some(lit) = term.as_literal() else {
        return false;
    };
    match datatype {
        // A language-tagged string has datatype rdf:langString.
        rdf::LANG_STRING => lit.language().is_some(),
        xsd::STRING => lit.datatype() == xsd::STRING,
        dt => lit.datatype() == dt && is_valid_lexical(dt, lit.lexical_form()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_rdf::term::Literal;

    fn int(v: i64) -> Term {
        Term::Literal(Literal::integer(v))
    }

    fn s(v: &str) -> Term {
        Term::Literal(Literal::string(v))
    }

    #[test]
    fn any_matches_everything() {
        assert!(NodeConstraint::Any.matches(&Term::iri("http://e/x")));
        assert!(NodeConstraint::Any.matches(&Term::blank("b")));
        assert!(NodeConstraint::Any.matches(&s("lit")));
    }

    #[test]
    fn node_kinds() {
        let iri = Term::iri("http://e/x");
        let blank = Term::blank("b");
        let lit = s("x");
        assert!(NodeKind::Iri.matches(&iri) && !NodeKind::Iri.matches(&lit));
        assert!(NodeKind::BNode.matches(&blank) && !NodeKind::BNode.matches(&iri));
        assert!(NodeKind::Literal.matches(&lit) && !NodeKind::Literal.matches(&blank));
        assert!(NodeKind::NonLiteral.matches(&iri) && NodeKind::NonLiteral.matches(&blank));
        assert!(!NodeKind::NonLiteral.matches(&lit));
    }

    #[test]
    fn datatype_requires_declared_type_and_valid_lexical() {
        let c = NodeConstraint::Datatype(xsd::INTEGER.into());
        assert!(c.matches(&int(23)));
        // "23" as xsd:string is not an xsd:integer
        assert!(!c.matches(&s("23")));
        // declared integer with junk lexical form is rejected
        assert!(!c.matches(&Term::Literal(Literal::typed("nope", xsd::INTEGER))));
        // non-literals never match datatypes
        assert!(!c.matches(&Term::iri("http://e/x")));
    }

    #[test]
    fn xsd_string_accepts_plain_but_not_tagged() {
        let c = NodeConstraint::Datatype(xsd::STRING.into());
        assert!(c.matches(&s("plain")));
        assert!(!c.matches(&Term::Literal(Literal::lang_string("tagged", "en"))));
        assert!(!c.matches(&int(1)));
    }

    #[test]
    fn lang_string_datatype() {
        let c = NodeConstraint::Datatype(rdf::LANG_STRING.into());
        assert!(c.matches(&Term::Literal(Literal::lang_string("x", "en"))));
        assert!(!c.matches(&s("x")));
    }

    #[test]
    fn value_set_terms() {
        // The paper's Example 5: values {1, 2}.
        let c = NodeConstraint::ValueSet(vec![
            ValueSetValue::Term(int(1)),
            ValueSetValue::Term(int(2)),
        ]);
        assert!(c.matches(&int(1)));
        assert!(c.matches(&int(2)));
        assert!(!c.matches(&int(3)));
        assert!(!c.matches(&s("1"))); // same lexical, different datatype
    }

    #[test]
    fn iri_stem() {
        let c = NodeConstraint::ValueSet(vec![ValueSetValue::IriStem("http://e/ns/".into())]);
        assert!(c.matches(&Term::iri("http://e/ns/thing")));
        assert!(!c.matches(&Term::iri("http://e/other")));
        assert!(!c.matches(&s("http://e/ns/thing")));
    }

    #[test]
    fn language_and_language_stem() {
        let en = Term::Literal(Literal::lang_string("hi", "en"));
        let en_gb = Term::Literal(Literal::lang_string("hi", "en-GB"));
        let fr = Term::Literal(Literal::lang_string("salut", "fr"));
        let lang = NodeConstraint::ValueSet(vec![ValueSetValue::Language("EN".into())]);
        assert!(lang.matches(&en));
        assert!(!lang.matches(&en_gb));
        assert!(!lang.matches(&fr));
        let stem = NodeConstraint::ValueSet(vec![ValueSetValue::LanguageStem("en".into())]);
        assert!(stem.matches(&en));
        assert!(stem.matches(&en_gb));
        assert!(!stem.matches(&fr));
    }

    #[test]
    fn numeric_facets() {
        let c = NodeConstraint::datatype_with(
            xsd::INTEGER,
            vec![
                Facet::MinInclusive(Numeric::integer(0)),
                Facet::MaxExclusive(Numeric::integer(150)),
            ],
        );
        assert!(c.matches(&int(0)));
        assert!(c.matches(&int(149)));
        assert!(!c.matches(&int(150)));
        assert!(!c.matches(&int(-1)));
        assert!(!c.matches(&s("10"))); // not numeric
    }

    #[test]
    fn exclusive_bounds() {
        let c = NodeConstraint::Facet(Facet::MinExclusive(Numeric::integer(5)));
        assert!(!c.matches(&int(5)));
        assert!(c.matches(&int(6)));
        let c = NodeConstraint::Facet(Facet::MaxInclusive(Numeric::integer(5)));
        assert!(c.matches(&int(5)));
        assert!(!c.matches(&int(6)));
    }

    #[test]
    fn string_length_facets() {
        let c = NodeConstraint::Facet(Facet::Length(4));
        assert!(c.matches(&s("John")));
        assert!(!c.matches(&s("Bob")));
        // Length counts chars, not bytes.
        assert!(c.matches(&s("λλλλ")));
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Facet(Facet::MinLength(2)),
            NodeConstraint::Facet(Facet::MaxLength(3)),
        ]);
        assert!(c.matches(&s("ab")));
        assert!(c.matches(&s("abc")));
        assert!(!c.matches(&s("a")));
        assert!(!c.matches(&s("abcd")));
    }

    #[test]
    fn length_applies_to_iris_and_bnodes() {
        let c = NodeConstraint::Facet(Facet::MinLength(8));
        assert!(c.matches(&Term::iri("http://e/x")));
        assert!(!c.matches(&Term::blank("b0")));
    }

    #[test]
    fn pattern_facet() {
        let c = NodeConstraint::Facet(Facet::Pattern(r"\d{4}-\d{2}".into()));
        assert!(c.matches(&s("2015-03")));
        assert!(!c.matches(&s("2015-3")));
        assert!(!c.matches(&s("x2015-03"))); // full match
    }

    #[test]
    fn invalid_pattern_matches_nothing() {
        let c = NodeConstraint::Facet(Facet::Pattern("(".into()));
        assert!(!c.matches(&s("anything")));
    }

    #[test]
    fn negation_extension() {
        let c = NodeConstraint::Not(Box::new(NodeConstraint::Kind(NodeKind::Literal)));
        assert!(c.matches(&Term::iri("http://e/x")));
        assert!(!c.matches(&s("lit")));
        // double negation
        let cc = NodeConstraint::Not(Box::new(c));
        assert!(cc.matches(&s("lit")));
    }

    #[test]
    fn all_of_conjunction() {
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Kind(NodeKind::Literal),
            NodeConstraint::Facet(Facet::Pattern("[A-Z].*".into())),
        ]);
        assert!(c.matches(&s("John")));
        assert!(!c.matches(&s("john")));
        assert!(!c.matches(&Term::iri("http://e/John")));
    }

    #[test]
    fn any_of_disjunction() {
        let c = NodeConstraint::AnyOf(vec![
            NodeConstraint::Datatype(xsd::INTEGER.into()),
            NodeConstraint::Datatype(xsd::STRING.into()),
        ]);
        assert!(c.matches(&int(1)));
        assert!(c.matches(&s("x")));
        assert!(!c.matches(&Term::iri("http://e/x")));
        // Empty disjunction matches nothing.
        assert!(!NodeConstraint::AnyOf(vec![]).matches(&int(1)));
    }

    #[test]
    fn datatype_with_single_is_flat() {
        let c = NodeConstraint::datatype_with(xsd::INTEGER, vec![]);
        assert_eq!(c, NodeConstraint::Datatype(xsd::INTEGER.into()));
    }

    #[test]
    fn decimal_facet_comparison() {
        let c = NodeConstraint::Facet(Facet::MaxInclusive(
            Numeric::parse(xsd::DECIMAL, "2.5").unwrap(),
        ));
        assert!(c.matches(&Term::Literal(Literal::decimal("2.50"))));
        assert!(!c.matches(&Term::Literal(Literal::decimal("2.51"))));
        assert!(c.matches(&int(2)));
    }
}

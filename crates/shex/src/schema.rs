//! Shape Expression Schemas (paper §8): a tuple `(Λ, δ)` where `δ` maps
//! labels to regular shape expressions, possibly recursively.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{ShapeExpr, ShapeLabel};

/// An error in schema construction or well-formedness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two rules define the same label.
    DuplicateLabel(String),
    /// A shape reference `@<label>` with no definition `label ↦ e`.
    UndefinedReference {
        /// The shape whose definition holds the dangling reference.
        in_shape: String,
        /// The undefined label.
        reference: String,
    },
    /// The declared start shape has no definition.
    UndefinedStart(String),
    /// A repetition `e{m,n}` with `n < m` — unsatisfiable by construction,
    /// so it is rejected rather than silently compiled to `∅`.
    InvalidBounds {
        /// The shape whose definition holds the bad repetition.
        in_shape: String,
        /// The lower bound `m`.
        min: u32,
        /// The upper bound `n`.
        max: u32,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateLabel(l) => write!(f, "duplicate shape label <{l}>"),
            SchemaError::UndefinedReference {
                in_shape,
                reference,
            } => write!(
                f,
                "shape <{in_shape}> references undefined shape <{reference}>"
            ),
            SchemaError::UndefinedStart(l) => write!(f, "start shape <{l}> is not defined"),
            SchemaError::InvalidBounds { in_shape, min, max } => write!(
                f,
                "shape <{in_shape}> has invalid repetition bounds {{{min},{max}}}: max < min"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A schema: an ordered collection of rules `λ ↦ e` plus an optional start
/// shape.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    shapes: Vec<(ShapeLabel, ShapeExpr)>,
    index: HashMap<ShapeLabel, usize>,
    start: Option<ShapeLabel>,
    /// `(prefix, namespace)` pairs retained from parsing, for display.
    pub prefixes: Vec<(String, String)>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Builds a schema from rules, failing on duplicate labels.
    pub fn from_rules(
        rules: impl IntoIterator<Item = (ShapeLabel, ShapeExpr)>,
    ) -> Result<Self, SchemaError> {
        let mut s = Schema::new();
        for (label, expr) in rules {
            s.add_shape(label, expr)?;
        }
        Ok(s)
    }

    /// Adds a rule `λ ↦ e`.
    pub fn add_shape(&mut self, label: ShapeLabel, expr: ShapeExpr) -> Result<(), SchemaError> {
        if self.index.contains_key(&label) {
            return Err(SchemaError::DuplicateLabel(label.as_str().to_string()));
        }
        self.index.insert(label.clone(), self.shapes.len());
        self.shapes.push((label, expr));
        Ok(())
    }

    /// `δ(λ)` — the expression for a label.
    pub fn get(&self, label: &ShapeLabel) -> Option<&ShapeExpr> {
        self.index.get(label).map(|&i| &self.shapes[i].1)
    }

    /// Declares the start shape.
    pub fn set_start(&mut self, label: ShapeLabel) {
        self.start = Some(label);
    }

    /// The declared start shape, if any.
    pub fn start(&self) -> Option<&ShapeLabel> {
        self.start.as_ref()
    }

    /// Rules in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&ShapeLabel, &ShapeExpr)> {
        self.shapes.iter().map(|(l, e)| (l, e))
    }

    /// Declared labels, in declaration order.
    pub fn labels(&self) -> impl Iterator<Item = &ShapeLabel> {
        self.shapes.iter().map(|(l, _)| l)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// True when the schema has no rules.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Checks that every `@reference` and the start shape are defined.
    pub fn check_references(&self) -> Result<(), SchemaError> {
        for (label, expr) in &self.shapes {
            for r in expr.references() {
                if !self.index.contains_key(r) {
                    return Err(SchemaError::UndefinedReference {
                        in_shape: label.as_str().to_string(),
                        reference: r.as_str().to_string(),
                    });
                }
            }
        }
        if let Some(start) = &self.start {
            if !self.index.contains_key(start) {
                return Err(SchemaError::UndefinedStart(start.as_str().to_string()));
            }
        }
        Ok(())
    }

    /// Checks that every repetition `e{m,n}` in the schema is satisfiable
    /// (`m <= n`). ShExC parsing already rejects inverted bounds, but
    /// programmatically built schemas (`from_rules`, ShExJ) reach
    /// compilation without a parse step; this is their guard.
    pub fn check_bounds(&self) -> Result<(), SchemaError> {
        for (label, expr) in &self.shapes {
            let mut stack = vec![expr];
            while let Some(e) = stack.pop() {
                match e {
                    ShapeExpr::Empty | ShapeExpr::Epsilon | ShapeExpr::Arc(_) => {}
                    ShapeExpr::Star(inner) | ShapeExpr::Plus(inner) | ShapeExpr::Opt(inner) => {
                        stack.push(inner)
                    }
                    ShapeExpr::Repeat(inner, min, max) => {
                        if let Some(max) = max {
                            if max < min {
                                return Err(SchemaError::InvalidBounds {
                                    in_shape: label.as_str().to_string(),
                                    min: *min,
                                    max: *max,
                                });
                            }
                        }
                        stack.push(inner);
                    }
                    ShapeExpr::And(a, b) | ShapeExpr::Or(a, b) => {
                        stack.push(a);
                        stack.push(b);
                    }
                }
            }
        }
        Ok(())
    }

    /// Labels reachable from `from` through shape references (including
    /// `from` itself). Used to scope compilation and SPARQL generation.
    pub fn reachable(&self, from: &ShapeLabel) -> Vec<&ShapeLabel> {
        let mut seen: Vec<&ShapeLabel> = Vec::new();
        let mut stack = vec![from];
        while let Some(l) = stack.pop() {
            if seen.contains(&l) {
                continue;
            }
            let Some(&i) = self.index.get(l) else {
                continue;
            };
            let (stored, expr) = &self.shapes[i];
            seen.push(stored);
            for r in expr.references() {
                stack.push(r);
            }
        }
        seen
    }

    /// True if `label`'s definition can reach itself through references.
    pub fn is_recursive(&self, label: &ShapeLabel) -> bool {
        let Some(expr) = self.get(label) else {
            return false;
        };
        expr.references()
            .iter()
            .any(|r| self.reachable(r).contains(&label))
    }
}

impl fmt::Display for Schema {
    /// Renders the schema in ShExC (see [`crate::display`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::display::schema_to_shexc(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ArcConstraint;
    use crate::constraint::NodeConstraint;

    fn arc_ref(p: &str, l: &str) -> ShapeExpr {
        ShapeExpr::arc(ArcConstraint::reference(p, l))
    }

    fn arc_val(p: &str) -> ShapeExpr {
        ShapeExpr::arc(ArcConstraint::value(p, NodeConstraint::Any))
    }

    #[test]
    fn add_and_get() {
        let mut s = Schema::new();
        s.add_shape("Person".into(), arc_val("http://e/name"))
            .unwrap();
        assert!(s.get(&"Person".into()).is_some());
        assert!(s.get(&"Nope".into()).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut s = Schema::new();
        s.add_shape("A".into(), ShapeExpr::Epsilon).unwrap();
        let err = s.add_shape("A".into(), ShapeExpr::Empty).unwrap_err();
        assert_eq!(err, SchemaError::DuplicateLabel("A".into()));
    }

    #[test]
    fn undefined_reference_detected() {
        let s =
            Schema::from_rules([(ShapeLabel::new("A"), arc_ref("http://e/p", "Missing"))]).unwrap();
        let err = s.check_references().unwrap_err();
        assert!(matches!(err, SchemaError::UndefinedReference { .. }));
    }

    #[test]
    fn defined_references_pass() {
        let mut s = Schema::from_rules([
            (ShapeLabel::new("A"), arc_ref("http://e/p", "B")),
            (ShapeLabel::new("B"), arc_val("http://e/q")),
        ])
        .unwrap();
        assert!(s.check_references().is_ok());
        s.set_start("A".into());
        assert!(s.check_references().is_ok());
        s.set_start("Z".into());
        assert!(matches!(
            s.check_references(),
            Err(SchemaError::UndefinedStart(_))
        ));
    }

    #[test]
    fn reachability() {
        let s = Schema::from_rules([
            (ShapeLabel::new("A"), arc_ref("http://e/p", "B")),
            (ShapeLabel::new("B"), arc_ref("http://e/q", "C")),
            (ShapeLabel::new("C"), arc_val("http://e/r")),
            (ShapeLabel::new("D"), arc_val("http://e/s")),
        ])
        .unwrap();
        let names: Vec<_> = s
            .reachable(&"A".into())
            .iter()
            .map(|l| l.as_str().to_string())
            .collect();
        assert!(names.contains(&"A".to_string()));
        assert!(names.contains(&"B".to_string()));
        assert!(names.contains(&"C".to_string()));
        assert!(!names.contains(&"D".to_string()));
    }

    #[test]
    fn recursion_detection() {
        // person ↦ ... knows @person* (paper Example 14)
        let s = Schema::from_rules([
            (
                ShapeLabel::new("person"),
                ShapeExpr::star(arc_ref("http://e/knows", "person")),
            ),
            (ShapeLabel::new("flat"), arc_val("http://e/name")),
            (ShapeLabel::new("a"), arc_ref("http://e/p", "b")),
            (ShapeLabel::new("b"), arc_ref("http://e/q", "a")),
        ])
        .unwrap();
        assert!(s.is_recursive(&"person".into()));
        assert!(!s.is_recursive(&"flat".into()));
        // mutual recursion
        assert!(s.is_recursive(&"a".into()));
        assert!(s.is_recursive(&"b".into()));
    }

    #[test]
    fn inverted_bounds_rejected() {
        // {1,0} cannot be expressed in ShExC (the parser rejects it), but a
        // programmatic build reaches compilation unchecked without this.
        let s = Schema::from_rules([(
            ShapeLabel::new("A"),
            ShapeExpr::Repeat(Box::new(arc_val("http://e/p")), 1, Some(0)),
        )])
        .unwrap();
        let err = s.check_bounds().unwrap_err();
        assert_eq!(
            err,
            SchemaError::InvalidBounds {
                in_shape: "A".into(),
                min: 1,
                max: 0,
            }
        );
        assert!(err.to_string().contains("{1,0}"), "{err}");
    }

    #[test]
    fn inverted_bounds_found_under_nesting() {
        let bad = ShapeExpr::And(
            Box::new(arc_val("http://e/p")),
            Box::new(ShapeExpr::Opt(Box::new(ShapeExpr::Repeat(
                Box::new(arc_val("http://e/q")),
                3,
                Some(2),
            )))),
        );
        let s = Schema::from_rules([(ShapeLabel::new("A"), bad)]).unwrap();
        assert!(matches!(
            s.check_bounds(),
            Err(SchemaError::InvalidBounds { min: 3, max: 2, .. })
        ));
    }

    #[test]
    fn degenerate_but_valid_bounds_pass() {
        // {0,0} and {0,1} are satisfiable (ε-like / optional) — allowed.
        let s = Schema::from_rules([
            (
                ShapeLabel::new("Zero"),
                ShapeExpr::Repeat(Box::new(arc_val("http://e/p")), 0, Some(0)),
            ),
            (
                ShapeLabel::new("Opt"),
                ShapeExpr::Repeat(Box::new(arc_val("http://e/p")), 0, Some(1)),
            ),
            (
                ShapeLabel::new("Unbounded"),
                ShapeExpr::Repeat(Box::new(arc_val("http://e/p")), 2, None),
            ),
        ])
        .unwrap();
        assert!(s.check_bounds().is_ok());
    }

    #[test]
    fn display_renders_shexc() {
        let s = Schema::from_rules([(ShapeLabel::new("A"), arc_val("http://e/p"))]).unwrap();
        let printed = s.to_string();
        assert!(printed.contains("<A> {"), "{printed}");
    }

    #[test]
    fn iter_preserves_order() {
        let s = Schema::from_rules([
            (ShapeLabel::new("Z"), ShapeExpr::Epsilon),
            (ShapeLabel::new("A"), ShapeExpr::Epsilon),
        ])
        .unwrap();
        let order: Vec<_> = s.labels().map(|l| l.as_str()).collect();
        assert_eq!(order, vec!["Z", "A"]);
    }
}

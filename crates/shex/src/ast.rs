//! Abstract syntax of Regular Shape Expressions (paper §4).
//!
//! ```text
//! E, F ::= ∅                 empty, no shape
//!        | ε                 empty set of triples
//!        | vp → vo           arc with predicate p ∈ vp and object o ∈ vo
//!        | E*                Kleene closure (0 or more E)
//!        | E ‖ F             And (unordered concatenation)
//!        | E | F             Alternative
//! ```
//!
//! plus the derived operators `E+`, `E?`, `E{m,n}` (§4) and the §8 schema
//! extension where an arc's object may be a shape *reference* `@label`.
//! The §10 extension proposals implemented here: inverse arcs (`^p`) and
//! negated node constraints (see [`crate::constraint`]).

use std::fmt;

use crate::constraint::NodeConstraint;

/// A shape label `λ ∈ Λ` (paper §8). Stored as a plain name; the ShExC
/// syntax writes it `<Name>` or `@<Name>` in references.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeLabel(Box<str>);

impl ShapeLabel {
    /// Creates a label from its name.
    pub fn new(name: impl Into<Box<str>>) -> Self {
        ShapeLabel(name.into())
    }

    /// The label's name, without angle brackets.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ShapeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for ShapeLabel {
    fn from(s: &str) -> Self {
        ShapeLabel::new(s)
    }
}

/// The predicate set `vp ⊆ Vp` of an arc constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredicateSet {
    /// Wildcard: any predicate (`vp = Vp`).
    Any,
    /// A finite set of predicate IRIs. A singleton is the common case from
    /// ShExC syntax; the paper's abstract syntax allows any subset.
    Iris(Vec<Box<str>>),
}

impl PredicateSet {
    /// A singleton predicate set.
    pub fn one(iri: impl Into<Box<str>>) -> Self {
        PredicateSet::Iris(vec![iri.into()])
    }

    /// Membership test `p ∈ vp` on the IRI's textual form.
    pub fn contains(&self, iri: &str) -> bool {
        match self {
            PredicateSet::Any => true,
            PredicateSet::Iris(set) => set.iter().any(|i| &**i == iri),
        }
    }
}

/// What an arc requires of the triple's object: either membership in a
/// value set `vo ⊆ Vo` (expressed as a [`NodeConstraint`]) or conformance
/// to a referenced shape `@label` (paper §8, rule *Arcref*).
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectConstraint {
    /// Membership in a value set (`o ∈ vo`).
    Value(NodeConstraint),
    /// Conformance to the referenced shape (`@label`).
    Ref(ShapeLabel),
}

/// An arc constraint `vp → vo`, optionally inverted (`^vp`, matching
/// triples `⟨o, p, n⟩` arriving at the focus node — the §10 extension).
#[derive(Debug, Clone, PartialEq)]
pub struct ArcConstraint {
    /// The predicate set `vp`.
    pub predicates: PredicateSet,
    /// The object condition `vo`.
    pub object: ObjectConstraint,
    /// `^vp`: match incoming triples instead (§10 extension).
    pub inverse: bool,
}

impl ArcConstraint {
    /// An arc `vp → vo` (forward).
    pub fn new(predicates: PredicateSet, object: ObjectConstraint) -> Self {
        ArcConstraint {
            predicates,
            object,
            inverse: false,
        }
    }

    /// A forward arc with a single predicate IRI and a value constraint.
    pub fn value(pred: impl Into<Box<str>>, constraint: NodeConstraint) -> Self {
        ArcConstraint::new(PredicateSet::one(pred), ObjectConstraint::Value(constraint))
    }

    /// A forward arc with a single predicate IRI referencing a shape.
    pub fn reference(pred: impl Into<Box<str>>, label: impl Into<ShapeLabel>) -> Self {
        ArcConstraint::new(PredicateSet::one(pred), ObjectConstraint::Ref(label.into()))
    }

    /// Marks the arc as inverse (`^`).
    pub fn inverted(mut self) -> Self {
        self.inverse = true;
        self
    }
}

/// A Regular Shape Expression (paper §4 syntax plus derived operators).
///
/// The derived operators are kept as their own variants rather than being
/// desugared eagerly: `Repeat` has a linear-size derivative rule while its
/// §4 expansion is exponential in the bounds, and keeping `Plus`/`Opt`
/// preserves the user's schema for display. Engines may desugar on
/// compilation (see [`ShapeExpr::desugared`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeExpr {
    /// `∅` — matches no graph at all.
    Empty,
    /// `ε` — matches exactly the empty set of triples.
    Epsilon,
    /// `vp → vo`.
    Arc(ArcConstraint),
    /// `E*`.
    Star(Box<ShapeExpr>),
    /// `E+ = E ‖ E*`.
    Plus(Box<ShapeExpr>),
    /// `E? = E | ε`.
    Opt(Box<ShapeExpr>),
    /// `E{m,n}`; `max = None` means unbounded (`E{m,}`).
    Repeat(Box<ShapeExpr>, u32, Option<u32>),
    /// `E ‖ F` — unordered concatenation.
    And(Box<ShapeExpr>, Box<ShapeExpr>),
    /// `E | F` — alternative.
    Or(Box<ShapeExpr>, Box<ShapeExpr>),
}

impl ShapeExpr {
    /// Wraps an arc constraint.
    pub fn arc(arc: ArcConstraint) -> Self {
        ShapeExpr::Arc(arc)
    }

    /// `e*`.
    pub fn star(e: ShapeExpr) -> Self {
        ShapeExpr::Star(Box::new(e))
    }

    /// `e+`.
    pub fn plus(e: ShapeExpr) -> Self {
        ShapeExpr::Plus(Box::new(e))
    }

    /// `e?`.
    pub fn opt(e: ShapeExpr) -> Self {
        ShapeExpr::Opt(Box::new(e))
    }

    /// `e{min,max}`; `None` max means unbounded.
    pub fn repeat(e: ShapeExpr, min: u32, max: Option<u32>) -> Self {
        ShapeExpr::Repeat(Box::new(e), min, max)
    }

    /// `a ‖ b`.
    pub fn and(a: ShapeExpr, b: ShapeExpr) -> Self {
        ShapeExpr::And(Box::new(a), Box::new(b))
    }

    /// `a | b`.
    pub fn or(a: ShapeExpr, b: ShapeExpr) -> Self {
        ShapeExpr::Or(Box::new(a), Box::new(b))
    }

    /// Folds a sequence into a right-nested `And`; empty sequence is `ε`.
    pub fn and_all(items: impl IntoIterator<Item = ShapeExpr>) -> ShapeExpr {
        let mut items: Vec<_> = items.into_iter().collect();
        match items.pop() {
            None => ShapeExpr::Epsilon,
            Some(last) => items
                .into_iter()
                .rev()
                .fold(last, |acc, e| ShapeExpr::and(e, acc)),
        }
    }

    /// Folds a sequence into a right-nested `Or`; empty sequence is `∅`.
    pub fn or_all(items: impl IntoIterator<Item = ShapeExpr>) -> ShapeExpr {
        let mut items: Vec<_> = items.into_iter().collect();
        match items.pop() {
            None => ShapeExpr::Empty,
            Some(last) => items
                .into_iter()
                .rev()
                .fold(last, |acc, e| ShapeExpr::or(e, acc)),
        }
    }

    /// Rewrites the derived operators into the §4 core syntax:
    /// `E+ → E ‖ E*`, `E? → E | ε`, and `E{m,n}` via the paper's recursive
    /// expansion. Useful for engines that only implement the core algebra
    /// (the backtracking baseline) and for equivalence testing.
    pub fn desugared(&self) -> ShapeExpr {
        match self {
            ShapeExpr::Empty => ShapeExpr::Empty,
            ShapeExpr::Epsilon => ShapeExpr::Epsilon,
            ShapeExpr::Arc(a) => ShapeExpr::Arc(a.clone()),
            ShapeExpr::Star(e) => ShapeExpr::star(e.desugared()),
            ShapeExpr::Plus(e) => {
                let d = e.desugared();
                ShapeExpr::and(d.clone(), ShapeExpr::star(d))
            }
            ShapeExpr::Opt(e) => ShapeExpr::or(e.desugared(), ShapeExpr::Epsilon),
            ShapeExpr::Repeat(e, m, n) => expand_repeat(&e.desugared(), *m, *n),
            ShapeExpr::And(a, b) => ShapeExpr::and(a.desugared(), b.desugared()),
            ShapeExpr::Or(a, b) => ShapeExpr::or(a.desugared(), b.desugared()),
        }
    }

    /// All shape labels referenced (transitively through the expression,
    /// not through other shapes).
    pub fn references(&self) -> Vec<&ShapeLabel> {
        let mut out = Vec::new();
        self.visit_arcs(&mut |arc| {
            if let ObjectConstraint::Ref(l) = &arc.object {
                out.push(l);
            }
        });
        out
    }

    /// Visits every arc constraint in the expression.
    pub fn visit_arcs<'a>(&'a self, f: &mut impl FnMut(&'a ArcConstraint)) {
        match self {
            ShapeExpr::Empty | ShapeExpr::Epsilon => {}
            ShapeExpr::Arc(a) => f(a),
            ShapeExpr::Star(e) | ShapeExpr::Plus(e) | ShapeExpr::Opt(e) => e.visit_arcs(f),
            ShapeExpr::Repeat(e, _, _) => e.visit_arcs(f),
            ShapeExpr::And(a, b) | ShapeExpr::Or(a, b) => {
                a.visit_arcs(f);
                b.visit_arcs(f);
            }
        }
    }

    /// Number of syntax nodes, a size measure used by benches and tests.
    pub fn size(&self) -> usize {
        match self {
            ShapeExpr::Empty | ShapeExpr::Epsilon | ShapeExpr::Arc(_) => 1,
            ShapeExpr::Star(e) | ShapeExpr::Plus(e) | ShapeExpr::Opt(e) => 1 + e.size(),
            ShapeExpr::Repeat(e, _, _) => 1 + e.size(),
            ShapeExpr::And(a, b) | ShapeExpr::Or(a, b) => 1 + a.size() + b.size(),
        }
    }
}

/// The paper's `E{m,n}` expansion:
///
/// ```text
/// E{m,n} = E{m,n−1} | E{n}        if m < n   (alternative over counts)
/// E{n,n} = E{n−1,n−1} ‖ E         if n > 0   (n mandatory copies)
/// E{0,0} = ε
/// ```
///
/// (The paper's first clause reads `E{m,n−1}|E`; the intended meaning —
/// consistent with its `E+`/`E?` definitions — is "between m and n copies",
/// which we realise as `E{m,m} ‖ (E?){n−m}`.)
fn expand_repeat(e: &ShapeExpr, m: u32, n: Option<u32>) -> ShapeExpr {
    let mandatory = (0..m).map(|_| e.clone());
    match n {
        None => {
            // E{m,} = E{m,m} ‖ E*
            ShapeExpr::and_all(mandatory.chain(std::iter::once(ShapeExpr::star(e.clone()))))
        }
        Some(n) => {
            let optional = (m..n).map(|_| ShapeExpr::or(e.clone(), ShapeExpr::Epsilon));
            ShapeExpr::and_all(mandatory.chain(optional))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::NodeConstraint;

    fn arc(p: &str) -> ShapeExpr {
        ShapeExpr::arc(ArcConstraint::value(p, NodeConstraint::Any))
    }

    #[test]
    fn predicate_set_membership() {
        assert!(PredicateSet::Any.contains("http://e/p"));
        let set = PredicateSet::Iris(vec!["http://e/a".into(), "http://e/b".into()]);
        assert!(set.contains("http://e/a"));
        assert!(!set.contains("http://e/c"));
    }

    #[test]
    fn and_all_builds_right_nested() {
        let e = ShapeExpr::and_all([arc("p"), arc("q"), arc("r")]);
        let ShapeExpr::And(_, rest) = &e else {
            panic!("expected And");
        };
        assert!(matches!(**rest, ShapeExpr::And(_, _)));
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn and_all_empty_is_epsilon() {
        assert_eq!(ShapeExpr::and_all([]), ShapeExpr::Epsilon);
        assert_eq!(ShapeExpr::or_all([]), ShapeExpr::Empty);
    }

    #[test]
    fn plus_desugars_to_paper_definition() {
        // E+ = E ‖ E*
        let e = ShapeExpr::plus(arc("p")).desugared();
        let ShapeExpr::And(l, r) = e else {
            panic!("expected And")
        };
        assert!(matches!(*l, ShapeExpr::Arc(_)));
        assert!(matches!(*r, ShapeExpr::Star(_)));
    }

    #[test]
    fn opt_desugars_to_paper_definition() {
        // E? = E | ε
        let e = ShapeExpr::opt(arc("p")).desugared();
        let ShapeExpr::Or(l, r) = e else {
            panic!("expected Or")
        };
        assert!(matches!(*l, ShapeExpr::Arc(_)));
        assert_eq!(*r, ShapeExpr::Epsilon);
    }

    #[test]
    fn repeat_zero_zero_is_epsilon() {
        let e = ShapeExpr::repeat(arc("p"), 0, Some(0)).desugared();
        assert_eq!(e, ShapeExpr::Epsilon);
    }

    #[test]
    fn repeat_expansion_sizes() {
        // E{2,2} = E ‖ E
        let e = ShapeExpr::repeat(arc("p"), 2, Some(2)).desugared();
        assert_eq!(e.size(), 3);
        // E{1,3} = E ‖ (E|ε) ‖ (E|ε)
        let e = ShapeExpr::repeat(arc("p"), 1, Some(3)).desugared();
        assert_eq!(e.size(), 9);
        // E{2,} = E ‖ E ‖ E*
        let e = ShapeExpr::repeat(arc("p"), 2, None).desugared();
        assert_eq!(e.size(), 6);
    }

    #[test]
    fn references_collects_labels() {
        let e = ShapeExpr::and(
            ShapeExpr::arc(ArcConstraint::reference("http://e/knows", "Person")),
            ShapeExpr::star(ShapeExpr::arc(ArcConstraint::reference(
                "http://e/worksFor",
                "Org",
            ))),
        );
        let refs: Vec<_> = e.references().iter().map(|l| l.as_str()).collect();
        assert_eq!(refs, vec!["Person", "Org"]);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(ShapeExpr::Empty.size(), 1);
        assert_eq!(ShapeExpr::star(arc("p")).size(), 2);
        assert_eq!(ShapeExpr::and(arc("p"), arc("q")).size(), 3);
    }

    #[test]
    fn shape_label_display() {
        assert_eq!(ShapeLabel::new("Person").to_string(), "<Person>");
    }

    #[test]
    fn inverted_arc_flag() {
        let a = ArcConstraint::value("http://e/p", NodeConstraint::Any).inverted();
        assert!(a.inverse);
    }
}

//! Million-triple scale workloads, shaped like UniProt protein dumps.
//!
//! The pschema-rs exemplars validate real UniProt N-Triples exports; this
//! module generates synthetic dumps with the same shape — one protein
//! entity per `~7` triples: an `rdf:type`, a reviewed flag, a mnemonic, an
//! organism link into a small taxon universe (recurring terms, like real
//! dumps), a sequence literal (high-entropy, never shared), and 1–3
//! `rdfs:seeAlso` database cross-references. Everything is seeded and
//! deterministic, so the same `(entities, seed)` pair reproduces the same
//! bytes on every run — the property the differential parse benchmarks
//! and CI smoke tests rely on.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shapex_rdf::ntriples;

use crate::Workload;

/// UniProt core vocabulary namespace.
pub const UP: &str = "http://purl.uniprot.org/core/";
/// Protein entity namespace.
pub const UNIPROT: &str = "http://purl.uniprot.org/uniprot/";
/// Taxonomy namespace.
pub const TAXON: &str = "http://purl.uniprot.org/taxonomy/";

const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
const RDFS_SEE_ALSO: &str = "http://www.w3.org/2000/01/rdf-schema#seeAlso";
const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";

const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
const SPECIES: &[&str] = &["HUMAN", "MOUSE", "YEAST", "ECOLI", "DROME", "ARATH", "RAT"];

/// Average triples emitted per entity (used to size entity counts for a
/// triple target: `entities ≈ triples / TRIPLES_PER_ENTITY`).
pub const TRIPLES_PER_ENTITY: f64 = 7.0;

/// Generates a UniProt-shaped N-Triples document with `entities` protein
/// entities (≈ `7 × entities` triples). Deterministic in `(entities, seed)`.
pub fn uniprot_ntriples(entities: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    // ~330 bytes per entity; pre-size to avoid repeated doubling.
    let mut out = String::with_capacity(entities.saturating_mul(340));
    for i in 0..entities {
        let taxon = rng.gen_range(1..50u32);
        let reviewed = rng.gen_bool(0.3);
        let species = SPECIES[rng.gen_range(0..SPECIES.len())];
        let seq_len = rng.gen_range(12..32usize);
        let refs = rng.gen_range(1..4usize);

        let _ = writeln!(out, "<{UNIPROT}P{i:08}> <{RDF_TYPE}> <{UP}Protein> .");
        let _ = writeln!(
            out,
            "<{UNIPROT}P{i:08}> <{UP}reviewed> \"{reviewed}\"^^<{XSD_BOOLEAN}> ."
        );
        let _ = writeln!(
            out,
            "<{UNIPROT}P{i:08}> <{UP}mnemonic> \"G{i:X}_{species}\" ."
        );
        let _ = writeln!(out, "<{UNIPROT}P{i:08}> <{UP}organism> <{TAXON}{taxon}> .");
        let _ = write!(out, "<{UNIPROT}P{i:08}> <{UP}sequence> \"");
        for _ in 0..seq_len {
            out.push(AMINO[rng.gen_range(0..AMINO.len())] as char);
        }
        out.push_str("\" .\n");
        for r in 0..refs {
            let _ = writeln!(
                out,
                "<{UNIPROT}P{i:08}> <{RDFS_SEE_ALSO}> <http://purl.uniprot.org/embl-cds/C{i:08}.{r}> ."
            );
        }
    }
    out
}

/// The ShExC schema every generated protein conforms to.
pub fn uniprot_schema() -> String {
    format!(
        "PREFIX up: <{UP}>\n\
         PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
         PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n\
         PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
         <Protein> {{\n\
         \x20 rdf:type [up:Protein],\n\
         \x20 up:reviewed xsd:boolean,\n\
         \x20 up:mnemonic xsd:string,\n\
         \x20 up:organism .,\n\
         \x20 up:sequence xsd:string,\n\
         \x20 rdfs:seeAlso .+\n\
         }}"
    )
}

/// **E12** — a complete UniProt-shaped workload: the dump is generated as
/// N-Triples text and parsed through the real ingestion path (one code
/// path for benchmarks, tests, and files on disk), every protein is a
/// focus node, and all of them conform.
pub fn uniprot(entities: usize, seed: u64) -> Workload {
    let nt = uniprot_ntriples(entities, seed);
    let dataset = ntriples::parse(&nt).expect("generated dump is valid N-Triples");
    Workload {
        name: format!("uniprot/n={entities}"),
        schema: uniprot_schema(),
        dataset,
        focus: (0..entities).map(|i| format!("{UNIPROT}P{i:08}")).collect(),
        shape: "Protein".to_string(),
        expected: vec![true; entities],
    }
}

/// Hub-workload namespace.
pub const HUB: &str = "http://example.org/hub/";

/// Generates a *skewed* N-Triples graph: one hub subject carrying
/// `members` outgoing `hub:member` arcs (plus its `rdf:type`), and
/// `members` member entities with a Zipf-distributed `hub:knows` fanout
/// tail — member `i` gets `≈ members / ((i+1)·H(members))` knows-arcs, so
/// a handful of early members are themselves heavy while the long tail is
/// cheap. This is the adversarial shape for fixed-shard scheduling: the
/// shard that draws the hub (and the head of the tail) does nearly all
/// the work while its peers idle at the wave barrier. Deterministic in
/// `(members, seed)`.
pub fn hub_ntriples(members: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(members.saturating_mul(160) + 64 * members);
    let _ = writeln!(out, "<{HUB}hub> <{RDF_TYPE}> <{HUB}Hub> .");
    for i in 0..members {
        let _ = writeln!(out, "<{HUB}hub> <{HUB}member> <{HUB}m{i:06}> .");
    }
    // Harmonic normaliser: sum of the Zipf weights 1/(i+1), so the tail
    // emits ≈ `members` knows-arcs in total.
    let h: f64 = (1..=members).map(|k| 1.0 / k as f64).sum();
    for i in 0..members {
        let _ = writeln!(out, "<{HUB}m{i:06}> <{RDF_TYPE}> <{HUB}Member> .");
        let _ = writeln!(out, "<{HUB}m{i:06}> <{HUB}label> \"member {i}\" .");
        let fan = if members > 1 {
            (members as f64 / ((i + 1) as f64 * h)).round() as usize
        } else {
            0
        };
        for _ in 0..fan {
            let target = rng.gen_range(0..members);
            let _ = writeln!(out, "<{HUB}m{i:06}> <{HUB}knows> <{HUB}m{target:06}> .");
        }
    }
    out
}

/// The schema for [`hub_ntriples`]: checking the hub pulls in every
/// member's verdict through `hub:member @<Member>+`, and the recursive
/// `hub:knows @<Member>*` reference keeps the member checks coinductive —
/// one (hub, Hub) mega-task plus a long tail of small tasks.
pub fn hub_schema() -> String {
    format!(
        "PREFIX hub: <{HUB}>\n\
         PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
         PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
         <Hub> {{\n\
         \x20 rdf:type [hub:Hub],\n\
         \x20 hub:member @<Member>+\n\
         }}\n\
         <Member> {{\n\
         \x20 rdf:type [hub:Member],\n\
         \x20 hub:label xsd:string,\n\
         \x20 hub:knows @<Member>*\n\
         }}"
    )
}

/// **E14** — the hub-fanout workload: every member is a focus node under
/// `<Member>`, and all of them conform (as does the hub under `<Hub>`).
pub fn hub(members: usize, seed: u64) -> Workload {
    let nt = hub_ntriples(members, seed);
    let dataset = ntriples::parse(&nt).expect("generated hub dump is valid N-Triples");
    Workload {
        name: format!("hub/n={members}"),
        schema: hub_schema(),
        dataset,
        focus: (0..members).map(|i| format!("{HUB}m{i:06}")).collect(),
        shape: "Member".to_string(),
        expected: vec![true; members],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(uniprot_ntriples(50, 7), uniprot_ntriples(50, 7));
        assert_ne!(uniprot_ntriples(50, 7), uniprot_ntriples(50, 8));
    }

    #[test]
    fn triple_count_tracks_estimate() {
        let ds = ntriples::parse(&uniprot_ntriples(200, 1)).unwrap();
        let per_entity = ds.graph.len() as f64 / 200.0;
        assert!(
            (TRIPLES_PER_ENTITY - 1.0..=TRIPLES_PER_ENTITY + 1.0).contains(&per_entity),
            "{per_entity} triples/entity"
        );
    }

    #[test]
    fn parallel_parse_of_dump_is_identical() {
        let nt = uniprot_ntriples(300, 3);
        let seq = ntriples::parse(&nt).unwrap();
        let par = ntriples::parse_par_min_chunk(&nt, 4, 1).unwrap();
        assert_eq!(seq.pool.len(), par.pool.len());
        assert_eq!(seq.graph.triples_sorted(), par.graph.triples_sorted());
    }

    #[test]
    fn workload_focus_aligns_with_entities() {
        let w = uniprot(25, 0);
        assert_eq!(w.focus.len(), 25);
        assert_eq!(w.expected.len(), 25);
        assert!(w.dataset.iri(&w.focus[0]).is_some());
        assert!(w.dataset.iri(&w.focus[24]).is_some());
    }

    #[test]
    fn hub_generation_is_deterministic_and_skewed() {
        assert_eq!(hub_ntriples(60, 5), hub_ntriples(60, 5));
        assert_ne!(hub_ntriples(60, 5), hub_ntriples(60, 6));
        let ds = ntriples::parse(&hub_ntriples(100, 1)).unwrap();
        // One hub arc per member, plus 2 triples/member and a Zipf tail of
        // about `members` knows-arcs.
        let len = ds.graph.len();
        assert!(
            (350..=450).contains(&len),
            "expected ~1 + 100 + 200 + ~100 triples, got {len}"
        );
        // The knows fanout is front-loaded: member 0 carries a fat share.
        let nt = hub_ntriples(100, 1);
        let m0_knows = nt
            .lines()
            .filter(|l| l.starts_with(&format!("<{HUB}m000000> <{HUB}knows>")))
            .count();
        assert!(m0_knows >= 10, "Zipf head should be heavy, got {m0_knows}");
    }

    #[test]
    fn hub_workload_parses_and_schema_compiles() {
        let w = hub(40, 2);
        assert_eq!(w.focus.len(), 40);
        assert!(w.dataset.iri(&format!("{HUB}hub")).is_some());
        assert!(w.dataset.iri(&w.focus[39]).is_some());
        // Two shapes, parse-clean. (That every member actually conforms —
        // and that typings are jobs-invariant on this skewed graph — is
        // pinned by the root stats_parallel suite, which can afford the
        // engine dependency.)
        let schema = shapex_shex::shexc::parse(&w.schema).expect("hub schema parses");
        assert_eq!(schema.len(), 2);
    }
}

//! Million-triple scale workloads, shaped like UniProt protein dumps.
//!
//! The pschema-rs exemplars validate real UniProt N-Triples exports; this
//! module generates synthetic dumps with the same shape — one protein
//! entity per `~7` triples: an `rdf:type`, a reviewed flag, a mnemonic, an
//! organism link into a small taxon universe (recurring terms, like real
//! dumps), a sequence literal (high-entropy, never shared), and 1–3
//! `rdfs:seeAlso` database cross-references. Everything is seeded and
//! deterministic, so the same `(entities, seed)` pair reproduces the same
//! bytes on every run — the property the differential parse benchmarks
//! and CI smoke tests rely on.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shapex_rdf::ntriples;

use crate::Workload;

/// UniProt core vocabulary namespace.
pub const UP: &str = "http://purl.uniprot.org/core/";
/// Protein entity namespace.
pub const UNIPROT: &str = "http://purl.uniprot.org/uniprot/";
/// Taxonomy namespace.
pub const TAXON: &str = "http://purl.uniprot.org/taxonomy/";

const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
const RDFS_SEE_ALSO: &str = "http://www.w3.org/2000/01/rdf-schema#seeAlso";
const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";

const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
const SPECIES: &[&str] = &["HUMAN", "MOUSE", "YEAST", "ECOLI", "DROME", "ARATH", "RAT"];

/// Average triples emitted per entity (used to size entity counts for a
/// triple target: `entities ≈ triples / TRIPLES_PER_ENTITY`).
pub const TRIPLES_PER_ENTITY: f64 = 7.0;

/// Generates a UniProt-shaped N-Triples document with `entities` protein
/// entities (≈ `7 × entities` triples). Deterministic in `(entities, seed)`.
pub fn uniprot_ntriples(entities: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    // ~330 bytes per entity; pre-size to avoid repeated doubling.
    let mut out = String::with_capacity(entities.saturating_mul(340));
    for i in 0..entities {
        let taxon = rng.gen_range(1..50u32);
        let reviewed = rng.gen_bool(0.3);
        let species = SPECIES[rng.gen_range(0..SPECIES.len())];
        let seq_len = rng.gen_range(12..32usize);
        let refs = rng.gen_range(1..4usize);

        let _ = writeln!(out, "<{UNIPROT}P{i:08}> <{RDF_TYPE}> <{UP}Protein> .");
        let _ = writeln!(
            out,
            "<{UNIPROT}P{i:08}> <{UP}reviewed> \"{reviewed}\"^^<{XSD_BOOLEAN}> ."
        );
        let _ = writeln!(
            out,
            "<{UNIPROT}P{i:08}> <{UP}mnemonic> \"G{i:X}_{species}\" ."
        );
        let _ = writeln!(out, "<{UNIPROT}P{i:08}> <{UP}organism> <{TAXON}{taxon}> .");
        let _ = write!(out, "<{UNIPROT}P{i:08}> <{UP}sequence> \"");
        for _ in 0..seq_len {
            out.push(AMINO[rng.gen_range(0..AMINO.len())] as char);
        }
        out.push_str("\" .\n");
        for r in 0..refs {
            let _ = writeln!(
                out,
                "<{UNIPROT}P{i:08}> <{RDFS_SEE_ALSO}> <http://purl.uniprot.org/embl-cds/C{i:08}.{r}> ."
            );
        }
    }
    out
}

/// The ShExC schema every generated protein conforms to.
pub fn uniprot_schema() -> String {
    format!(
        "PREFIX up: <{UP}>\n\
         PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
         PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n\
         PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
         <Protein> {{\n\
         \x20 rdf:type [up:Protein],\n\
         \x20 up:reviewed xsd:boolean,\n\
         \x20 up:mnemonic xsd:string,\n\
         \x20 up:organism .,\n\
         \x20 up:sequence xsd:string,\n\
         \x20 rdfs:seeAlso .+\n\
         }}"
    )
}

/// **E12** — a complete UniProt-shaped workload: the dump is generated as
/// N-Triples text and parsed through the real ingestion path (one code
/// path for benchmarks, tests, and files on disk), every protein is a
/// focus node, and all of them conform.
pub fn uniprot(entities: usize, seed: u64) -> Workload {
    let nt = uniprot_ntriples(entities, seed);
    let dataset = ntriples::parse(&nt).expect("generated dump is valid N-Triples");
    Workload {
        name: format!("uniprot/n={entities}"),
        schema: uniprot_schema(),
        dataset,
        focus: (0..entities).map(|i| format!("{UNIPROT}P{i:08}")).collect(),
        shape: "Protein".to_string(),
        expected: vec![true; entities],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(uniprot_ntriples(50, 7), uniprot_ntriples(50, 7));
        assert_ne!(uniprot_ntriples(50, 7), uniprot_ntriples(50, 8));
    }

    #[test]
    fn triple_count_tracks_estimate() {
        let ds = ntriples::parse(&uniprot_ntriples(200, 1)).unwrap();
        let per_entity = ds.graph.len() as f64 / 200.0;
        assert!(
            (TRIPLES_PER_ENTITY - 1.0..=TRIPLES_PER_ENTITY + 1.0).contains(&per_entity),
            "{per_entity} triples/entity"
        );
    }

    #[test]
    fn parallel_parse_of_dump_is_identical() {
        let nt = uniprot_ntriples(300, 3);
        let seq = ntriples::parse(&nt).unwrap();
        let par = ntriples::parse_par_min_chunk(&nt, 4, 1).unwrap();
        assert_eq!(seq.pool.len(), par.pool.len());
        assert_eq!(seq.graph.triples_sorted(), par.graph.triples_sorted());
    }

    #[test]
    fn workload_focus_aligns_with_entities() {
        let w = uniprot(25, 0);
        assert_eq!(w.focus.len(), 25);
        assert_eq!(w.expected.len(), 25);
        assert!(w.dataset.iri(&w.focus[0]).is_some());
        assert!(w.dataset.iri(&w.focus[24]).is_some());
    }
}

//! The workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shapex_rdf::graph::Dataset;
use shapex_rdf::term::{Literal, Term};
use shapex_rdf::vocab::foaf;

const EX: &str = "http://shapex.example/";

/// A generated benchmark workload.
pub struct Workload {
    /// Short identifier (used in bench ids).
    pub name: String,
    /// ShExC schema source.
    pub schema: String,
    /// The data graph.
    pub dataset: Dataset,
    /// IRIs of the nodes to validate.
    pub focus: Vec<String>,
    /// The shape each focus node is validated against.
    pub shape: String,
    /// For workloads with known ground truth: expected conformance of each
    /// focus node, aligned with `focus`.
    pub expected: Vec<bool>,
}

fn iri(local: &str) -> Term {
    Term::iri(format!("{EX}{local}"))
}

/// **E1/E3** — the paper's Example 8 shape `a→1 ‖ b→{1,2}*` with a
/// neighbourhood of `1 + b_triples` triples (one `a`-triple, then
/// `b`-triples alternating values 1 and 2... values differ *per triple* so
/// the graph, a set, keeps them distinct).
///
/// Matching is expected to succeed; Fig. 2 shows how the backtracking
/// matcher decomposes this very instance.
pub fn example8_neighbourhood(b_triples: usize) -> Workload {
    let schema = format!("PREFIX e: <{EX}>\n<S> {{ e:a [1], e:b . * }}");
    let mut dataset = Dataset::new();
    let node = iri("n");
    dataset.insert(node.clone(), iri("a"), Term::Literal(Literal::integer(1)));
    for i in 0..b_triples {
        dataset.insert(
            node.clone(),
            iri("b"),
            Term::Literal(Literal::integer(i as i64)),
        );
    }
    Workload {
        name: format!("example8/b={b_triples}"),
        schema,
        dataset,
        focus: vec![format!("{EX}n")],
        shape: "S".to_string(),
        expected: vec![true],
    }
}

/// **E2** — a width-`w` unordered concatenation
/// `p1→.+ ‖ p2→.+ ‖ ... ‖ pw→.+` with `per_branch` triples per predicate.
/// The decomposition-based matcher must split the `w × per_branch`
/// neighbourhood across `w` And-branches: exponential. The derivative
/// engine consumes it linearly.
pub fn and_width(w: usize, per_branch: usize) -> Workload {
    let mut body: Vec<String> = Vec::new();
    for i in 0..w {
        body.push(format!("e:p{i} .+"));
    }
    let schema = format!("PREFIX e: <{EX}>\n<S> {{ {} }}", body.join(", "));
    let mut dataset = Dataset::new();
    let node = iri("n");
    for i in 0..w {
        for j in 0..per_branch {
            dataset.insert(
                node.clone(),
                iri(&format!("p{i}")),
                Term::Literal(Literal::integer(j as i64)),
            );
        }
    }
    Workload {
        name: format!("and_width/w={w},k={per_branch}"),
        schema,
        dataset,
        focus: vec![format!("{EX}n")],
        shape: "S".to_string(),
        expected: vec![true],
    }
}

/// **E4** — the paper's Example 10 family `(a→{1,2} ‖ b→{1,2})*` —
/// "the number of arcs with predicate a ... and arcs with predicate b ...
/// is the same" — with `pairs` a-arcs followed by `pairs` b-arcs. All
/// a-triples come first, so the derivative accumulates one pending
/// `b→...` residual per consumed `a` (the paper's
/// `∂⟨n,a,1⟩ = b→{1,2} ‖ (...)∗` growth, Example 10), before the
/// b-triples discharge them.
pub fn balanced_ab(pairs: usize) -> Workload {
    let schema = format!("PREFIX e: <{EX}>\n<S> {{ (e:a . , e:b .)* }}");
    let mut dataset = Dataset::new();
    let node = iri("n");
    for i in 0..pairs {
        dataset.insert(
            node.clone(),
            iri("a"),
            Term::Literal(Literal::integer(i as i64)),
        );
    }
    for i in 0..pairs {
        dataset.insert(
            node.clone(),
            iri("b"),
            Term::Literal(Literal::integer(i as i64)),
        );
    }
    Workload {
        name: format!("balanced_ab/pairs={pairs}"),
        schema,
        dataset,
        focus: vec![format!("{EX}n")],
        shape: "S".to_string(),
        expected: vec![true],
    }
}

/// **E4b** — alternation fan-out: `(p→[v1] | p→[v2] | … | p→[vk])+` with
/// `count` triples cycling through the k values (duplicates collapse, so
/// the neighbourhood holds `min(count, k)` triples). Derivative cost
/// scales with the number of alternatives the Or-derivative keeps alive;
/// SORBE does not apply (alternation).
pub fn alternation_fanout(k: usize, count: usize) -> Workload {
    let alts: Vec<String> = (0..k).map(|i| format!("e:p [{i}]")).collect();
    let schema = format!("PREFIX e: <{EX}>\n<S> {{ ({})+ }}", alts.join(" | "));
    let mut dataset = Dataset::new();
    let node = iri("n");
    for i in 0..count {
        dataset.insert(
            node.clone(),
            iri("p"),
            Term::Literal(Literal::integer((i % k) as i64)),
        );
    }
    // Values cycle mod k and graphs are sets, so the neighbourhood holds
    // min(count, k) triples; benches use count = k.
    Workload {
        name: format!("alt_fanout/k={k},n={count}"),
        schema,
        dataset,
        focus: vec![format!("{EX}n")],
        shape: "S".to_string(),
        expected: vec![count > 0],
    }
}

/// **E5** — cardinality bounds: `p→.{min,max}` against a node with
/// `count` p-triples. Exercises the native counter derivative (and, via
/// [`shapex_shex::ast::ShapeExpr::desugared`], the expansion the §4
/// definition implies).
pub fn repeat_bounds(min: u32, max: u32, count: usize) -> Workload {
    let schema = format!("PREFIX e: <{EX}>\n<S> {{ e:p .{{{min},{max}}} }}");
    let mut dataset = Dataset::new();
    let node = iri("n");
    for i in 0..count {
        dataset.insert(
            node.clone(),
            iri("p"),
            Term::Literal(Literal::integer(i as i64)),
        );
    }
    Workload {
        name: format!("repeat/{{{min},{max}}}x{count}"),
        schema,
        dataset,
        focus: vec![format!("{EX}n")],
        shape: "S".to_string(),
        expected: vec![count >= min as usize && count <= max as usize],
    }
}

/// Topology of a [`person_network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `p0 knows p1 knows ... knows p(n-1)`.
    Chain,
    /// A chain closed into a ring — forces coinductive reasoning.
    Cycle,
    /// Each person knows `degree` uniformly random others.
    Random {
        /// Out-degree of each person.
        degree: usize,
    },
}

/// **E6** — a FOAF person network validated against the paper's Example 1
/// / Example 14 recursive schema. `invalid_fraction` of the people
/// (chosen by the seeded RNG) get no `foaf:name`, so they — and everyone
/// whose `knows`-closure reaches them — fail.
///
/// Ground truth is computed by propagating invalidity backwards over
/// `knows` edges (valid = locally well-formed ∧ all known people valid —
/// the greatest fixpoint on this schema).
pub fn person_network(n: usize, topology: Topology, invalid_fraction: f64, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = format!(
        "PREFIX foaf: <{}>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
         <Person> {{ foaf:age xsd:integer, foaf:name xsd:string+, foaf:knows @<Person>* }}",
        foaf::NS
    );
    let mut dataset = Dataset::new();
    let person = |i: usize| Term::iri(format!("{EX}person{i}"));
    let mut locally_valid = vec![true; n];
    for (i, local) in locally_valid.iter_mut().enumerate() {
        dataset.insert(
            person(i),
            Term::iri(foaf::AGE),
            Term::Literal(Literal::integer(rng.gen_range(1..100))),
        );
        if rng.gen_bool(invalid_fraction) {
            *local = false; // no name ⇒ locally invalid
        } else {
            dataset.insert(
                person(i),
                Term::iri(foaf::NAME),
                Term::Literal(Literal::string(format!("Person {i}"))),
            );
        }
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    match topology {
        Topology::Chain => {
            for i in 0..n.saturating_sub(1) {
                edges.push((i, i + 1));
            }
        }
        Topology::Cycle => {
            for i in 0..n {
                edges.push((i, (i + 1) % n));
            }
        }
        Topology::Random { degree } => {
            for i in 0..n {
                for _ in 0..degree {
                    let j = rng.gen_range(0..n);
                    edges.push((i, j));
                }
            }
        }
    }
    edges.sort();
    edges.dedup();
    for &(i, j) in &edges {
        dataset.insert(person(i), Term::iri(foaf::KNOWS), person(j));
    }

    // Ground truth: greatest fixpoint of
    //   valid(i) = locally_valid(i) ∧ ∀(i→j). valid(j)
    let mut valid = locally_valid.clone();
    loop {
        let mut changed = false;
        for &(i, j) in &edges {
            if valid[i] && !valid[j] {
                valid[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    Workload {
        name: format!("person_net/{topology:?}/n={n},bad={invalid_fraction}"),
        schema,
        dataset,
        focus: (0..n).map(|i| format!("{EX}person{i}")).collect(),
        shape: "Person".to_string(),
        expected: valid,
    }
}

/// **E7** — the non-recursive fragment of Example 1 (`age` + `name+`),
/// suitable for the SPARQL-generation comparison (recursion cannot be
/// expressed in SPARQL, as §3 notes). Half the people are invalid in one
/// of three seeded ways: missing age, missing name, or an extra triple.
pub fn flat_person_records(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = format!(
        "PREFIX foaf: <{}>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
         <Person> {{ foaf:age xsd:integer, foaf:name xsd:string+ }}",
        foaf::NS
    );
    let mut dataset = Dataset::new();
    let mut expected = Vec::with_capacity(n);
    for i in 0..n {
        let p = Term::iri(format!("{EX}person{i}"));
        let valid = rng.gen_bool(0.5);
        if valid {
            dataset.insert(
                p.clone(),
                Term::iri(foaf::AGE),
                Term::Literal(Literal::integer(rng.gen_range(1..100))),
            );
            for k in 0..rng.gen_range(1..3) {
                dataset.insert(
                    p.clone(),
                    Term::iri(foaf::NAME),
                    Term::Literal(Literal::string(format!("Name {i}.{k}"))),
                );
            }
        } else {
            match rng.gen_range(0..3u8) {
                0 => {
                    // missing age
                    dataset.insert(
                        p.clone(),
                        Term::iri(foaf::NAME),
                        Term::Literal(Literal::string(format!("Name {i}"))),
                    );
                }
                1 => {
                    // age has wrong datatype
                    dataset.insert(
                        p.clone(),
                        Term::iri(foaf::AGE),
                        Term::Literal(Literal::string("old")),
                    );
                    dataset.insert(
                        p.clone(),
                        Term::iri(foaf::NAME),
                        Term::Literal(Literal::string(format!("Name {i}"))),
                    );
                }
                _ => {
                    // extra, unexpected predicate (violates closed shape)
                    dataset.insert(
                        p.clone(),
                        Term::iri(foaf::AGE),
                        Term::Literal(Literal::integer(30)),
                    );
                    dataset.insert(
                        p.clone(),
                        Term::iri(foaf::NAME),
                        Term::Literal(Literal::string(format!("Name {i}"))),
                    );
                    dataset.insert(p.clone(), Term::iri(foaf::MBOX), iri("mbox"));
                }
            }
        }
        expected.push(valid);
    }
    Workload {
        name: format!("flat_person/n={n}"),
        schema,
        dataset,
        focus: (0..n).map(|i| format!("{EX}person{i}")).collect(),
        shape: "Person".to_string(),
        expected,
    }
}

/// A generated SHACL workload: a shapes graph plus the hand-written ShEx
/// schema that compiles to the same engine-level obligations.
pub struct ShaclWorkload {
    /// Short identifier (used in bench/test ids).
    pub name: String,
    /// SHACL shapes graph, Turtle source.
    pub shapes: String,
    /// Hand-written ShEx equivalent. Validate it with the *open* closure:
    /// the SHACL front end always runs the engine open (per-path
    /// counting), so the closed default would diverge on extra predicates.
    pub shex: String,
    /// The ShEx shape label matching the SHACL target shape.
    pub shex_shape: String,
    /// The data graph. Every person carries `rdf:type e:Person`, so the
    /// SHACL `sh:targetClass` selects exactly `focus`.
    pub dataset: Dataset,
    /// IRIs of the targeted nodes, aligned with `expected`.
    pub focus: Vec<String>,
    /// Ground-truth conformance of each focus node.
    pub expected: Vec<bool>,
}

/// **E8** — SHACL front-end workload: `n` person records targeted by a
/// `sh:targetClass` node shape (`name`: `xsd:string`, `minCount 1`;
/// `age`: `xsd:integer`, `maxCount 0..1`). Invalid records (half, seeded)
/// miss the name, mistype the age, or carry two ages. The bundled ShEx
/// schema (`name xsd:string+ , age xsd:integer?` under the open closure)
/// imposes the same obligations, so per-focus verdicts from the compiled
/// SHACL schema and the ShEx schema must agree exactly — the differential
/// suite pins that.
pub fn shacl_person_records(n: usize, seed: u64) -> ShaclWorkload {
    use shapex_rdf::vocab::{rdf, xsd};
    let mut rng = StdRng::seed_from_u64(seed);
    let shapes = format!(
        "@prefix sh: <http://www.w3.org/ns/shacl#> .\n\
         @prefix xsd: <{xsd}> .\n\
         @prefix e: <{EX}> .\n\
         \n\
         e:PersonShape a sh:NodeShape ;\n\
           sh:targetClass e:Person ;\n\
           sh:property [ sh:path e:name ; sh:datatype xsd:string ; sh:minCount 1 ] ;\n\
           sh:property [ sh:path e:age ; sh:datatype xsd:integer ; sh:maxCount 1 ] .\n",
        xsd = xsd::NS,
    );
    let shex = format!(
        "PREFIX e: <{EX}>\nPREFIX xsd: <{}>\n\
         <Person> {{ e:name xsd:string+ , e:age xsd:integer? }}",
        xsd::NS
    );
    let mut dataset = Dataset::new();
    let mut expected = Vec::with_capacity(n);
    for i in 0..n {
        let p = Term::iri(format!("{EX}person{i}"));
        dataset.insert(p.clone(), Term::iri(rdf::TYPE), iri("Person"));
        let valid = rng.gen_bool(0.5);
        if valid {
            dataset.insert(
                p.clone(),
                iri("name"),
                Term::Literal(Literal::string(format!("Name {i}"))),
            );
            if rng.gen_bool(0.5) {
                dataset.insert(
                    p.clone(),
                    iri("age"),
                    Term::Literal(Literal::integer(rng.gen_range(1..100))),
                );
            }
        } else {
            match rng.gen_range(0..3u8) {
                0 => {
                    // missing name (violates minCount 1)
                    dataset.insert(
                        p.clone(),
                        iri("age"),
                        Term::Literal(Literal::integer(rng.gen_range(1..100))),
                    );
                }
                1 => {
                    // age has the wrong datatype (violates sh:datatype)
                    dataset.insert(
                        p.clone(),
                        iri("name"),
                        Term::Literal(Literal::string(format!("Name {i}"))),
                    );
                    dataset.insert(p.clone(), iri("age"), Term::Literal(Literal::string("old")));
                }
                _ => {
                    // two ages (violates maxCount 1)
                    dataset.insert(
                        p.clone(),
                        iri("name"),
                        Term::Literal(Literal::string(format!("Name {i}"))),
                    );
                    dataset.insert(p.clone(), iri("age"), Term::Literal(Literal::integer(30)));
                    dataset.insert(p.clone(), iri("age"), Term::Literal(Literal::integer(31)));
                }
            }
        }
        expected.push(valid);
    }
    ShaclWorkload {
        name: format!("shacl_person/n={n}"),
        shapes,
        shex,
        shex_shape: "Person".to_string(),
        dataset,
        focus: (0..n).map(|i| format!("{EX}person{i}")).collect(),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example8_shape_and_size() {
        let w = example8_neighbourhood(5);
        assert_eq!(w.dataset.graph.len(), 6);
        assert_eq!(w.focus.len(), 1);
        assert!(w.schema.contains("e:a"));
    }

    #[test]
    fn and_width_triples() {
        let w = and_width(4, 3);
        assert_eq!(w.dataset.graph.len(), 12);
        assert_eq!(w.schema.matches(".+").count(), 4);
    }

    #[test]
    fn balanced_ab_counts() {
        let w = balanced_ab(8);
        assert_eq!(w.dataset.graph.len(), 16);
    }

    #[test]
    fn alternation_fanout_shape() {
        let w = alternation_fanout(4, 4);
        assert_eq!(w.dataset.graph.len(), 4);
        assert_eq!(w.schema.matches('|').count(), 3);
        assert!(w.expected[0]);
        let w = alternation_fanout(4, 10); // duplicates collapse
        assert_eq!(w.dataset.graph.len(), 4);
    }

    #[test]
    fn repeat_bounds_expectation() {
        assert!(repeat_bounds(2, 4, 3).expected[0]);
        assert!(!repeat_bounds(2, 4, 5).expected[0]);
        assert!(!repeat_bounds(2, 4, 1).expected[0]);
    }

    #[test]
    fn person_network_is_deterministic() {
        let a = person_network(20, Topology::Random { degree: 2 }, 0.2, 42);
        let b = person_network(20, Topology::Random { degree: 2 }, 0.2, 42);
        assert_eq!(a.expected, b.expected);
        assert_eq!(a.dataset.graph.len(), b.dataset.graph.len());
        let c = person_network(20, Topology::Random { degree: 2 }, 0.2, 43);
        // Different seed ⇒ (almost surely) different data.
        assert!(a.expected != c.expected || a.dataset.graph.len() != c.dataset.graph.len());
    }

    #[test]
    fn person_chain_invalidity_propagates() {
        // Deterministically make everyone locally valid except... use
        // fraction 0: all valid.
        let w = person_network(10, Topology::Chain, 0.0, 1);
        assert!(w.expected.iter().all(|&v| v));
        // All invalid.
        let w = person_network(10, Topology::Chain, 1.0, 1);
        assert!(w.expected.iter().all(|&v| !v));
    }

    #[test]
    fn person_cycle_all_valid() {
        let w = person_network(6, Topology::Cycle, 0.0, 7);
        assert!(w.expected.iter().all(|&v| v));
        // knows edges exist
        assert_eq!(w.dataset.graph.len(), 6 * 3);
    }

    #[test]
    fn shacl_person_is_deterministic_with_mixed_verdicts() {
        let a = shacl_person_records(50, 11);
        let b = shacl_person_records(50, 11);
        assert_eq!(a.expected, b.expected);
        assert_eq!(a.dataset.graph.len(), b.dataset.graph.len());
        assert_eq!(a.focus.len(), 50);
        assert!(a.expected.iter().any(|&v| v));
        assert!(a.expected.iter().any(|&v| !v));
        assert!(a.shapes.contains("sh:targetClass"));
        assert!(a.shex.contains("<Person>"));
    }

    #[test]
    fn flat_person_has_ground_truth() {
        let w = flat_person_records(50, 11);
        assert_eq!(w.focus.len(), 50);
        assert_eq!(w.expected.len(), 50);
        // Both classes present at n=50.
        assert!(w.expected.iter().any(|&v| v));
        assert!(w.expected.iter().any(|&v| !v));
    }
}

//! `gen-nt` — write a UniProt-shaped N-Triples dump (and optionally its
//! ShExC schema) to disk, for the scale benchmarks and CI smoke tests.
//! With `--hub`, writes the skewed hub-fanout graph instead (one hub
//! subject with N member arcs plus a Zipf fanout tail).
//!
//! ```text
//! gen-nt --triples 1000000 --out dump.nt [--schema-out schema.shex] [--seed 42]
//! gen-nt --entities 150000 --out dump.nt
//! gen-nt --hub --entities 2000 --out hub.nt --schema-out hub.shex
//! ```

use std::process::ExitCode;

use shapex_workloads::scale;

fn main() -> ExitCode {
    let mut entities: Option<usize> = None;
    let mut triples: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut out: Option<String> = None;
    let mut schema_out: Option<String> = None;
    let mut hub = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "--entities" => value("--entities")
                .and_then(|v| v.parse().map_err(|e| format!("--entities: {e}")))
                .map(|v| entities = Some(v)),
            "--triples" => value("--triples")
                .and_then(|v| v.parse().map_err(|e| format!("--triples: {e}")))
                .map(|v| triples = Some(v)),
            "--seed" => value("--seed")
                .and_then(|v| v.parse().map_err(|e| format!("--seed: {e}")))
                .map(|v| seed = v),
            "--out" => value("--out").map(|v| out = Some(v)),
            "--schema-out" => value("--schema-out").map(|v| schema_out = Some(v)),
            "--hub" => {
                hub = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!(
                    "usage: gen-nt (--triples N | --entities N) --out FILE \
                     [--schema-out FILE] [--seed N] [--hub]"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument '{other}'")),
        };
        if let Err(msg) = result {
            eprintln!("gen-nt: {msg}");
            return ExitCode::from(2);
        }
    }

    // A hub graph emits ≈4 triples per member (member arc, rdf:type,
    // label, ~1 knows-arc on average); UniProt emits ≈7 per entity.
    let per_entity = if hub { 4.0 } else { scale::TRIPLES_PER_ENTITY };
    let entities = match (entities, triples) {
        (Some(e), None) => e,
        (None, Some(t)) => ((t as f64 / per_entity).ceil() as usize).max(1),
        _ => {
            eprintln!("gen-nt: exactly one of --entities or --triples is required");
            return ExitCode::from(2);
        }
    };
    let Some(out) = out else {
        eprintln!("gen-nt: --out is required");
        return ExitCode::from(2);
    };

    let dump = if hub {
        scale::hub_ntriples(entities, seed)
    } else {
        scale::uniprot_ntriples(entities, seed)
    };
    let lines = dump.lines().count();
    if let Err(e) = std::fs::write(&out, &dump) {
        eprintln!("gen-nt: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = schema_out {
        let schema = if hub {
            scale::hub_schema()
        } else {
            scale::uniprot_schema()
        };
        if let Err(e) = std::fs::write(&path, schema) {
            eprintln!("gen-nt: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let kind = if hub { "hub members" } else { "entities" };
    println!("wrote {out}: {entities} {kind}, {lines} triples, seed {seed}");
    ExitCode::SUCCESS
}

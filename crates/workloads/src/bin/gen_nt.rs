//! `gen-nt` — write a UniProt-shaped N-Triples dump (and optionally its
//! ShExC schema) to disk, for the scale benchmarks and CI smoke tests.
//!
//! ```text
//! gen-nt --triples 1000000 --out dump.nt [--schema-out schema.shex] [--seed 42]
//! gen-nt --entities 150000 --out dump.nt
//! ```

use std::process::ExitCode;

use shapex_workloads::scale;

fn main() -> ExitCode {
    let mut entities: Option<usize> = None;
    let mut triples: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut out: Option<String> = None;
    let mut schema_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "--entities" => value("--entities")
                .and_then(|v| v.parse().map_err(|e| format!("--entities: {e}")))
                .map(|v| entities = Some(v)),
            "--triples" => value("--triples")
                .and_then(|v| v.parse().map_err(|e| format!("--triples: {e}")))
                .map(|v| triples = Some(v)),
            "--seed" => value("--seed")
                .and_then(|v| v.parse().map_err(|e| format!("--seed: {e}")))
                .map(|v| seed = v),
            "--out" => value("--out").map(|v| out = Some(v)),
            "--schema-out" => value("--schema-out").map(|v| schema_out = Some(v)),
            "--help" | "-h" => {
                println!(
                    "usage: gen-nt (--triples N | --entities N) --out FILE \
                     [--schema-out FILE] [--seed N]"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument '{other}'")),
        };
        if let Err(msg) = result {
            eprintln!("gen-nt: {msg}");
            return ExitCode::from(2);
        }
    }

    let entities = match (entities, triples) {
        (Some(e), None) => e,
        (None, Some(t)) => ((t as f64 / scale::TRIPLES_PER_ENTITY).ceil() as usize).max(1),
        _ => {
            eprintln!("gen-nt: exactly one of --entities or --triples is required");
            return ExitCode::from(2);
        }
    };
    let Some(out) = out else {
        eprintln!("gen-nt: --out is required");
        return ExitCode::from(2);
    };

    let dump = scale::uniprot_ntriples(entities, seed);
    let lines = dump.lines().count();
    if let Err(e) = std::fs::write(&out, &dump) {
        eprintln!("gen-nt: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = schema_out {
        if let Err(e) = std::fs::write(&path, scale::uniprot_schema()) {
            eprintln!("gen-nt: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("wrote {out}: {entities} entities, {lines} triples, seed {seed}");
    ExitCode::SUCCESS
}

#![warn(missing_docs)]
//! # shapex-workloads
//!
//! Seeded synthetic workload generators for the benchmark suite the paper
//! names as future work (§10: "we are planning to develop a set of
//! benchmarks that will enable us to assess the performance of the
//! different shape expression implementations").
//!
//! Each generator returns a [`Workload`]: a ShExC schema, a Turtle-free
//! in-memory dataset, and the focus nodes to validate. Workload families
//! are modelled on the paper's own examples:
//!
//! * [`example8_neighbourhood`] — the Fig. 2 / Example 8 shape with a
//!   growing neighbourhood (experiments E1, E3),
//! * [`and_width`] — wide unordered concatenations, the decomposition
//!   blow-up driver (E2),
//! * [`balanced_ab`] — Example 10's growth family whose derivatives
//!   accumulate pending obligations (E4),
//! * [`alternation_fanout`] — wide alternations under `+` (E4b),
//! * [`repeat_bounds`] — cardinality-range stress (E5),
//! * [`person_network`] — FOAF person graphs with the recursive Example 1
//!   / Example 14 schema (E6), in chain/cycle/random topologies, with an
//!   invalid-node fraction.

//! * [`scale::uniprot`] — UniProt-shaped protein dumps at 1M–50M triples
//!   for the ingestion benchmarks (E12), generated as N-Triples text and
//!   fed through the real parser.
//! * [`scale::hub`] — a skewed hub-fanout graph (one subject with N
//!   outgoing arcs plus a Zipf-distributed fanout tail), the adversarial
//!   load-imbalance shape for the parallel-scheduler benchmarks (E14).

pub mod generators;
pub mod scale;

pub use generators::*;

//! `shapex` — validate RDF (Turtle) data against ShExC schemas.
//!
//! ```text
//! shapex validate --schema person.shex --data people.ttl [--engine derivative|backtracking|sparql]
//!                 [--node IRI --shape NAME] [--open] [--explain] [--stats]
//! shapex sparql   --schema person.shex --shape NAME [--node IRI]
//! shapex parse    --data people.ttl [--to ntriples|turtle]
//! ```

use std::process::ExitCode;

mod cli;
mod report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(cli::CliError::Exhausted { output, exhaustion }) => {
            print!("{output}");
            eprintln!("error: {exhaustion}");
            ExitCode::from(cli::EXHAUSTED_EXIT_CODE)
        }
        Err(cli::CliError::NonConforming { output }) => {
            print!("{output}");
            ExitCode::from(cli::NONCONFORMANT_EXIT_CODE)
        }
        Err(cli::CliError::Undetermined { output }) => {
            print!("{output}");
            eprintln!("error: verdict undetermined");
            ExitCode::from(cli::EXHAUSTED_EXIT_CODE)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Argument handling and command dispatch, kept library-shaped so the whole
//! surface is unit-testable without spawning processes.

use std::fmt::Write as _;
use std::fs;
use std::time::Duration;

use serde_json::{json, Value};
use shapex::{
    Budget, Closure, CompiledSchema, Engine, EngineConfig, EngineError, Exhaustion, Verdict,
};
use shapex_backtrack::{BacktrackValidator, BtConfig, BtError};
use shapex_rdf::graph::Dataset;
use shapex_rdf::ntriples;
use shapex_rdf::pool::TermPool;
use shapex_rdf::turtle;
use shapex_rdf::writer;
use shapex_shex::ast::ShapeLabel;
use shapex_shex::sat::Sat3;
use shapex_shex::schema::Schema;
use shapex_shex::shexc;

use crate::report::{self, finish_engine_doc, push_typing_rows, ReportDoc};

/// A failed command, split so the binary can exit with a distinct code
/// when a resource budget tripped (partial results still printed).
#[derive(Debug)]
pub enum CliError {
    /// Ordinary failure (bad flags, syntax errors, …) — exit code 1.
    Msg(String),
    /// A resource budget tripped — exit code [`EXHAUSTED_EXIT_CODE`].
    /// `output` holds whatever partial results were produced before/around
    /// the exhaustion (printed to stdout before the error line).
    Exhausted {
        /// Partial output produced despite the exhaustion.
        output: String,
        /// What tripped.
        exhaustion: Exhaustion,
    },
    /// The run completed and the answer is "does not conform" — exit code
    /// [`NONCONFORMANT_EXIT_CODE`]. `output` holds the full report.
    NonConforming {
        /// The verdict report (printed to stdout as on success).
        output: String,
    },
    /// A `check` run completed but the calculus could not decide — exit
    /// code [`EXHAUSTED_EXIT_CODE`], the same "unknown" contract as
    /// exhaustion: the answer might flip with a larger budget or a richer
    /// decision procedure, so neither 0 nor 2 would be honest.
    Undetermined {
        /// The verdict report (printed to stdout as on success).
        output: String,
    },
}

/// Exit code for budget exhaustion: distinct from 0 (conforms/ran) and 1
/// (error), so scripts can tell "needs a bigger budget" from "is broken".
///
/// Exhaustion takes precedence over [`NONCONFORMANT_EXIT_CODE`]: a run that
/// is both partially exhausted and non-conforming is *incomplete* — the
/// failing verdicts it did produce might flip with a larger budget, so the
/// honest summary is "needs a bigger budget", not "does not conform".
pub const EXHAUSTED_EXIT_CODE: u8 = 3;

/// Exit code for a completed run whose verdict is non-conformance (a
/// `--node`/`--shape` check that fails, or a `--map` run with unexpected
/// verdicts): distinct from 0 (conforms) and 1 (error), the conventional
/// validator contract.
pub const NONCONFORMANT_EXIT_CODE: u8 = 2;

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Msg(m) => m.fmt(f),
            CliError::Exhausted { exhaustion, .. } => exhaustion.fmt(f),
            CliError::NonConforming { .. } => "data does not conform".fmt(f),
            CliError::Undetermined { .. } => "verdict undetermined".fmt(f),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Msg(m)
    }
}

/// Runs a command line, returning the output to print.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("validate") => validate(&parse_flags(it)?),
        Some("serve") => serve(&parse_flags(it)?),
        Some("sparql") => Ok(sparql(&parse_flags(it)?)?),
        Some("query") => Ok(query(&parse_flags(it)?)?),
        Some("convert") => Ok(convert(&parse_flags(it)?)?),
        Some("lint") => Ok(lint(&parse_flags(it)?)?),
        Some("check") => check(&parse_flags(it)?),
        Some("parse") => Ok(parse_cmd(&parse_flags(it)?)?),
        Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(CliError::Msg(format!("unknown command '{other}'\n{USAGE}"))),
    }
}

const USAGE: &str = "shapex — RDF validation with regular expression derivatives

USAGE:
  shapex validate --schema FILE --data FILE [options]
      Validate Turtle data against a ShExC schema. By default computes the
      full typing (every subject × every shape); use --node/--shape to
      check one pair, or --map to drive validation from a shape map.
      --engine derivative|backtracking   validation algorithm (default: derivative)
      --shacl SHAPES [DATA]              SHACL Core mode: read SHAPES as a SHACL
                                         shapes graph (Turtle, or N-Triples for .nt),
                                         compile it onto the derivative engine
                                         (DESIGN.md §5h), and validate the data graph
                                         from the shapes' targets. Emits a
                                         sh:ValidationReport-shaped document with
                                         --report json (byte-identical to the server's
                                         /validate for a shacl entry), a per-result
                                         text listing otherwise. Unsupported SHACL
                                         terms are compile errors (E001..E008; exit 1),
                                         never silently ignored. Incompatible with
                                         --node/--shape/--map/--trace/--delta and
                                         --engine backtracking; the closure is always
                                         open (--open is redundant)
      --node IRI                         focus node to check
      --shape NAME                       shape label to check against
      --map FILE                         shape map of node@<Shape> associations
      --open                             ShEx-style open shapes (default: closed, as in the paper)
      --no-sorbe                         disable the SORBE counting fast path
      --no-dfa                           disable the lazy shape DFA (fall back to the
                                         hash-map derivative memo; results are identical)
      --prune                            drop provably-empty alternation branches after
                                         compilation (DESIGN.md §5f; language-preserving,
                                         results are identical)
      --explain                          print failure explanations
      --trace NODE SHAPE                 print the §7 derivative trace for one pair
                                         (also: bare --trace with --node/--shape)
      --stats                            print engine statistics
      --report json                      machine-readable report on stdout: verdict per
                                         (node, shape), rendered failure traces, exhaustion
                                         records, and — always collected in this mode — the
                                         engine metrics block (see DESIGN.md for the schema)
      --lenient                          skip malformed Turtle statements instead of aborting
      --max-steps N                      per-check derivative/rule step budget
      --max-depth N                      per-check recursion depth budget
      --max-arena N                      per-check expression arena growth budget
      --timeout-ms N                     per-check wall-clock budget in milliseconds
                                         (with --jobs > 1, also bounds the whole run)
      --jobs N                           worker threads for full-typing runs and for
                                         parallel N-Triples parsing of .nt data files
                                         (default: all cores; 1 = sequential). Parallel
                                         runs use the work-stealing epoch scheduler;
                                         typings are byte-identical to sequential at any
                                         value (under budgets, verdicts agree on every
                                         pair both runs answered)
      --fixed-shard                      use the legacy fixed-shard wave scheduler for
                                         --jobs > 1 (the pre-stealing baseline; mainly
                                         for A/B benchmarking)
      --delta FILE                       type the graph, apply the delta file ('+'/'-'
                                         op lines of Turtle statements, with @prefix
                                         lines), then incrementally revalidate only the
                                         disturbed pairs; emits one JSON document with
                                         before/after typing reports (needs --report json);
                                         exit code reflects the after run
      Exit codes: 0 conforms/ran, 1 error, 2 does not conform, 3 budget
      exhausted. Exhaustion wins over non-conformance: a partial run's
      failing verdicts might flip with a larger budget.

  shapex serve --schema FILE --data FILE [options]
      Run the resident validation service: one warm engine per loaded
      graph, HTTP endpoints mirroring the CLI report documents
      (POST /validate, /map, /delta; GET /health, /stats; POST /load to
      register more graphs). Report bodies are byte-identical to
      `validate --report json` output; the CLI-style exit code travels in
      an X-Shapex-Exit header. SIGTERM/SIGINT drain gracefully.
      --addr HOST:PORT                   bind address (default 127.0.0.1:7878; :0 = ephemeral)
      --workers N                        request worker threads (default 4)
      --queue N                          accept-queue depth; beyond it connections are
                                         shed with 503 + Retry-After (default 64)
      --jobs N                           per-request typing threads (default 1, the
                                         exact sequential path the CLI smoke diffs)
      --open                             ShEx open-shape semantics
      --max-steps/--max-depth/--max-arena/--timeout-ms
                                         per-request engine budget (as in validate)

  shapex sparql --schema FILE --shape NAME [--node IRI]
      Print the generated SPARQL validation query for a shape
      (per-node ASK when --node is given, else the Example 4-style SELECT).

  shapex query --data FILE (--query FILE | --ask TEXT | --select TEXT)
      Run a SPARQL query (the supported fragment: BGPs, FILTER, OPTIONAL,
      UNION, sub-SELECT, COUNT/GROUP BY/HAVING) on Turtle data.

  shapex lint --schema FILE
      Report likely mistakes in a schema (dead shapes, empty value sets,
      invalid PATTERNs, contradictory constraints).

  shapex check --schema FILE [options]
      Exact schema calculus over the compiled shapes (DESIGN.md §5f).
      Default mode: per-shape emptiness — proves each shape's language
      empty (unsatisfiable: no neighbourhood can ever conform) or
      inhabited. Exits 2 if any shape is proven unsatisfiable — that proof
      cannot flip, so it outranks undetermined shapes — else 3 if any
      shape is undetermined, else 0.
      --containment A B                  decide L(A) ⊆ L(B) by a budgeted product
                                         construction over neighbourhood letters:
                                         exit 0 contained, 2 a counterexample
                                         neighbourhood exists, 3 undetermined or
                                         budget exhausted (never a hang)
      --schema-delta NEW                 diff this schema against NEW: classify every
                                         shape unchanged/changed/added/removed
                                         (containment both ways, modulo reference
                                         names) and close over reverse references to
                                         the affected set. With --data FILE, type the
                                         data under the old schema, transplant every
                                         reusable verdict, and re-type only affected
                                         shapes — the typing is byte-identical to a
                                         from-scratch run under NEW
      --open                             open-shape letter semantics (must match how
                                         the shapes will be validated)
      --data FILE, --jobs N, --report json, and the budget flags as in
      validate.

  shapex convert --schema FILE [--to shexc|shexj]
      Convert a schema between the compact syntax (ShExC) and the JSON
      interchange form (ShExJ). Input format is detected from content.

  shapex parse --data FILE [--to ntriples|turtle] [--jobs N]
      Parse Turtle (or, for .nt files, N-Triples — in parallel with
      --jobs) and re-serialize it.

  Data files ending in .nt are parsed as strict, line-oriented N-Triples
  (on --jobs threads) everywhere a --data flag is accepted; all other
  files are parsed as Turtle.
";

struct Flags {
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn parse_flags<'a>(it: impl Iterator<Item = &'a str>) -> Result<Flags, String> {
    const SWITCHES: [&str; 9] = [
        "open",
        "explain",
        "stats",
        "no-sorbe",
        "no-dfa",
        "trace",
        "lenient",
        "prune",
        "fixed-shard",
    ];
    let mut it = it.peekable();
    let mut flags = Flags {
        values: Vec::new(),
        switches: Vec::new(),
    };
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument '{arg}'"));
        };
        if name == "shacl" {
            // `--shacl SHAPES [DATA]` names the shapes graph and,
            // optionally, the data graph positionally (the data file can
            // also come via the usual --data flag).
            let shapes = it
                .next()
                .filter(|v| !v.starts_with("--"))
                .ok_or("--shacl SHAPES [DATA] needs a shapes-graph file")?;
            flags.values.push(("shacl".to_string(), shapes.to_string()));
            if it.peek().is_some_and(|v| !v.starts_with("--")) {
                let data = it.next().expect("peeked");
                flags.values.push(("data".to_string(), data.to_string()));
            }
        } else if name == "trace" {
            // `--trace NODE SHAPE` takes the focus pair positionally; bare
            // `--trace` (paired with --node/--shape) is still accepted.
            if it.peek().is_some_and(|v| !v.starts_with("--")) {
                let node = it.next().expect("peeked");
                let shape = it
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .ok_or("--trace NODE SHAPE needs a shape label after the node")?;
                flags.values.push(("node".to_string(), node.to_string()));
                flags.values.push(("shape".to_string(), shape.to_string()));
            }
            flags.switches.push(name.to_string());
        } else if name == "containment" {
            // `--containment A B` names the two shapes positionally, like
            // `--trace NODE SHAPE`.
            let a = it
                .next()
                .filter(|v| !v.starts_with("--"))
                .ok_or("--containment A B needs two shape labels")?;
            let b = it
                .next()
                .filter(|v| !v.starts_with("--"))
                .ok_or("--containment A B needs two shape labels")?;
            flags
                .values
                .push(("containment-a".to_string(), a.to_string()));
            flags
                .values
                .push(("containment-b".to_string(), b.to_string()));
        } else if SWITCHES.contains(&name) {
            flags.switches.push(name.to_string());
        } else {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.values.push((name.to_string(), value.to_string()));
        }
    }
    Ok(flags)
}

/// `--report json` selects the machine-readable output documented in
/// `DESIGN.md`; absent means the human-readable text report.
fn report_from_flags(flags: &Flags) -> Result<bool, String> {
    match flags.get("report") {
        None => Ok(false),
        Some("json") => Ok(true),
        Some(other) => Err(format!("unknown report format '{other}' (expected 'json')")),
    }
}

fn load_schema(flags: &Flags) -> Result<Schema, String> {
    let path = flags.require("schema")?;
    let src = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    shexc::parse(&src).map_err(|e| format!("{path}:{e}"))
}

/// Loads the data file. Files ending in `.nt` are parsed as strict
/// N-Triples on `--jobs` worker threads ([`ntriples::parse_par`], which is
/// byte-identical to the sequential parse); everything else is Turtle.
/// With `--lenient` (Turtle only), malformed statements are skipped
/// (recovering at the next `.` boundary) and the skipped count is
/// returned; without it the first syntax error aborts the load. The count
/// is always 0 in strict mode.
fn load_data(flags: &Flags) -> Result<(Dataset, usize), String> {
    let path = flags.require("data")?;
    let src = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".nt") {
        if flags.has("lenient") {
            return Err("--lenient is not supported for N-Triples input".into());
        }
        let jobs = jobs_from_flags(flags)?;
        let ds = ntriples::parse_par(&src, jobs).map_err(|e| format!("{path}:{e}"))?;
        return Ok((ds, 0));
    }
    if flags.has("lenient") {
        let (ds, errors) = turtle::parse_lenient(&src);
        Ok((ds, errors.len()))
    } else {
        let ds = turtle::parse(&src).map_err(|e| format!("{path}:{e}"))?;
        Ok((ds, 0))
    }
}

/// Builds the validation [`Budget`] from `--max-steps`, `--max-depth`,
/// `--max-arena`, and `--timeout-ms`. All absent → [`Budget::UNLIMITED`].
fn budget_from_flags(flags: &Flags) -> Result<Budget, String> {
    fn num<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<Option<T>, String> {
        match flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} needs a positive integer, got '{v}'")),
        }
    }
    let mut budget = Budget::UNLIMITED;
    if let Some(n) = num::<u64>(flags, "max-steps")? {
        budget = budget.with_max_steps(n);
    }
    if let Some(n) = num::<u32>(flags, "max-depth")? {
        budget = budget.with_max_depth(n);
    }
    if let Some(n) = num::<u64>(flags, "max-arena")? {
        budget = budget.with_max_arena_nodes(n as usize);
    }
    if let Some(ms) = num::<u64>(flags, "timeout-ms")? {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    Ok(budget)
}

/// Worker-thread count for full-typing runs: `--jobs N` (≥ 1), defaulting
/// to all available cores. `--jobs 1` is the exact sequential path.
fn jobs_from_flags(flags: &Flags) -> Result<usize, String> {
    match flags.get("jobs") {
        None => Ok(shapex::default_jobs()),
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("--jobs needs a positive integer, got '{v}'")),
        },
    }
}

/// Converts an engine error into the CLI error type, preserving any
/// partial output produced before the budget tripped.
fn engine_err(out: &str, e: EngineError) -> CliError {
    match e {
        EngineError::ResourceExhausted {
            resource,
            spent,
            limit,
        } => CliError::Exhausted {
            output: out.to_string(),
            exhaustion: Exhaustion {
                resource,
                spent,
                limit,
            },
        },
        other => CliError::Msg(other.to_string()),
    }
}

/// The `--delta FILE` mode: full typing of the loaded graph, then apply the
/// delta and incrementally revalidate, emitting one JSON document with
/// `before`/`after` typing sub-reports plus a `delta` block counting the
/// applied triples and the invalidated/retyped/reused pairs. The exit code
/// comes from the *after* run (the post-delta truth), with the usual
/// 3-over-2 precedence.
fn validate_delta(
    flags: &Flags,
    engine: &mut Engine,
    ds: &mut Dataset,
    delta_path: &str,
    skipped: usize,
) -> Result<String, CliError> {
    if flags.get("node").is_some() || flags.get("shape").is_some() || flags.get("map").is_some() {
        return Err(CliError::Msg(
            "--delta recomputes the full typing; it cannot be combined with --node/--shape/--map"
                .into(),
        ));
    }
    if !report_from_flags(flags)? {
        return Err(CliError::Msg(
            "--delta needs --report json (it emits a before/after report document)".into(),
        ));
    }
    let jobs = jobs_from_flags(flags)?;
    let src = fs::read_to_string(delta_path).map_err(|e| format!("reading {delta_path}: {e}"))?;
    let delta =
        shapex_rdf::delta::parse(&src, &mut ds.pool).map_err(|e| format!("{delta_path}:{e}"))?;

    // Before: a plain full typing of the unmutated graph. This run also
    // records the dependency index the revalidation consumes.
    let before_typing = engine.type_all_par(&ds.graph, &ds.pool, jobs);
    let mut before_doc = ReportDoc::new("typing", "derivative");
    push_typing_rows(&mut before_doc, engine, &ds.graph, &ds.pool, &before_typing);
    let before = before_doc.finish((!before_typing.is_partial()).then_some(true));

    // After: mutate the graph and re-type only the disturbed frontier.
    ds.apply_delta(&delta);
    let after_typing = engine
        .revalidate_par(&ds.graph, &ds.pool, &delta, jobs)
        .map_err(|e| engine_err("", e))?;
    let mut after_doc = ReportDoc::new("typing", "derivative");
    push_typing_rows(&mut after_doc, engine, &ds.graph, &ds.pool, &after_typing);
    let after = after_doc.finish((!after_typing.is_partial()).then_some(true));

    let stats = engine.stats();
    let mut doc = ReportDoc::new("delta", "derivative");
    doc.set(
        "delta",
        serde_json::json!({
            "file": delta_path,
            "added": delta.added.len(),
            "removed": delta.removed.len(),
            "invalidated": stats.invalidated_pairs,
            "retyped": stats.retyped_pairs,
            "reused": stats.reused_pairs,
        }),
    );
    doc.set("before", before);
    doc.set("after", after);
    let conforms = (!after_typing.is_partial()).then_some(true);
    let output = finish_engine_doc(doc, engine, skipped, conforms);
    if after_typing.is_partial() {
        return Err(CliError::Exhausted {
            output,
            exhaustion: after_typing.exhausted[0].2,
        });
    }
    Ok(output)
}

/// The `serve` subcommand: loads the schema/data pair as entry
/// `default`, installs the SIGTERM/SIGINT drain handlers, and blocks
/// until the service shuts down. Operational chatter goes to stderr so
/// stdout stays clean.
fn serve(flags: &Flags) -> Result<String, CliError> {
    fn num(flags: &Flags, name: &str) -> Result<Option<usize>, String> {
        match flags.get(name) {
            None => Ok(None),
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => Ok(Some(n)),
                _ => Err(format!("--{name} needs a positive integer, got '{v}'")),
            },
        }
    }
    let mut config = shapex_server::ServerConfig {
        budget: budget_from_flags(flags)?,
        open: flags.has("open"),
        ..shapex_server::ServerConfig::default()
    };
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.to_string();
    }
    if let Some(n) = num(flags, "workers")? {
        config.workers = n;
    }
    if let Some(n) = num(flags, "queue")? {
        config.queue = n;
    }
    if let Some(n) = num(flags, "jobs")? {
        config.jobs = n;
    }

    let schema_path = flags.require("schema")?;
    let data_path = flags.require("data")?;
    let schema_src =
        fs::read_to_string(schema_path).map_err(|e| format!("reading {schema_path}: {e}"))?;
    let data_src =
        fs::read_to_string(data_path).map_err(|e| format!("reading {data_path}: {e}"))?;

    // No-op unless built with --features fail-inject AND SHAPEX_FAILPOINTS
    // is set; the fault-injection smoke drives the service through this.
    for armed in shapex::failpoint::configure_from_env() {
        eprintln!("shapex serve: failpoint armed: {armed}");
    }

    let registry = std::sync::Arc::new(shapex_server::registry::Registry::new());
    registry
        .load(
            "default",
            schema_src,
            shapex_server::registry::SchemaFormat::Shex,
            data_src,
            shapex_server::registry::DataFormat::from_path(data_path),
            config.engine_config(),
            config.jobs,
        )
        .map_err(CliError::Msg)?;

    shapex_server::install_signal_handlers();
    let handle =
        shapex_server::start(config, registry).map_err(|e| format!("starting server: {e}"))?;
    eprintln!("shapex serve: listening on {}", handle.addr());
    handle.wait();
    eprintln!("shapex serve: drained");
    Ok(String::new())
}

/// The `validate --shacl` mode: parse the shapes graph as ordinary RDF,
/// compile it onto the derivative engine (DESIGN.md §5h), validate, and
/// emit a `sh:ValidationReport`-shaped document. Exit codes are the
/// standard validator contract: 0 conforms, 1 error (including every
/// unsupported-term compile error), 2 does not conform, 3 exhausted.
fn validate_shacl(flags: &Flags) -> Result<String, CliError> {
    for bad in ["schema", "map", "node", "shape", "delta"] {
        if flags.get(bad).is_some() {
            return Err(CliError::Msg(format!(
                "--shacl drives validation from the shapes graph's targets; \
                 it cannot be combined with --{bad}"
            )));
        }
    }
    if flags.has("trace") {
        return Err(CliError::Msg(
            "--shacl cannot be combined with --trace (trace a compiled shape \
             by label on the ShEx path instead)"
                .into(),
        ));
    }
    if flags.get("engine").is_some_and(|e| e != "derivative") {
        return Err(CliError::Msg(
            "--shacl always runs on the derivative engine".into(),
        ));
    }
    let shapes_path = flags.get("shacl").expect("dispatched on --shacl");
    let shapes_src =
        fs::read_to_string(shapes_path).map_err(|e| format!("reading {shapes_path}: {e}"))?;
    let shapes = if shapes_path.ends_with(".nt") {
        ntriples::parse(&shapes_src).map_err(|e| format!("{shapes_path}:{e}"))?
    } else {
        turtle::parse(&shapes_src).map_err(|e| format!("{shapes_path}:{e}"))?
    };
    let (mut ds, skipped) = load_data(flags)?;
    let report = report_from_flags(flags)?;
    let config = EngineConfig {
        // The per-path SHACL translation is only correct under the open
        // closure; the validator forces it regardless of --open.
        closure: Closure::Open,
        no_sorbe: flags.has("no-sorbe"),
        no_dfa: flags.has("no-dfa"),
        prune: flags.has("prune"),
        fixed_shard: flags.has("fixed-shard"),
        budget: budget_from_flags(flags)?,
        metrics: report,
        ..EngineConfig::default()
    };
    let schema = shapex_shacl::compile(&shapes)
        .map_err(|e| CliError::Msg(format!("{shapes_path}: {e}")))?;
    let mut validator = shapex_shacl::ShaclValidator::new(schema, &mut ds.pool, config)
        .map_err(|e| CliError::Msg(e.to_string()))?;
    let outcome = validator.validate_par(&mut ds, jobs_from_flags(flags)?);
    let mut output = if report {
        shapex_shacl::shacl_report(&outcome, validator.engine())
    } else {
        let mut out = String::new();
        if skipped > 0 {
            let _ = writeln!(out, "lenient: skipped {skipped} malformed statement(s)");
        }
        out.push_str(&shapex_shacl::render_text(&outcome));
        out
    };
    if !report && flags.has("stats") {
        let _ = writeln!(output, "stats: {}", validator.engine().stats());
    }
    match outcome.conforms() {
        Some(true) => Ok(output),
        Some(false) => Err(CliError::NonConforming { output }),
        None => Err(CliError::Exhausted {
            exhaustion: outcome.exhausted[0].exhaustion,
            output,
        }),
    }
}

fn validate(flags: &Flags) -> Result<String, CliError> {
    if flags.get("shacl").is_some() {
        return validate_shacl(flags);
    }
    let schema = load_schema(flags)?;
    let (mut ds, skipped) = load_data(flags)?;
    let budget = budget_from_flags(flags)?;
    let engine_kind = flags.get("engine").unwrap_or("derivative");
    let report = report_from_flags(flags)?;
    let mut out = String::new();
    if skipped > 0 && !report {
        let _ = writeln!(out, "lenient: skipped {skipped} malformed statement(s)");
    }

    match engine_kind {
        "derivative" => {
            let config = EngineConfig {
                closure: if flags.has("open") {
                    Closure::Open
                } else {
                    Closure::Closed
                },
                no_sorbe: flags.has("no-sorbe"),
                no_dfa: flags.has("no-dfa"),
                prune: flags.has("prune"),
                fixed_shard: flags.has("fixed-shard"),
                budget,
                // A JSON report always carries the metrics block.
                metrics: report,
                // Dependency recording is only paid for when a delta run
                // will consume it.
                incremental: flags.get("delta").is_some(),
                ..EngineConfig::default()
            };
            let mut engine =
                Engine::compile(&schema, &mut ds.pool, config).map_err(|e| e.to_string())?;
            if let Some(delta_path) = flags.get("delta") {
                return validate_delta(flags, &mut engine, &mut ds, delta_path, skipped);
            }
            if let Some(map_path) = flags.get("map") {
                let src =
                    fs::read_to_string(map_path).map_err(|e| format!("reading {map_path}: {e}"))?;
                let map =
                    shapex_shex::shapemap::parse(&src).map_err(|e| format!("{map_path}:{e}"))?;
                let outcomes = engine
                    .validate_map(&ds.graph, &mut ds.pool, &map)
                    .map_err(|e| e.to_string())?;
                let mut ok = 0;
                let mut first_exhaustion = None;
                for outcome in &outcomes {
                    let assoc = &map.associations[outcome.index];
                    let verdict = if let Some(e) = outcome.exhaustion {
                        first_exhaustion.get_or_insert(e);
                        "EXHAUSTED"
                    } else if outcome.conforms {
                        "conforms"
                    } else {
                        "fails"
                    };
                    let expectation = if outcome.exhaustion.is_some() {
                        "?"
                    } else if outcome.as_expected {
                        "✓"
                    } else {
                        "✗ UNEXPECTED"
                    };
                    let _ = writeln!(
                        out,
                        "{} @{}{} — {verdict} {expectation}",
                        assoc.node,
                        if assoc.expected { "" } else { "!" },
                        assoc.shape
                    );
                    if let Some(e) = outcome.exhaustion {
                        let _ = writeln!(out, "    {e}");
                    } else if !outcome.as_expected {
                        if let (true, Some(f)) = (flags.has("explain"), &outcome.failure) {
                            let _ = writeln!(out, "    because: {}", f.render(&ds.pool));
                        }
                    }
                    ok += usize::from(outcome.exhaustion.is_none() && outcome.as_expected);
                }
                let _ = writeln!(out, "{ok}/{} associations as expected", outcomes.len());
                if report {
                    let mut doc = ReportDoc::new("map", "derivative");
                    for outcome in &outcomes {
                        let assoc = &map.associations[outcome.index];
                        let verdict = if outcome.exhaustion.is_some() {
                            "exhausted"
                        } else if outcome.conforms {
                            "conforms"
                        } else {
                            "fails"
                        };
                        let mut row = report::result_json(
                            &assoc.node.to_string(),
                            assoc.shape.as_str(),
                            verdict,
                            outcome.failure.as_ref().map(|f| f.render(&ds.pool)),
                            outcome.exhaustion.as_ref(),
                        );
                        if let Value::Object(m) = &mut row {
                            m.insert("expected".to_string(), Value::from(assoc.expected));
                            m.insert("as_expected".to_string(), Value::from(outcome.as_expected));
                        }
                        doc.push_result(row);
                        if let Some(e) = &outcome.exhaustion {
                            doc.push_exhausted(&assoc.node.to_string(), assoc.shape.as_str(), e);
                        }
                    }
                    let conforms = match first_exhaustion {
                        Some(_) => None,
                        None => Some(ok == outcomes.len()),
                    };
                    let output = finish_engine_doc(doc, &engine, skipped, conforms);
                    if let Some(exhaustion) = first_exhaustion {
                        return Err(CliError::Exhausted { output, exhaustion });
                    }
                    if ok < outcomes.len() {
                        return Err(CliError::NonConforming { output });
                    }
                    return Ok(output);
                }
                if flags.has("stats") {
                    let _ = writeln!(out, "stats: {}", engine.stats());
                }
                // Exhaustion outranks non-conformance: with any check
                // unanswered the run is partial, and unexpected verdicts
                // might flip under a larger budget.
                if let Some(exhaustion) = first_exhaustion {
                    return Err(CliError::Exhausted {
                        output: out,
                        exhaustion,
                    });
                }
                if ok < outcomes.len() {
                    return Err(CliError::NonConforming { output: out });
                }
                return Ok(out);
            }
            match (flags.get("node"), flags.get("shape")) {
                (Some(node_iri), Some(shape)) => {
                    let node = ds.pool.intern_iri(node_iri);
                    if flags.has("trace") {
                        let trace = engine
                            .trace(&ds.graph, &ds.pool, node, &ShapeLabel::new(shape))
                            .map_err(|e| engine_err(&out, e))?;
                        if report {
                            let mut doc = ReportDoc::new("trace", "derivative");
                            doc.set("node", Value::from(node_iri));
                            doc.set("shape", Value::from(shape));
                            doc.set("trace", report::trace_json(&trace, &ds.pool));
                            return Ok(finish_engine_doc(doc, &engine, skipped, None));
                        }
                        out.push_str(&trace.render(&ds.pool));
                        return Ok(out);
                    }
                    let result =
                        match engine.check(&ds.graph, &ds.pool, node, &ShapeLabel::new(shape)) {
                            Ok(r) => r,
                            Err(EngineError::ResourceExhausted {
                                resource,
                                spent,
                                limit,
                            }) if report => {
                                let exhaustion = Exhaustion {
                                    resource,
                                    spent,
                                    limit,
                                };
                                let mut doc = ReportDoc::new("check", "derivative");
                                doc.push_result(report::result_json(
                                    node_iri,
                                    shape,
                                    "exhausted",
                                    None,
                                    Some(&exhaustion),
                                ));
                                doc.push_exhausted(node_iri, shape, &exhaustion);
                                return Err(CliError::Exhausted {
                                    output: finish_engine_doc(doc, &engine, skipped, None),
                                    exhaustion,
                                });
                            }
                            Err(e) => return Err(engine_err(&out, e)),
                        };
                    if report {
                        let mut doc = ReportDoc::new("check", "derivative");
                        doc.push_result(report::result_json(
                            node_iri,
                            shape,
                            if result.matched { "conforms" } else { "fails" },
                            result.failure.as_ref().map(|f| f.render(&ds.pool)),
                            None,
                        ));
                        let output = finish_engine_doc(doc, &engine, skipped, Some(result.matched));
                        return if result.matched {
                            Ok(output)
                        } else {
                            Err(CliError::NonConforming { output })
                        };
                    }
                    if result.matched {
                        let _ = writeln!(out, "<{node_iri}> conforms to <{shape}>");
                    } else {
                        let _ = writeln!(out, "<{node_iri}> does NOT conform to <{shape}>");
                        if flags.has("explain") {
                            if let Some(f) = result.failure {
                                let _ = writeln!(out, "  because: {}", f.render(&ds.pool));
                            }
                        }
                        if flags.has("stats") {
                            let _ = writeln!(out, "stats: {}", engine.stats());
                        }
                        return Err(CliError::NonConforming { output: out });
                    }
                }
                (None, None) => {
                    let typing = engine.type_all_par(&ds.graph, &ds.pool, jobs_from_flags(flags)?);
                    if report {
                        let mut doc = ReportDoc::new("typing", "derivative");
                        push_typing_rows(&mut doc, &mut engine, &ds.graph, &ds.pool, &typing);
                        // A completed typing "conforms" in the exit-code
                        // sense (0 = ran to completion); partial runs have
                        // no verdict.
                        let conforms = (!typing.is_partial()).then_some(true);
                        let output = finish_engine_doc(doc, &engine, skipped, conforms);
                        if typing.is_partial() {
                            return Err(CliError::Exhausted {
                                output,
                                exhaustion: typing.exhausted[0].2,
                            });
                        }
                        return Ok(output);
                    }
                    let rendered = typing.render(&ds.pool, &|s| engine.label_of(s).clone());
                    if rendered.is_empty() {
                        let _ = writeln!(out, "no node conforms to any shape");
                    } else {
                        let _ = writeln!(out, "{rendered}");
                    }
                    if flags.has("explain") {
                        for node in ds.graph.subjects().collect::<Vec<_>>() {
                            for i in 0..engine.schema().shapes.len() {
                                let shape = shapex::ShapeId(i as u32);
                                if typing.has(node, shape) {
                                    continue;
                                }
                                if let Some(f) = engine
                                    .check_id(&ds.graph, &ds.pool, node, shape)
                                    .into_failure()
                                {
                                    let _ = writeln!(
                                        out,
                                        "{} ✗ {}: {}",
                                        ds.pool.term(node),
                                        engine.label_of(shape),
                                        f.render(&ds.pool)
                                    );
                                }
                            }
                        }
                    }
                    if typing.is_partial() {
                        let _ = writeln!(
                            out,
                            "PARTIAL: {} (node, shape) check(s) exhausted their budget:",
                            typing.exhausted.len()
                        );
                        let first = typing.exhausted[0].2;
                        for &(node, shape, e) in &typing.exhausted {
                            let _ = writeln!(
                                out,
                                "  {} @ {} — {e}",
                                ds.pool.term(node),
                                engine.label_of(shape)
                            );
                        }
                        if flags.has("stats") {
                            let _ = writeln!(out, "stats: {}", engine.stats());
                        }
                        return Err(CliError::Exhausted {
                            output: out,
                            exhaustion: first,
                        });
                    }
                }
                _ => {
                    return Err(CliError::Msg(
                        "--node and --shape must be given together".into(),
                    ))
                }
            }
            if flags.has("stats") {
                let _ = writeln!(out, "stats: {}", engine.stats());
            }
        }
        "backtracking" => {
            let validator = BacktrackValidator::with_config(
                &schema,
                BtConfig {
                    budget: bt_budget(flags)?,
                },
            )
            .map_err(|e| e.to_string())?;
            let (node_iri, shape) = match (flags.get("node"), flags.get("shape")) {
                (Some(n), Some(s)) => (n, s),
                _ => {
                    return Err(CliError::Msg(
                        "--engine backtracking requires --node and --shape".into(),
                    ))
                }
            };
            let node = ds.pool.intern_iri(node_iri);
            let ok = validator
                .check(&ds.graph, &ds.pool, node, &ShapeLabel::new(shape))
                .map_err(|e| match e {
                    BtError::ResourceExhausted(exhaustion) if report => {
                        let mut doc = ReportDoc::new("check", "backtracking");
                        doc.push_result(report::result_json(
                            node_iri,
                            shape,
                            "exhausted",
                            None,
                            Some(&exhaustion),
                        ));
                        doc.push_exhausted(node_iri, shape, &exhaustion);
                        doc.set("stats", report::bt_stats_json(&validator.stats()));
                        CliError::Exhausted {
                            output: report::render(&doc.finish(None)),
                            exhaustion,
                        }
                    }
                    BtError::ResourceExhausted(exhaustion) => CliError::Exhausted {
                        output: out.clone(),
                        exhaustion,
                    },
                    other => CliError::Msg(other.to_string()),
                })?;
            if report {
                let mut doc = ReportDoc::new("check", "backtracking");
                doc.push_result(report::result_json(
                    node_iri,
                    shape,
                    if ok { "conforms" } else { "fails" },
                    None,
                    None,
                ));
                doc.set("stats", report::bt_stats_json(&validator.stats()));
                if skipped > 0 {
                    doc.set("lenient_skipped", Value::from(skipped));
                }
                let output = report::render(&doc.finish(Some(ok)));
                return if ok {
                    Ok(output)
                } else {
                    Err(CliError::NonConforming { output })
                };
            }
            let verdict = if ok {
                "conforms to"
            } else {
                "does NOT conform to"
            };
            let _ = writeln!(out, "<{node_iri}> {verdict} <{shape}>");
            if flags.has("stats") {
                let st = validator.stats();
                let _ = writeln!(
                    out,
                    "stats: rules={} decompositions={} gfp-iterations={}",
                    st.rule_applications, st.decompositions, st.gfp_iterations
                );
            }
            if !ok {
                return Err(CliError::NonConforming { output: out });
            }
        }
        other => return Err(CliError::Msg(format!("unknown engine '{other}'"))),
    }
    Ok(out)
}

/// The backtracker keeps its own (large, finite) default step budget; only
/// override the pieces the user asked for.
fn bt_budget(flags: &Flags) -> Result<Budget, String> {
    let user = budget_from_flags(flags)?;
    if user.is_unlimited() {
        Ok(BtConfig::default().budget)
    } else {
        Ok(user)
    }
}

fn sparql(flags: &Flags) -> Result<String, String> {
    let schema = load_schema(flags)?;
    let shape = ShapeLabel::new(flags.require("shape")?);
    let query = match flags.get("node") {
        Some(node) => shapex_sparql::generate_node_ask(&schema, &shape, node),
        None => shapex_sparql::generate_select_conforming(&schema, &shape),
    }
    .map_err(|e| e.to_string())?;
    Ok(format!("{query}\n"))
}

fn query(flags: &Flags) -> Result<String, String> {
    let (ds, _) = load_data(flags)?;
    let source = if let Some(path) = flags.get("query") {
        fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    } else if let Some(text) = flags.get("ask").or_else(|| flags.get("select")) {
        text.to_string()
    } else {
        return Err("provide --query FILE, --ask TEXT, or --select TEXT".into());
    };
    let parsed = shapex_sparql::parser::parse(&source).map_err(|e| e.to_string())?;
    let mut out = String::new();
    match &parsed {
        shapex_sparql::Query::Ask(_) => {
            let answer =
                shapex_sparql::ask(&parsed, &ds.graph, &ds.pool).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{answer}");
        }
        shapex_sparql::Query::Select(_) => {
            let rows =
                shapex_sparql::select(&parsed, &ds.graph, &ds.pool).map_err(|e| e.to_string())?;
            if rows.is_empty() {
                let _ = writeln!(out, "(no results)");
            }
            for row in &rows {
                let cells: Vec<String> = row
                    .iter()
                    .map(|(var, binding)| format!("?{var} = {}", binding.term(&ds.pool)))
                    .collect();
                let _ = writeln!(out, "{}", cells.join("	"));
            }
            let _ = writeln!(out, "({} solutions)", rows.len());
        }
    }
    Ok(out)
}

fn lint(flags: &Flags) -> Result<String, String> {
    let schema = load_schema(flags)?;
    let warnings = shapex_shex::lints::lints(&schema);
    if warnings.is_empty() {
        return Ok("no warnings\n".to_string());
    }
    let mut out = String::new();
    for w in &warnings {
        let _ = writeln!(out, "warning: {w}");
    }
    let _ = writeln!(out, "{} warning(s)", warnings.len());
    Ok(out)
}

/// The `check` subcommand: exact schema calculus — per-shape emptiness by
/// default, `--containment A B` for one language-inclusion query,
/// `--schema-delta NEW` for schema diffing (plus verdict-transplant
/// revalidation when `--data` is given). See DESIGN.md §5f.
fn check(flags: &Flags) -> Result<String, CliError> {
    let schema = load_schema(flags)?;
    let budget = budget_from_flags(flags)?;
    let report = report_from_flags(flags)?;
    let closure = if flags.has("open") {
        Closure::Open
    } else {
        Closure::Closed
    };

    if let Some(new_path) = flags.get("schema-delta") {
        return check_schema_delta(flags, &schema, new_path, closure, budget, report);
    }

    let mut terms = TermPool::default();
    let compiled = CompiledSchema::compile(&schema, &mut terms, EngineConfig::default().simplify)
        .map_err(|e| e.to_string())?;

    if let Some(a) = flags.get("containment-a") {
        let b = flags.get("containment-b").expect("parsed as a pair");
        let resolve = |label: &str| {
            compiled
                .shape_id(&ShapeLabel::new(label))
                .ok_or_else(|| CliError::Msg(format!("unknown shape <{label}>")))
        };
        let verdict = shapex::containment(
            &compiled,
            resolve(a)?,
            &compiled,
            resolve(b)?,
            closure,
            &budget,
        );
        let mut out = String::new();
        let _ = writeln!(out, "<{a}> ⊆ <{b}> — {verdict}");
        if report {
            let mut doc = ReportDoc::new("containment", "calculus");
            doc.set("a", Value::from(a));
            doc.set("b", Value::from(b));
            doc.set("verdict", Value::from(verdict.to_string()));
            if let Verdict::Exhausted(e) = &verdict {
                doc.set("exhaustion", e.to_json());
            }
            let conforms = match &verdict {
                Verdict::Contained => Some(true),
                Verdict::NotContained => Some(false),
                Verdict::Undetermined | Verdict::Exhausted(_) => None,
            };
            out = report::render(&doc.finish(conforms));
        }
        return match verdict {
            Verdict::Contained => Ok(out),
            Verdict::NotContained => Err(CliError::NonConforming { output: out }),
            Verdict::Undetermined => Err(CliError::Undetermined { output: out }),
            Verdict::Exhausted(exhaustion) => Err(CliError::Exhausted {
                output: out,
                exhaustion,
            }),
        };
    }

    // Default mode: the per-shape emptiness report.
    let verdicts = shapex::emptiness(&compiled);
    let mut out = String::new();
    let mut doc = ReportDoc::new("emptiness", "calculus");
    let (mut unsat, mut undetermined) = (0usize, 0usize);
    for (shape, v) in compiled.shapes.iter().zip(&verdicts) {
        let verdict = match v {
            Sat3::Sat => "satisfiable",
            Sat3::Unsat => {
                unsat += 1;
                "UNSATISFIABLE (accepts no neighbourhood)"
            }
            Sat3::Unknown => {
                undetermined += 1;
                "undetermined"
            }
        };
        let _ = writeln!(out, "{} — {verdict}", shape.label);
        if report {
            doc.push_result(json!({
                "shape": shape.label.as_str(),
                "verdict": match v {
                    Sat3::Sat => "satisfiable",
                    Sat3::Unsat => "unsatisfiable",
                    Sat3::Unknown => "undetermined",
                },
            }));
        }
    }
    let _ = writeln!(
        out,
        "{} shape(s): {unsat} unsatisfiable, {undetermined} undetermined",
        verdicts.len()
    );
    if report {
        // An unsatisfiability proof is exact and cannot flip, so it sets
        // the verdict even when other shapes stay undetermined.
        let conforms = if unsat > 0 {
            Some(false)
        } else if undetermined > 0 {
            None
        } else {
            Some(true)
        };
        out = report::render(&doc.finish(conforms));
    }
    if unsat > 0 {
        return Err(CliError::NonConforming { output: out });
    }
    if undetermined > 0 {
        return Err(CliError::Undetermined { output: out });
    }
    Ok(out)
}

/// `check --schema-delta NEW`: classify every shape by comparing its
/// language in the old and new schemas; with `--data`, follow up with a
/// transplant-based revalidation whose typing is byte-identical to a
/// from-scratch run under NEW.
fn check_schema_delta(
    flags: &Flags,
    old_schema: &Schema,
    new_path: &str,
    closure: Closure,
    budget: Budget,
    report: bool,
) -> Result<String, CliError> {
    let src = fs::read_to_string(new_path).map_err(|e| format!("reading {new_path}: {e}"))?;
    let new_schema = shexc::parse(&src).map_err(|e| format!("{new_path}:{e}"))?;
    let diff = shapex::schema_diff(
        old_schema,
        &new_schema,
        EngineConfig::default().simplify,
        closure,
        &budget,
    )
    .map_err(|e| e.to_string())?;

    let labels_json = |labels: &[ShapeLabel]| {
        Value::Array(labels.iter().map(|l| Value::from(l.as_str())).collect())
    };
    let diff_json = json!({
        "new_schema": new_path,
        "unchanged": labels_json(&diff.unchanged),
        "changed": labels_json(&diff.changed),
        "added": labels_json(&diff.added),
        "removed": labels_json(&diff.removed),
        "affected": labels_json(&diff.affected),
        "reusable": labels_json(&diff.reusable),
        "exhausted": diff.exhausted.as_ref().map(|e| e.to_json()).unwrap_or(Value::Null),
    });

    let mut out = String::new();
    for (name, labels) in [
        ("unchanged", &diff.unchanged),
        ("changed", &diff.changed),
        ("added", &diff.added),
        ("removed", &diff.removed),
        ("affected", &diff.affected),
        ("reusable", &diff.reusable),
    ] {
        if !labels.is_empty() {
            let list: Vec<&str> = labels.iter().map(|l| l.as_str()).collect();
            let _ = writeln!(out, "{name}: {}", list.join(", "));
        }
    }
    if let Some(e) = &diff.exhausted {
        let _ = writeln!(
            out,
            "exhausted: {e} — every undecided pair was conservatively classified changed"
        );
    }

    if flags.get("data").is_none() {
        // Classification only. Exhaustion means the classification is a
        // sound over-approximation, not the exact answer — exit 3.
        if report {
            let mut doc = ReportDoc::new("schema-delta", "calculus");
            doc.set("schema_delta", diff_json);
            out = report::render(&doc.finish(diff.exhausted.is_none().then_some(true)));
        }
        if let Some(exhaustion) = diff.exhausted {
            return Err(CliError::Exhausted {
                output: out,
                exhaustion,
            });
        }
        return Ok(out);
    }

    // Revalidation: type under the old schema, carry every reusable
    // verdict into a fresh engine for the new schema, re-type. Both
    // engines share one term pool so the transplanted memo keys line up.
    let (mut ds, skipped) = load_data(flags)?;
    let jobs = jobs_from_flags(flags)?;
    let config = EngineConfig {
        closure,
        budget,
        metrics: report,
        ..EngineConfig::default()
    };
    let mut old_engine =
        Engine::compile(old_schema, &mut ds.pool, config).map_err(|e| e.to_string())?;
    old_engine.type_all_par(&ds.graph, &ds.pool, jobs);
    let mut engine =
        Engine::compile(&new_schema, &mut ds.pool, config).map_err(|e| e.to_string())?;
    let transplanted = engine.transplant_verdicts(&old_engine, &diff.reusable);
    let typing = engine.type_all_par(&ds.graph, &ds.pool, jobs);

    if report {
        let mut doc = ReportDoc::new("schema-delta", "calculus");
        let mut delta = diff_json;
        if let Value::Object(m) = &mut delta {
            m.insert("transplanted".to_string(), Value::from(transplanted));
        }
        doc.set("schema_delta", delta);
        push_typing_rows(&mut doc, &mut engine, &ds.graph, &ds.pool, &typing);
        let conforms = (!typing.is_partial()).then_some(true);
        let output = finish_engine_doc(doc, &engine, skipped, conforms);
        if typing.is_partial() {
            return Err(CliError::Exhausted {
                output,
                exhaustion: typing.exhausted[0].2,
            });
        }
        return Ok(output);
    }
    let _ = writeln!(out, "transplanted: {transplanted} verdict(s)");
    let rendered = typing.render(&ds.pool, &|s| engine.label_of(s).clone());
    if rendered.is_empty() {
        let _ = writeln!(out, "no node conforms to any shape");
    } else {
        let _ = writeln!(out, "{rendered}");
    }
    if flags.has("stats") {
        let _ = writeln!(out, "stats: {}", engine.stats());
    }
    if typing.is_partial() {
        let _ = writeln!(
            out,
            "PARTIAL: {} (node, shape) check(s) exhausted their budget",
            typing.exhausted.len()
        );
        return Err(CliError::Exhausted {
            output: out,
            exhaustion: typing.exhausted[0].2,
        });
    }
    Ok(out)
}

fn convert(flags: &Flags) -> Result<String, String> {
    let path = flags.require("schema")?;
    let src = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    // Detect: ShExJ documents start with '{'.
    let schema = if src.trim_start().starts_with('{') {
        shapex_shex::shexj::from_json(&src).map_err(|e| format!("{path}: {e}"))?
    } else {
        shexc::parse(&src).map_err(|e| format!("{path}:{e}"))?
    };
    match flags.get("to").unwrap_or("shexj") {
        "shexj" => Ok(shapex_shex::shexj::to_json(&schema) + "\n"),
        "shexc" => Ok(shapex_shex::display::schema_to_shexc(&schema)),
        other => Err(format!("unknown schema format '{other}'")),
    }
}

fn parse_cmd(flags: &Flags) -> Result<String, String> {
    let (ds, skipped) = load_data(flags)?;
    let note = if skipped > 0 {
        format!("# lenient: skipped {skipped} malformed statement(s)\n")
    } else {
        String::new()
    };
    match flags.get("to").unwrap_or("ntriples") {
        "ntriples" => Ok(note + &writer::to_ntriples(&ds.graph, &ds.pool)),
        "turtle" => Ok(note
            + &writer::to_turtle(
                &ds.graph,
                &ds.pool,
                &shapex_rdf::vocab::well_known_prefixes(),
            )),
        other => Err(format!("unknown output format '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("shapex-cli-test-{name}"));
        fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn person_files() -> (String, String) {
        let schema = write_tmp(
            "schema.shex",
            r#"
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <Person> { foaf:age xsd:integer, foaf:name xsd:string+ }
            "#,
        );
        let data = write_tmp(
            "data.ttl",
            r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :john foaf:age 23; foaf:name "John" .
            :mary foaf:age 50, 65 .
            "#,
        );
        (schema, data)
    }

    fn run_ok(args: &[&str]) -> String {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn run_err(args: &[&str]) -> String {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .unwrap_err()
            .to_string()
    }

    fn run_raw(args: &[&str]) -> Result<String, CliError> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_without_args() {
        let out = run_ok(&[]);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn validate_full_typing() {
        let (schema, data) = person_files();
        let out = run_ok(&["validate", "--schema", &schema, "--data", &data]);
        assert!(out.contains("john"), "{out}");
        assert!(!out.contains("mary → "), "{out}");
    }

    #[test]
    fn validate_ntriples_data() {
        let (schema, _) = person_files();
        let data = write_tmp(
            "data.nt",
            concat!(
                "<http://example.org/john> <http://xmlns.com/foaf/0.1/age> \"23\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
                "<http://example.org/john> <http://xmlns.com/foaf/0.1/name> \"John\" .\n",
                "<http://example.org/mary> <http://xmlns.com/foaf/0.1/age> \"50\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
            ),
        );
        // The .nt suffix routes through the parallel N-Triples parser; the
        // result must match what the Turtle path produces on the same data.
        let out = run_ok(&[
            "validate", "--schema", &schema, "--data", &data, "--jobs", "2",
        ]);
        assert!(out.contains("john"), "{out}");
        assert!(!out.contains("mary → "), "{out}");
        // --lenient is a Turtle-only recovery mode.
        let err = run_err(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--lenient",
        ]);
        assert!(err.contains("not supported for N-Triples"), "{err}");
        // Strict parsing: errors carry the document line number.
        let bad = write_tmp(
            "bad.nt",
            "<http://e/a> <http://e/p> <http://e/o> .\n<http://e/torn>\n",
        );
        let err = run_err(&["validate", "--schema", &schema, "--data", &bad]);
        assert!(err.contains(":2:"), "{err}");
    }

    #[test]
    fn validate_single_node() {
        let (schema, data) = person_files();
        // A failing check carries its report in a NonConforming error so
        // the binary can exit 2 after printing it.
        let err = run_raw(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--node",
            "http://example.org/mary",
            "--shape",
            "Person",
            "--explain",
        ])
        .unwrap_err();
        let CliError::NonConforming { output } = err else {
            panic!("expected NonConforming, got: {err}");
        };
        assert!(output.contains("does NOT conform"), "{output}");
        assert!(output.contains("because:"), "{output}");
    }

    #[test]
    fn validate_with_backtracking_engine() {
        let (schema, data) = person_files();
        let out = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--engine",
            "backtracking",
            "--node",
            "http://example.org/john",
            "--shape",
            "Person",
            "--stats",
        ]);
        assert!(out.contains("conforms to"), "{out}");
        assert!(out.contains("decompositions="), "{out}");
    }

    #[test]
    fn stats_flag() {
        let (schema, data) = person_files();
        let out = run_ok(&["validate", "--schema", &schema, "--data", &data, "--stats"]);
        assert!(out.contains("∂-steps="), "{out}");
    }

    #[test]
    fn sparql_generation() {
        let (schema, _) = person_files();
        let out = run_ok(&[
            "sparql",
            "--schema",
            &schema,
            "--shape",
            "Person",
            "--node",
            "http://example.org/john",
        ]);
        assert!(out.starts_with("ASK"), "{out}");
        let out = run_ok(&["sparql", "--schema", &schema, "--shape", "Person"]);
        assert!(out.starts_with("SELECT"), "{out}");
    }

    #[test]
    fn parse_roundtrip() {
        let (_, data) = person_files();
        let out = run_ok(&["parse", "--data", &data]);
        assert!(out.contains("<http://example.org/john>"));
        let ttl = run_ok(&["parse", "--data", &data, "--to", "turtle"]);
        assert!(ttl.contains("@prefix"));
    }

    #[test]
    fn errors_are_reported() {
        let (schema, data) = person_files();
        assert!(run_err(&["bogus"]).contains("unknown command"));
        assert!(run_err(&["validate", "--schema", schema.as_str()]).contains("--data"));
        assert!(run_err(&[
            "validate", "--schema", &schema, "--data", &data, "--engine", "quantum"
        ])
        .contains("unknown engine"));
        assert!(run_err(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--node",
            "http://e/x"
        ])
        .contains("together"));
        assert!(
            run_err(&["validate", "--schema", "/nonexistent", "--data", &data]).contains("reading")
        );
    }

    #[test]
    fn trace_flag() {
        let (schema, data) = person_files();
        let out = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--node",
            "http://example.org/john",
            "--shape",
            "Person",
            "--trace",
        ]);
        assert!(out.contains("MATCHES"), "{out}");
        assert!(out.contains("∂"), "{out}");
    }

    #[test]
    fn trace_positional_form_matches_flag_form() {
        let (schema, data) = person_files();
        let flag_form = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--node",
            "http://example.org/john",
            "--shape",
            "Person",
            "--trace",
        ]);
        let positional = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--trace",
            "http://example.org/john",
            "Person",
        ]);
        assert_eq!(flag_form, positional);
        let err = run_err(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--trace",
            "http://e/x",
        ]);
        assert!(err.contains("shape label"), "{err}");
    }

    #[test]
    fn report_json_single_check() {
        let (schema, data) = person_files();
        let out = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--node",
            "http://example.org/john",
            "--shape",
            "Person",
            "--report",
            "json",
        ]);
        let v = serde_json::from_str(&out).expect("report parses");
        assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("check"));
        assert_eq!(v.get("conforms").and_then(|c| c.as_bool()), Some(true));
        let results = v.get("results").and_then(|r| r.as_array()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("verdict").and_then(|s| s.as_str()),
            Some("conforms")
        );
        // --report json always collects metrics; the serialized block
        // preserves the cache invariant lookups == hits + misses.
        let metrics = v.get("metrics").expect("metrics block present");
        for cache in ["profile_stable", "profile_assumption", "deriv_memo"] {
            let c = metrics.get(cache).unwrap();
            let field = |k: &str| c.get(k).and_then(|n| n.as_u64()).unwrap();
            assert_eq!(field("lookups"), field("hits") + field("misses"), "{cache}");
        }
        assert!(v.get("stats").is_some());
    }

    #[test]
    fn report_json_nonconforming_carries_failure_and_exit() {
        let (schema, data) = person_files();
        let err = run_raw(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--node",
            "http://example.org/mary",
            "--shape",
            "Person",
            "--report",
            "json",
        ])
        .unwrap_err();
        let CliError::NonConforming { output } = err else {
            panic!("expected NonConforming, got: {err}");
        };
        let v = serde_json::from_str(&output).expect("report parses");
        assert_eq!(v.get("conforms").and_then(|c| c.as_bool()), Some(false));
        let results = v.get("results").and_then(|r| r.as_array()).unwrap();
        assert_eq!(
            results[0].get("verdict").and_then(|s| s.as_str()),
            Some("fails")
        );
        let failure = results[0].get("failure").and_then(|f| f.as_str()).unwrap();
        assert!(!failure.is_empty());
    }

    #[test]
    fn report_json_full_typing() {
        let (schema, data) = person_files();
        let out = run_ok(&[
            "validate", "--schema", &schema, "--data", &data, "--report", "json",
        ]);
        let v = serde_json::from_str(&out).expect("report parses");
        assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("typing"));
        assert_eq!(v.get("conforms").and_then(|c| c.as_bool()), Some(true));
        let results = v.get("results").and_then(|r| r.as_array()).unwrap();
        // Two subjects × one shape.
        assert_eq!(results.len(), 2);
        let verdict_of = |node: &str| {
            results
                .iter()
                .find(|r| {
                    r.get("node")
                        .and_then(|n| n.as_str())
                        .is_some_and(|n| n.contains(node))
                })
                .and_then(|r| r.get("verdict"))
                .and_then(|s| s.as_str())
                .map(str::to_string)
        };
        assert_eq!(verdict_of("john").as_deref(), Some("conforms"));
        assert_eq!(verdict_of("mary").as_deref(), Some("fails"));
        // Failing rows carry a rendered failure trace.
        let mary = results
            .iter()
            .find(|r| {
                r.get("node")
                    .and_then(|n| n.as_str())
                    .is_some_and(|n| n.contains("mary"))
            })
            .unwrap();
        assert!(mary.get("failure").is_some(), "{out}");
        // The per-shape metrics rows are labeled with the shape name.
        let per_shape = v
            .get("metrics")
            .and_then(|m| m.get("per_shape"))
            .and_then(|p| p.as_array())
            .unwrap();
        assert_eq!(
            per_shape[0].get("shape").and_then(|s| s.as_str()),
            Some("Person")
        );
    }

    #[test]
    fn report_json_exhaustion_wins_and_nulls_verdict() {
        let (schema, data) = person_files();
        let err = run_raw(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--max-steps",
            "1",
            "--report",
            "json",
        ])
        .unwrap_err();
        let CliError::Exhausted { output, .. } = err else {
            panic!("expected Exhausted, got: {err}");
        };
        let v = serde_json::from_str(&output).expect("report parses");
        assert!(v.get("conforms").unwrap().is_null(), "{output}");
        let exhausted = v.get("exhausted").and_then(|e| e.as_array()).unwrap();
        assert!(!exhausted.is_empty());
        let record = exhausted[0].get("exhaustion").unwrap();
        assert_eq!(
            record.get("resource").and_then(|r| r.as_str()),
            Some("steps")
        );
        assert_eq!(record.get("limit").and_then(|l| l.as_u64()), Some(1));
    }

    #[test]
    fn report_json_trace_mode() {
        let (schema, data) = person_files();
        let out = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--trace",
            "http://example.org/john",
            "Person",
            "--report",
            "json",
        ]);
        let v = serde_json::from_str(&out).expect("report parses");
        assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("trace"));
        let trace = v.get("trace").unwrap();
        assert_eq!(trace.get("matched").and_then(|m| m.as_bool()), Some(true));
        let steps = trace.get("steps").and_then(|s| s.as_array()).unwrap();
        assert!(!steps.is_empty());
        assert!(steps[0].get("before").is_some());
        assert!(steps[0].get("after").is_some());
    }

    #[test]
    fn report_json_backtracking_engine() {
        let (schema, data) = person_files();
        let out = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--engine",
            "backtracking",
            "--node",
            "http://example.org/john",
            "--shape",
            "Person",
            "--report",
            "json",
        ]);
        let v = serde_json::from_str(&out).expect("report parses");
        assert_eq!(
            v.get("engine").and_then(|e| e.as_str()),
            Some("backtracking")
        );
        let stats = v.get("stats").unwrap();
        assert!(
            stats
                .get("rule_applications")
                .and_then(|r| r.as_u64())
                .unwrap()
                > 0
        );
    }

    #[test]
    fn report_json_map_mode() {
        let (schema, data) = person_files();
        let map = write_tmp(
            "report.sm",
            "<http://example.org/john>@<Person>,\n<http://example.org/mary>@!<Person>",
        );
        let out = run_ok(&[
            "validate", "--schema", &schema, "--data", &data, "--map", &map, "--report", "json",
        ]);
        let v = serde_json::from_str(&out).expect("report parses");
        assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("map"));
        assert_eq!(v.get("conforms").and_then(|c| c.as_bool()), Some(true));
        let results = v.get("results").and_then(|r| r.as_array()).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[1].get("as_expected").and_then(|b| b.as_bool()),
            Some(true)
        );
        assert_eq!(
            results[1].get("expected").and_then(|b| b.as_bool()),
            Some(false)
        );
    }

    #[test]
    fn report_rejects_unknown_format() {
        let (schema, data) = person_files();
        let err = run_err(&[
            "validate", "--schema", &schema, "--data", &data, "--report", "xml",
        ]);
        assert!(err.contains("unknown report format"), "{err}");
    }

    #[test]
    fn lint_command() {
        let (schema, _) = person_files();
        assert_eq!(run_ok(&["lint", "--schema", &schema]).trim(), "no warnings");
        let dirty = write_tmp(
            "dirty.shex",
            "PREFIX e: <http://e/>\nstart = @<A>\n<A> { e:p [] }\n<Dead> { e:q . }",
        );
        let out = run_ok(&["lint", "--schema", &dirty]);
        assert!(out.contains("empty value set"), "{out}");
        assert!(out.contains("never referenced"), "{out}");
        assert!(out.contains("warning(s)"), "{out}");
    }

    #[test]
    fn check_emptiness_modes_and_exit_split() {
        let (schema, _) = person_files();
        let out = run_ok(&["check", "--schema", &schema]);
        assert!(out.contains("<Person> — satisfiable"), "{out}");
        assert!(out.contains("0 unsatisfiable"), "{out}");
        // A shape whose only alternative demands {2,} of an empty-valued
        // arc is proven empty — exit path NonConforming (code 2), with
        // the satisfiable shape still reported.
        let dead = write_tmp(
            "check-dead.shex",
            "PREFIX e: <http://e/>\n<Dead> { e:p []{2,} }\n<Ok> { e:q . }",
        );
        let err = run_raw(&["check", "--schema", &dead]).unwrap_err();
        let CliError::NonConforming { output } = err else {
            panic!("expected NonConforming, got: {err}");
        };
        assert!(output.contains("<Dead> — UNSATISFIABLE"), "{output}");
        assert!(output.contains("<Ok> — satisfiable"), "{output}");
        // JSON report mode.
        let err = run_raw(&["check", "--schema", &dead, "--report", "json"]).unwrap_err();
        let CliError::NonConforming { output } = err else {
            panic!("expected NonConforming, got: {err}");
        };
        let v: Value = serde_json::from_str(&output).expect("report parses");
        assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("emptiness"));
        assert_eq!(v.get("conforms").and_then(|c| c.as_bool()), Some(false));
        let results = v.get("results").and_then(|r| r.as_array()).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("verdict").and_then(|s| s.as_str()),
            Some("unsatisfiable")
        );
    }

    #[test]
    fn check_containment_exit_codes() {
        let schema = write_tmp(
            "check-cont.shex",
            "PREFIX e: <http://e/>\n<A> { e:p . }\n<B> { e:p .? }\n<C> { e:q . }",
        );
        // A ⊆ B (one occurrence fits the optional) — exit 0.
        let out = run_ok(&["check", "--schema", &schema, "--containment", "A", "B"]);
        assert!(out.contains("contained"), "{out}");
        // B ⊄ A (the empty neighbourhood conforms to B only) — exit 2.
        let err = run_raw(&["check", "--schema", &schema, "--containment", "B", "A"]).unwrap_err();
        let CliError::NonConforming { output } = err else {
            panic!("expected NonConforming, got: {err}");
        };
        assert!(output.contains("not-contained"), "{output}");
        // A starved budget trips Exhausted (exit 3), never a hang.
        let err = run_raw(&[
            "check",
            "--schema",
            &schema,
            "--containment",
            "A",
            "B",
            "--max-steps",
            "1",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Exhausted { .. }), "{err}");
        // Unknown labels are plain errors.
        let err = run_raw(&["check", "--schema", &schema, "--containment", "A", "Zzz"]);
        assert!(matches!(err, Err(CliError::Msg(m)) if m.contains("unknown shape")));
        // JSON report carries the verdict.
        let out = run_ok(&[
            "check",
            "--schema",
            &schema,
            "--containment",
            "A",
            "B",
            "--report",
            "json",
        ]);
        let v: Value = serde_json::from_str(&out).expect("report parses");
        assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("containment"));
        assert_eq!(v.get("verdict").and_then(|s| s.as_str()), Some("contained"));
        assert_eq!(v.get("conforms").and_then(|c| c.as_bool()), Some(true));
    }

    #[test]
    fn check_schema_delta_classifies_and_revalidates() {
        let old = write_tmp(
            "delta-old.shex",
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n<Person> { foaf:age xsd:integer, foaf:name xsd:string+ }\n<Thing> { foaf:name . }",
        );
        // Person's name cardinality widens (changed); Thing is textually
        // rewritten but language-equal (unchanged, reusable).
        let new = write_tmp(
            "delta-new.shex",
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n<Person> { foaf:age xsd:integer, foaf:name xsd:string* }\n<Thing> { foaf:name .{1,1} }",
        );
        let out = run_ok(&["check", "--schema", &old, "--schema-delta", &new]);
        assert!(out.contains("changed: Person"), "{out}");
        assert!(out.contains("unchanged: Thing"), "{out}");
        assert!(out.contains("reusable: Thing"), "{out}");

        // With data: the revalidated typing must be byte-identical to a
        // from-scratch typing under the new schema.
        let (_, data) = person_files();
        let delta_out = run_ok(&[
            "check",
            "--schema",
            &old,
            "--schema-delta",
            &new,
            "--data",
            &data,
            "--jobs",
            "1",
        ]);
        assert!(delta_out.contains("transplanted:"), "{delta_out}");
        let scratch = run_ok(&["validate", "--schema", &new, "--data", &data, "--jobs", "1"]);
        let typing_of = |s: &str| {
            s.lines()
                .filter(|l| l.contains('→'))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(typing_of(&delta_out), typing_of(&scratch));
    }

    #[test]
    fn convert_command_roundtrip() {
        let (schema, _) = person_files();
        let j = run_ok(&["convert", "--schema", &schema, "--to", "shexj"]);
        assert!(j.contains("TripleConstraint"), "{j}");
        let jpath = write_tmp("schema.json", &j);
        let c = run_ok(&["convert", "--schema", &jpath, "--to", "shexc"]);
        assert!(c.contains("<Person> {"), "{c}");
        assert!(run_err(&["convert", "--schema", &schema, "--to", "yaml"])
            .contains("unknown schema format"));
    }

    #[test]
    fn query_command() {
        let (_, data) = person_files();
        let ask = run_ok(&[
            "query",
            "--data",
            &data,
            "--ask",
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> ASK { ?s foaf:name \"John\" }",
        ]);
        assert_eq!(ask.trim(), "true");
        let select = run_ok(&[
            "query", "--data", &data, "--select",
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?s (COUNT(*) AS ?c) WHERE { ?s foaf:age ?o } GROUP BY ?s HAVING (?c >= 2)",
        ]);
        assert!(select.contains("mary"), "{select}");
        assert!(select.contains("(1 solutions)"), "{select}");
        assert!(run_err(&["query", "--data", &data]).contains("provide"));
        assert!(!run_err(&["query", "--data", &data, "--ask", "NOT SPARQL"]).is_empty());
    }

    #[test]
    fn shape_map_flow() {
        let (schema, data) = person_files();
        let map = write_tmp(
            "assoc.sm",
            "<http://example.org/john>@<Person>,\n<http://example.org/mary>@!<Person>,\n<http://example.org/mary>@<Person>",
        );
        let err = run_raw(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--map",
            &map,
            "--explain",
        ])
        .unwrap_err();
        let CliError::NonConforming { output } = err else {
            panic!("expected NonConforming, got: {err}");
        };
        assert!(output.contains("2/3 associations as expected"), "{output}");
        assert!(output.contains("UNEXPECTED"), "{output}");
        assert!(output.contains("because:"), "{output}");
    }

    #[test]
    fn no_sorbe_flag_agrees() {
        let (schema, data) = person_files();
        let with_fast = run_ok(&["validate", "--schema", &schema, "--data", &data]);
        let without = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--no-sorbe",
        ]);
        assert_eq!(with_fast, without);
    }

    #[test]
    fn no_dfa_flag_agrees() {
        // The lazy DFA is a pure lookup-structure swap: conformance output
        // must be byte-identical with and without it, including when the
        // SORBE fast path is also off and the derivative engine does all
        // the work.
        let (schema, data) = person_files();
        let with_dfa = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--no-sorbe",
        ]);
        let without = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--no-sorbe",
            "--no-dfa",
        ]);
        assert_eq!(with_dfa, without);
    }

    #[test]
    fn budget_flag_exhaustion_is_distinct() {
        let (schema, data) = person_files();
        // --max-steps 1: the very first derivative step trips the budget.
        let err = run_raw(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--node",
            "http://example.org/john",
            "--shape",
            "Person",
            "--max-steps",
            "1",
        ])
        .unwrap_err();
        match err {
            CliError::Exhausted { exhaustion, .. } => {
                assert_eq!(exhaustion.resource, shapex::Resource::Steps);
                assert_eq!(exhaustion.limit, 1);
            }
            other => panic!("expected Exhausted, got: {other}"),
        }
        // A generous budget behaves exactly like no budget.
        let out = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--max-steps",
            "1000000",
            "--max-depth",
            "1000",
            "--timeout-ms",
            "60000",
        ]);
        assert!(out.contains("john"), "{out}");
    }

    #[test]
    fn budget_flag_partial_typing_lists_exhausted_pairs() {
        let (schema, data) = person_files();
        let err = run_raw(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--max-steps",
            "1",
        ])
        .unwrap_err();
        match err {
            CliError::Exhausted { output, exhaustion } => {
                assert!(output.contains("PARTIAL"), "{output}");
                assert!(output.contains("budget exhausted"), "{output}");
                assert_eq!(exhaustion.resource, shapex::Resource::Steps);
            }
            other => panic!("expected Exhausted, got: {other}"),
        }
    }

    #[test]
    fn budget_flag_rejects_garbage() {
        let (schema, data) = person_files();
        let err = run_err(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--max-steps",
            "lots",
        ]);
        assert!(err.contains("positive integer"), "{err}");
    }

    #[test]
    fn backtracking_respects_budget_flags() {
        let (schema, data) = person_files();
        let err = run_raw(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--engine",
            "backtracking",
            "--node",
            "http://example.org/john",
            "--shape",
            "Person",
            "--max-steps",
            "1",
        ])
        .unwrap_err();
        assert!(
            matches!(err, CliError::Exhausted { .. }),
            "expected Exhausted, got: {err}"
        );
    }

    #[test]
    fn exhaustion_outranks_nonconformance() {
        // A map run where one association fails outright (non-conformance,
        // exit 2 on its own) AND another trips the step budget: the run is
        // partial, so Exhausted (exit 3) must win — the failing verdict
        // might flip with a larger budget.
        let (schema, _) = person_files();
        let mut big = String::from(
            "@prefix : <http://example.org/> .\n\
             @prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
             :mary foaf:age 50, 65 .\n\
             :big foaf:age 23 ",
        );
        for i in 0..200 {
            big.push_str(&format!("; foaf:name \"n{i}\" "));
        }
        big.push_str(".\n");
        let data = write_tmp("precedence.ttl", &big);
        let map = write_tmp(
            "precedence.sm",
            "<http://example.org/mary>@<Person>,\n<http://example.org/big>@<Person>",
        );
        let args = [
            "validate", "--schema", &schema, "--data", &data, "--map", &map,
        ];
        // Sanity: without a budget the same run is merely non-conforming.
        let plain = run_raw(&args).unwrap_err();
        let CliError::NonConforming { output } = &plain else {
            panic!("expected NonConforming, got: {plain}");
        };
        assert!(output.contains("1/2 associations as expected"), "{output}");
        // With a budget mary's check still completes (and fails) but big's
        // exhausts — and exhaustion wins.
        let mut budgeted: Vec<&str> = args.to_vec();
        budgeted.extend(["--max-steps", "40"]);
        let err = run_raw(&budgeted).unwrap_err();
        let CliError::Exhausted { output, .. } = &err else {
            panic!("expected Exhausted, got: {err}");
        };
        assert!(output.contains("UNEXPECTED"), "{output}");
        assert!(output.contains("EXHAUSTED"), "{output}");
    }

    #[test]
    fn jobs_flag_matches_sequential_typing() {
        let (schema, data) = person_files();
        let sequential = run_ok(&[
            "validate", "--schema", &schema, "--data", &data, "--jobs", "1",
        ]);
        for jobs in ["2", "4", "8"] {
            let parallel = run_ok(&[
                "validate", "--schema", &schema, "--data", &data, "--jobs", jobs,
            ]);
            assert_eq!(sequential, parallel, "--jobs {jobs} diverged");
        }
        assert!(
            run_err(&["validate", "--schema", &schema, "--data", &data, "--jobs", "0"])
                .contains("positive integer")
        );
        assert!(
            run_err(&["validate", "--schema", &schema, "--data", &data, "--jobs", "two"])
                .contains("positive integer")
        );
    }

    #[test]
    fn lenient_flag_skips_malformed_statements() {
        let (schema, _) = person_files();
        let data = write_tmp(
            "corrupt.ttl",
            r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :john foaf:age 23; foaf:name "John" .
            :broken foaf:age %%% garbage %%% .
            :mary foaf:age 50, 65 .
            "#,
        );
        // Strict mode aborts on the corrupt statement.
        let err = run_err(&["validate", "--schema", &schema, "--data", &data]);
        assert!(err.contains("corrupt.ttl"), "{err}");
        // Lenient mode skips it and still validates john.
        let out = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--lenient",
        ]);
        assert!(out.contains("skipped 1 malformed statement(s)"), "{out}");
        assert!(out.contains("john"), "{out}");
        let parsed = run_ok(&["parse", "--data", &data, "--lenient"]);
        assert!(parsed.contains("# lenient: skipped 1"), "{parsed}");
    }

    #[test]
    fn open_mode_flag() {
        let schema = write_tmp("open.shex", "PREFIX e: <http://e/>\n<S> { e:a [1] }");
        let data = write_tmp(
            "open.ttl",
            "@prefix e: <http://e/> . e:n e:a 1; e:other 2 .",
        );
        let closed = run_raw(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--node",
            "http://e/n",
            "--shape",
            "S",
        ])
        .unwrap_err();
        let CliError::NonConforming { output } = closed else {
            panic!("expected NonConforming, got: {closed}");
        };
        assert!(output.contains("does NOT conform"), "{output}");
        let open = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--node",
            "http://e/n",
            "--shape",
            "S",
            "--open",
        ]);
        assert!(open.contains("conforms to"), "{open}");
    }

    /// The delta file used by the `--delta` tests: it repairs mary (drops
    /// the extra age, adds the missing name), flipping her verdict.
    fn mary_delta_file() -> String {
        write_tmp(
            "mary.delta",
            "@prefix : <http://example.org/> .\n\
             @prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
             - :mary foaf:age 65 .\n\
             + :mary foaf:name \"Mary\" .\n",
        )
    }

    #[test]
    fn delta_mode_emits_before_after_report() {
        let (schema, data) = person_files();
        let delta = mary_delta_file();
        let out = run_ok(&[
            "validate", "--schema", &schema, "--data", &data, "--delta", &delta, "--report",
            "json", "--jobs", "1",
        ]);
        let v: Value = serde_json::from_str(&out).expect("report parses");
        assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("delta"));
        let verdict_of = |doc: &Value, node: &str| {
            doc.get("results")
                .and_then(|r| r.as_array())
                .unwrap()
                .iter()
                .find(|r| {
                    r.get("node")
                        .and_then(|n| n.as_str())
                        .is_some_and(|n| n.contains(node))
                })
                .and_then(|r| r.get("verdict"))
                .and_then(|s| s.as_str())
                .map(str::to_string)
        };
        let before = v.get("before").expect("before doc");
        let after = v.get("after").expect("after doc");
        assert_eq!(verdict_of(before, "mary").as_deref(), Some("fails"));
        assert_eq!(verdict_of(after, "mary").as_deref(), Some("conforms"));
        assert_eq!(verdict_of(after, "john").as_deref(), Some("conforms"));
        let d = v.get("delta").expect("delta block");
        assert_eq!(d.get("added").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(d.get("removed").and_then(|n| n.as_u64()), Some(1));
        // Only mary's pair is disturbed; john's answer is reused.
        assert_eq!(d.get("retyped").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(d.get("reused").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(v.get("conforms").and_then(|c| c.as_bool()), Some(true));
    }

    #[test]
    fn delta_after_report_matches_scratch_run() {
        let (schema, data) = person_files();
        let delta = mary_delta_file();
        let out = run_ok(&[
            "validate", "--schema", &schema, "--data", &data, "--delta", &delta, "--report",
            "json", "--jobs", "1",
        ]);
        let v: Value = serde_json::from_str(&out).unwrap();
        // The same end state, typed from scratch: identical result rows.
        let data_after = write_tmp(
            "data-after.ttl",
            r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :john foaf:age 23; foaf:name "John" .
            :mary foaf:age 50; foaf:name "Mary" .
            "#,
        );
        let scratch = run_ok(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data_after,
            "--report",
            "json",
        ]);
        let s: Value = serde_json::from_str(&scratch).unwrap();
        let after = v.get("after").unwrap();
        assert_eq!(after.get("results"), s.get("results"));
        assert_eq!(after.get("conforms"), s.get("conforms"));
    }

    #[test]
    fn delta_requires_report_json() {
        let (schema, data) = person_files();
        let delta = mary_delta_file();
        let err = run_err(&[
            "validate", "--schema", &schema, "--data", &data, "--delta", &delta,
        ]);
        assert!(err.contains("--report json"), "{err}");
    }

    #[test]
    fn delta_conflicts_with_focus_flags() {
        let (schema, data) = person_files();
        let delta = mary_delta_file();
        let err = run_err(&[
            "validate",
            "--schema",
            &schema,
            "--data",
            &data,
            "--delta",
            &delta,
            "--report",
            "json",
            "--node",
            "http://example.org/mary",
            "--shape",
            "Person",
        ]);
        assert!(err.contains("cannot be combined"), "{err}");
    }

    #[test]
    fn delta_bad_file_reports_line() {
        let (schema, data) = person_files();
        let delta = write_tmp("bad.delta", "+ not turtle at all\n");
        let err = run_err(&[
            "validate", "--schema", &schema, "--data", &data, "--delta", &delta, "--report", "json",
        ]);
        assert!(err.contains("delta line 1"), "{err}");
    }
}

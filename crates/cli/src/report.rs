//! JSON rendering for `shapex validate --report json`.
//!
//! The document schema is documented in `DESIGN.md` (§ Observability) and
//! held stable by the CLI tests and the CI smoke step. Stats, metrics, and
//! exhaustion blocks come from the engine types' own `to_json` methods;
//! this module assembles the document around them.

use serde_json::{json, Map, Value};
use shapex::{Exhaustion, Metrics, Stats, Trace};
use shapex_backtrack::BtStats;
use shapex_rdf::pool::TermPool;

/// Serializes a report document: pretty-printed, trailing newline.
pub fn render(v: &Value) -> String {
    let mut s = serde_json::to_string_pretty(v).expect("report values contain no NaN");
    s.push('\n');
    s
}

/// One `(node, shape)` verdict row.
pub fn result_json(
    node: &str,
    shape: &str,
    verdict: &str,
    failure: Option<String>,
    exhaustion: Option<&Exhaustion>,
) -> Value {
    let mut m = Map::new();
    m.insert("node".to_string(), Value::from(node));
    m.insert("shape".to_string(), Value::from(shape));
    m.insert("verdict".to_string(), Value::from(verdict));
    if let Some(f) = failure {
        m.insert("failure".to_string(), Value::from(f));
    }
    if let Some(e) = exhaustion {
        m.insert("exhaustion".to_string(), exhaustion_json(e));
    }
    Value::Object(m)
}

pub fn exhaustion_json(e: &Exhaustion) -> Value {
    e.to_json()
}

pub fn stats_json(s: &Stats) -> Value {
    s.to_json()
}

/// The `metrics` block; `labels(i)` names shape `i` for per-shape rows.
pub fn metrics_json(m: &Metrics, labels: &dyn Fn(usize) -> String) -> Value {
    m.to_json(labels)
}

pub fn bt_stats_json(s: &BtStats) -> Value {
    json!({
        "rule_applications": s.rule_applications,
        "decompositions": s.decompositions,
        "gfp_iterations": s.gfp_iterations,
        "node_checks": s.node_checks,
        "budget_steps": s.budget_steps,
        "exhausted_checks": s.exhausted_checks,
    })
}

/// A §7 derivative trace as structured steps.
pub fn trace_json(t: &Trace, pool: &TermPool) -> Value {
    let steps: Vec<Value> = t
        .steps
        .iter()
        .map(|s| {
            json!({
                "subject": pool.term(s.subject).to_string(),
                "predicate": pool.term(s.predicate).to_string(),
                "object": pool.term(s.object).to_string(),
                "inverse": s.inverse,
                "before": s.before.as_str(),
                "after": s.after.as_str(),
            })
        })
        .collect();
    json!({
        "steps": Value::Array(steps),
        "residual": t.residual.as_str(),
        "nullable": t.nullable,
        "matched": t.matched,
    })
}

/// The top-level document skeleton shared by every `validate` mode.
pub struct ReportDoc {
    root: Map<String, Value>,
    results: Vec<Value>,
    exhausted: Vec<Value>,
}

impl ReportDoc {
    pub fn new(mode: &str, engine: &str) -> Self {
        let mut root = Map::new();
        root.insert("tool".to_string(), Value::from("shapex"));
        root.insert("mode".to_string(), Value::from(mode));
        root.insert("engine".to_string(), Value::from(engine));
        ReportDoc {
            root,
            results: Vec::new(),
            exhausted: Vec::new(),
        }
    }

    pub fn set(&mut self, key: &str, value: Value) {
        self.root.insert(key.to_string(), value);
    }

    pub fn push_result(&mut self, row: Value) {
        self.results.push(row);
    }

    pub fn push_exhausted(&mut self, node: &str, shape: &str, e: &Exhaustion) {
        let mut m = Map::new();
        m.insert("node".to_string(), Value::from(node));
        m.insert("shape".to_string(), Value::from(shape));
        m.insert("exhaustion".to_string(), exhaustion_json(e));
        self.exhausted.push(Value::Object(m));
    }

    /// Seals the document. `conforms` is the run's overall verdict; it is
    /// `null` when any check exhausted (the honest answer is "unknown").
    pub fn finish(mut self, conforms: Option<bool>) -> Value {
        self.root.insert(
            "conforms".to_string(),
            conforms.map_or(Value::Null, Value::from),
        );
        self.root
            .insert("results".to_string(), Value::Array(self.results));
        self.root
            .insert("exhausted".to_string(), Value::Array(self.exhausted));
        Value::Object(self.root)
    }
}

//! JSON rendering for `shapex validate --report json`.
//!
//! The document builders live in [`shapex::report`] so the resident
//! server can emit byte-identical documents; this module re-exports them
//! and adds the one block core cannot build — the backtracking reference
//! engine's stats (core does not depend on `shapex-backtrack`).

use serde_json::{json, Value};
use shapex_backtrack::BtStats;

pub use shapex::report::{
    finish_engine_doc, push_typing_rows, render, result_json, trace_json, ReportDoc,
};

pub fn bt_stats_json(s: &BtStats) -> Value {
    json!({
        "rule_applications": s.rule_applications,
        "decompositions": s.decompositions,
        "gfp_iterations": s.gfp_iterations,
        "node_checks": s.node_checks,
        "budget_steps": s.budget_steps,
        "exhausted_checks": s.exhausted_checks,
    })
}

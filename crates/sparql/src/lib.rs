#![warn(missing_docs)]
//! # shapex-sparql
//!
//! The paper's §3 comparator: translation of (flat) Regular Shape
//! Expressions into SPARQL validation queries, plus a small SPARQL engine
//! covering exactly the algebra those queries use (BGPs, FILTER, OPTIONAL,
//! UNION, sub-SELECT, COUNT with GROUP BY / HAVING, ASK).
//!
//! ```
//! use shapex_sparql::{generate, parser, eval};
//! use shapex_shex::shexc;
//! use shapex_rdf::turtle;
//!
//! let schema = shexc::parse(r#"
//!     PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//!     PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
//!     <Person> { foaf:age xsd:integer, foaf:name xsd:string+ }
//! "#).unwrap();
//! let ds = turtle::parse(r#"
//!     @prefix : <http://example.org/> .
//!     @prefix foaf: <http://xmlns.com/foaf/0.1/> .
//!     :john foaf:age 23; foaf:name "John" .
//! "#).unwrap();
//!
//! let q = generate::generate_node_ask(
//!     &schema, &"Person".into(), "http://example.org/john").unwrap();
//! let parsed = parser::parse(&q).unwrap();
//! assert!(eval::ask(&parsed, &ds.graph, &ds.pool).unwrap());
//! ```

pub mod ast;
pub mod display;
pub mod eval;
pub mod generate;
pub mod parser;

pub use ast::{Expression, GroupPattern, Query, SelectQuery, Var};
pub use display::query_to_string;
pub use eval::{ask, select, EvalError, Solution};
pub use generate::{generate_node_ask, generate_select_conforming, GenError};

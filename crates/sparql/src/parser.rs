//! Recursive-descent parser for the SPARQL fragment.

use std::collections::HashMap;

use shapex_rdf::parser::{decode_string_escape, Cursor, ParseError};
use shapex_rdf::term::{Literal, Term};
use shapex_rdf::vocab::xsd;

use crate::ast::*;

/// Parses a query (ASK or SELECT) with optional PREFIX/BASE prologue.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser {
        cur: Cursor::new(input),
        prefixes: HashMap::new(),
    };
    let q = p.query()?;
    p.cur.skip_ws_and_comments();
    if !p.cur.at_end() {
        return Err(p.cur.error("trailing input after query"));
    }
    Ok(q)
}

struct Parser<'a> {
    cur: Cursor<'a>,
    prefixes: HashMap<String, String>,
}

impl Parser<'_> {
    fn query(&mut self) -> Result<Query, ParseError> {
        loop {
            self.cur.skip_ws_and_comments();
            if self.keyword("PREFIX") {
                let name = self.pname_ns()?;
                self.cur.skip_ws_and_comments();
                let iri = self.iriref()?;
                self.prefixes.insert(name, iri);
            } else if self.keyword("BASE") {
                self.iriref()?; // accepted, ignored
            } else {
                break;
            }
        }
        if self.keyword("ASK") {
            self.cur.skip_ws_and_comments();
            // optional WHERE
            self.keyword("WHERE");
            let g = self.group()?;
            return Ok(Query::Ask(g));
        }
        if self.peek_keyword("SELECT") {
            let s = self.select_query()?;
            return Ok(Query::Select(s));
        }
        Err(self.cur.error("expected ASK or SELECT"))
    }

    fn select_query(&mut self) -> Result<SelectQuery, ParseError> {
        if !self.keyword("SELECT") {
            return Err(self.cur.error("expected SELECT"));
        }
        let distinct = self.keyword("DISTINCT");
        self.cur.skip_ws_and_comments();
        let projection = if self.cur.eat('*') {
            Projection::All
        } else {
            let mut items = Vec::new();
            loop {
                self.cur.skip_ws_and_comments();
                match self.cur.peek() {
                    Some('?') | Some('$') => items.push(ProjectionItem::Var(self.var()?)),
                    Some('(') => {
                        self.cur.bump();
                        let e = self.expression()?;
                        self.cur.skip_ws_and_comments();
                        if !self.keyword("AS") {
                            return Err(self.cur.error("expected AS in projection"));
                        }
                        self.cur.skip_ws_and_comments();
                        let v = self.var()?;
                        self.cur.skip_ws_and_comments();
                        if !self.cur.eat(')') {
                            return Err(self.cur.error("expected ')' after projection"));
                        }
                        items.push(ProjectionItem::Bind(e, v));
                    }
                    _ => break,
                }
            }
            if items.is_empty() {
                return Err(self.cur.error("empty SELECT projection"));
            }
            Projection::Items(items)
        };
        self.cur.skip_ws_and_comments();
        self.keyword("WHERE"); // optional
        let pattern = self.group()?;
        let mut group_by = Vec::new();
        self.cur.skip_ws_and_comments();
        if self.keyword("GROUP") {
            self.cur.skip_ws_and_comments();
            if !self.keyword("BY") {
                return Err(self.cur.error("expected BY after GROUP"));
            }
            loop {
                self.cur.skip_ws_and_comments();
                if matches!(self.cur.peek(), Some('?') | Some('$')) {
                    group_by.push(self.var()?);
                } else {
                    break;
                }
            }
            if group_by.is_empty() {
                return Err(self.cur.error("empty GROUP BY"));
            }
        }
        let mut having = Vec::new();
        self.cur.skip_ws_and_comments();
        if self.keyword("HAVING") {
            loop {
                self.cur.skip_ws_and_comments();
                if self.cur.peek() == Some('(') {
                    self.cur.bump();
                    having.push(self.expression()?);
                    self.cur.skip_ws_and_comments();
                    if !self.cur.eat(')') {
                        return Err(self.cur.error("expected ')' closing HAVING"));
                    }
                } else {
                    break;
                }
            }
            if having.is_empty() {
                return Err(self.cur.error("empty HAVING"));
            }
        }
        Ok(SelectQuery {
            distinct,
            projection,
            pattern,
            group_by,
            having,
        })
    }

    fn group(&mut self) -> Result<GroupPattern, ParseError> {
        self.cur.skip_ws_and_comments();
        if !self.cur.eat('{') {
            return Err(self.cur.error("expected '{'"));
        }
        let mut elements = Vec::new();
        loop {
            self.cur.skip_ws_and_comments();
            match self.cur.peek() {
                None => return Err(self.cur.error("unterminated group")),
                Some('}') => {
                    self.cur.bump();
                    return Ok(GroupPattern { elements });
                }
                Some('{') => {
                    // Nested group, sub-select, or UNION chain.
                    let first = self.group_or_subselect()?;
                    let mut union_acc = first;
                    loop {
                        self.cur.skip_ws_and_comments();
                        if self.keyword("UNION") {
                            let next = self.group_or_subselect()?;
                            union_acc = PatternElement::Union(
                                GroupPattern {
                                    elements: vec![union_acc],
                                },
                                GroupPattern {
                                    elements: vec![next],
                                },
                            );
                        } else {
                            break;
                        }
                    }
                    elements.push(union_acc);
                    self.cur.skip_ws_and_comments();
                    self.cur.eat('.'); // optional separator
                }
                Some(_) => {
                    if self.keyword("FILTER") {
                        self.cur.skip_ws_and_comments();
                        if !self.cur.eat('(') {
                            return Err(self.cur.error("expected '(' after FILTER"));
                        }
                        let e = self.expression()?;
                        self.cur.skip_ws_and_comments();
                        if !self.cur.eat(')') {
                            return Err(self.cur.error("expected ')' closing FILTER"));
                        }
                        elements.push(PatternElement::Filter(e));
                        self.cur.skip_ws_and_comments();
                        self.cur.eat('.');
                    } else if self.keyword("OPTIONAL") {
                        let g = self.group()?;
                        elements.push(PatternElement::Optional(g));
                        self.cur.skip_ws_and_comments();
                        self.cur.eat('.');
                    } else {
                        self.triples_block(&mut elements)?;
                    }
                }
            }
        }
    }

    fn group_or_subselect(&mut self) -> Result<PatternElement, ParseError> {
        self.cur.skip_ws_and_comments();
        if !self.cur.eat('{') {
            return Err(self.cur.error("expected '{'"));
        }
        self.cur.skip_ws_and_comments();
        if self.peek_keyword("SELECT") {
            let s = self.select_query()?;
            self.cur.skip_ws_and_comments();
            if !self.cur.eat('}') {
                return Err(self.cur.error("expected '}' closing sub-select"));
            }
            return Ok(PatternElement::SubSelect(Box::new(s)));
        }
        // Re-parse as a group: we already consumed '{', so parse the body.
        let mut elements = Vec::new();
        loop {
            self.cur.skip_ws_and_comments();
            match self.cur.peek() {
                None => return Err(self.cur.error("unterminated group")),
                Some('}') => {
                    self.cur.bump();
                    return Ok(PatternElement::Group(GroupPattern { elements }));
                }
                _ => {
                    // Delegate: wrap the remaining parse through the same
                    // logic by handling one item.
                    if self.keyword("FILTER") {
                        self.cur.skip_ws_and_comments();
                        if !self.cur.eat('(') {
                            return Err(self.cur.error("expected '(' after FILTER"));
                        }
                        let e = self.expression()?;
                        self.cur.skip_ws_and_comments();
                        if !self.cur.eat(')') {
                            return Err(self.cur.error("expected ')' closing FILTER"));
                        }
                        elements.push(PatternElement::Filter(e));
                        self.cur.skip_ws_and_comments();
                        self.cur.eat('.');
                    } else if self.keyword("OPTIONAL") {
                        let g = self.group()?;
                        elements.push(PatternElement::Optional(g));
                        self.cur.skip_ws_and_comments();
                        self.cur.eat('.');
                    } else if self.cur.peek() == Some('{') {
                        let inner = self.group_or_subselect()?;
                        elements.push(inner);
                        self.cur.skip_ws_and_comments();
                        self.cur.eat('.');
                    } else {
                        self.triples_block(&mut elements)?;
                    }
                }
            }
        }
    }

    /// Parses `s p o (';' p o)* (',' o)* '.'?` triple patterns.
    fn triples_block(&mut self, out: &mut Vec<PatternElement>) -> Result<(), ParseError> {
        let subject = self.term_pattern()?;
        loop {
            self.cur.skip_ws_and_comments();
            let predicate = self.predicate_pattern()?;
            loop {
                self.cur.skip_ws_and_comments();
                let object = self.term_pattern()?;
                out.push(PatternElement::Triple(TriplePattern {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                }));
                self.cur.skip_ws_and_comments();
                if !self.cur.eat(',') {
                    break;
                }
            }
            if !self.cur.eat(';') {
                break;
            }
        }
        self.cur.skip_ws_and_comments();
        self.cur.eat('.');
        Ok(())
    }

    fn predicate_pattern(&mut self) -> Result<TermPattern, ParseError> {
        self.cur.skip_ws_and_comments();
        if self.cur.peek() == Some('a') && self.cur.peek2().is_some_and(|c| c.is_whitespace()) {
            self.cur.bump();
            return Ok(TermPattern::Term(Term::iri(shapex_rdf::vocab::rdf::TYPE)));
        }
        self.term_pattern()
    }

    fn term_pattern(&mut self) -> Result<TermPattern, ParseError> {
        self.cur.skip_ws_and_comments();
        match self.cur.peek() {
            Some('?') | Some('$') => Ok(TermPattern::Var(self.var()?)),
            _ => Ok(TermPattern::Term(self.term()?)),
        }
    }

    fn var(&mut self) -> Result<Var, ParseError> {
        self.cur.bump(); // '?' or '$'
        let mut name = String::new();
        while let Some(c) = self.cur.peek() {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.cur.bump();
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(self.cur.error("empty variable name"));
        }
        Ok(Var::new(name))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.cur.skip_ws_and_comments();
        match self.cur.peek() {
            Some('<') => Ok(Term::iri(self.iriref()?)),
            Some('_') => {
                if !self.cur.eat_str("_:") {
                    return Err(self.cur.error("expected blank node"));
                }
                let mut label = String::new();
                while let Some(c) = self.cur.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        label.push(c);
                        self.cur.bump();
                    } else {
                        break;
                    }
                }
                Ok(Term::blank(label))
            }
            Some('"') | Some('\'') => self.literal(),
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' => self.number(),
            Some('t') | Some('f')
                if self.cur.rest().starts_with("true") || self.cur.rest().starts_with("false") =>
            {
                let v = self.cur.eat_str("true");
                if !v {
                    self.cur.eat_str("false");
                }
                Ok(Term::Literal(Literal::boolean(v)))
            }
            _ => {
                let iri = self.prefixed_name()?;
                Ok(Term::iri(iri))
            }
        }
    }

    fn literal(&mut self) -> Result<Term, ParseError> {
        let quote = self.cur.bump().expect("caller checked quote");
        let mut s = String::new();
        loop {
            match self.cur.bump() {
                None => return Err(self.cur.error("unterminated string")),
                Some('\\') => s.push(decode_string_escape(&mut self.cur)?),
                Some(c) if c == quote => break,
                Some(c) => s.push(c),
            }
        }
        if self.cur.eat('@') {
            let mut tag = String::new();
            while let Some(c) = self.cur.peek() {
                if c.is_ascii_alphanumeric() || c == '-' {
                    tag.push(c);
                    self.cur.bump();
                } else {
                    break;
                }
            }
            return Ok(Term::Literal(Literal::lang_string(s, &tag)));
        }
        if self.cur.eat_str("^^") {
            let dt = if self.cur.peek() == Some('<') {
                self.iriref()?
            } else {
                self.prefixed_name()?
            };
            return Ok(Term::Literal(Literal::typed(s, dt)));
        }
        Ok(Term::Literal(Literal::string(s)))
    }

    fn number(&mut self) -> Result<Term, ParseError> {
        let mut s = String::new();
        if matches!(self.cur.peek(), Some('+') | Some('-')) {
            s.push(self.cur.bump().expect("peeked"));
        }
        let mut has_dot = false;
        while let Some(c) = self.cur.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.cur.bump();
            } else if c == '.' && !has_dot && self.cur.peek2().is_some_and(|c| c.is_ascii_digit()) {
                has_dot = true;
                s.push('.');
                self.cur.bump();
            } else {
                break;
            }
        }
        if !s.bytes().any(|b| b.is_ascii_digit()) {
            return Err(self.cur.error("expected number"));
        }
        let dt = if has_dot { xsd::DECIMAL } else { xsd::INTEGER };
        Ok(Term::Literal(Literal::typed(s, dt)))
    }

    fn iriref(&mut self) -> Result<String, ParseError> {
        if !self.cur.eat('<') {
            return Err(self.cur.error("expected '<'"));
        }
        let mut iri = String::new();
        loop {
            match self.cur.bump() {
                None => return Err(self.cur.error("unterminated IRI")),
                Some('>') => return Ok(iri),
                Some(c) if c.is_whitespace() => return Err(self.cur.error("whitespace in IRI")),
                Some(c) => iri.push(c),
            }
        }
    }

    fn pname_ns(&mut self) -> Result<String, ParseError> {
        self.cur.skip_ws_and_comments();
        let mut name = String::new();
        while let Some(c) = self.cur.peek() {
            if c == ':' {
                self.cur.bump();
                return Ok(name);
            }
            if c.is_alphanumeric() || c == '_' || c == '-' {
                name.push(c);
                self.cur.bump();
            } else {
                break;
            }
        }
        Err(self.cur.error("expected ':'"))
    }

    fn prefixed_name(&mut self) -> Result<String, ParseError> {
        let mut prefix = String::new();
        while let Some(c) = self.cur.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                prefix.push(c);
                self.cur.bump();
            } else {
                break;
            }
        }
        if !self.cur.eat(':') {
            return Err(self
                .cur
                .error(format!("expected ':' after prefix '{prefix}'")));
        }
        let ns = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.cur.error(format!("undefined prefix '{prefix}:'")))?;
        let mut iri = ns.clone();
        while let Some(c) = self.cur.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '%') {
                iri.push(c);
                self.cur.bump();
            } else if c == '.'
                && self
                    .cur
                    .peek2()
                    .is_some_and(|n| n.is_alphanumeric() || n == '_')
            {
                iri.push('.');
                self.cur.bump();
            } else {
                break;
            }
        }
        Ok(iri)
    }

    /// Consumes a case-insensitive keyword at a word boundary.
    fn keyword(&mut self, kw: &str) -> bool {
        self.cur.skip_ws_and_comments();
        if self.cur.starts_with_keyword_ci(kw) {
            self.cur.eat_str_ci(kw);
            true
        } else {
            false
        }
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.cur.skip_ws_and_comments();
        self.cur.starts_with_keyword_ci(kw)
    }

    // ---- expressions, precedence: || < && < comparison < additive < unary

    fn expression(&mut self) -> Result<Expression, ParseError> {
        let mut e = self.and_expr()?;
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.eat_str("||") {
                e = Expression::or(e, self.and_expr()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn and_expr(&mut self) -> Result<Expression, ParseError> {
        let mut e = self.comparison()?;
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.eat_str("&&") {
                e = Expression::and(e, self.comparison()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn comparison(&mut self) -> Result<Expression, ParseError> {
        let left = self.additive()?;
        self.cur.skip_ws_and_comments();
        let op: fn(Box<Expression>, Box<Expression>) -> Expression = if self.cur.eat_str("!=") {
            Expression::NotEqual
        } else if self.cur.eat_str("<=") {
            Expression::LessEq
        } else if self.cur.eat_str(">=") {
            Expression::GreaterEq
        } else if self.cur.eat('=') {
            Expression::Equal
        } else if self.cur.eat('<') {
            Expression::Less
        } else if self.cur.eat('>') {
            Expression::Greater
        } else {
            return Ok(left);
        };
        let right = self.additive()?;
        Ok(op(Box::new(left), Box::new(right)))
    }

    fn additive(&mut self) -> Result<Expression, ParseError> {
        let mut e = self.unary()?;
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.eat('+') {
                e = Expression::Add(Box::new(e), Box::new(self.unary()?));
            } else if self.cur.peek() == Some('-')
                && !self.cur.peek2().is_some_and(|c| c.is_ascii_digit())
            {
                self.cur.bump();
                e = Expression::Subtract(Box::new(e), Box::new(self.unary()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expression, ParseError> {
        self.cur.skip_ws_and_comments();
        if self.cur.peek() == Some('!') && self.cur.peek2() != Some('=') {
            self.cur.bump();
            return Ok(Expression::Not(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expression, ParseError> {
        self.cur.skip_ws_and_comments();
        match self.cur.peek() {
            Some('(') => {
                self.cur.bump();
                let e = self.expression()?;
                self.cur.skip_ws_and_comments();
                if !self.cur.eat(')') {
                    return Err(self.cur.error("expected ')'"));
                }
                Ok(e)
            }
            Some('?') | Some('$') => Ok(Expression::Var(self.var()?)),
            _ => {
                for (kw, builder) in BUILTINS {
                    if self.peek_keyword(kw) {
                        self.keyword(kw);
                        self.cur.skip_ws_and_comments();
                        if !self.cur.eat('(') {
                            return Err(self.cur.error(format!("expected '(' after {kw}")));
                        }
                        let e = self.builtin_body(kw, builder)?;
                        self.cur.skip_ws_and_comments();
                        if !self.cur.eat(')') {
                            return Err(self.cur.error(format!("expected ')' closing {kw}")));
                        }
                        return Ok(e);
                    }
                }
                Ok(Expression::Constant(self.term()?))
            }
        }
    }

    fn builtin_body(&mut self, kw: &str, kind: BuiltinKind) -> Result<Expression, ParseError> {
        self.cur.skip_ws_and_comments();
        match kind {
            BuiltinKind::CountStar => {
                if self.cur.eat('*') {
                    Ok(Expression::Count(None))
                } else {
                    let v = self.var()?;
                    Ok(Expression::Count(Some(v)))
                }
            }
            BuiltinKind::BoundVar => Ok(Expression::Bound(self.var()?)),
            BuiltinKind::Unary(f) => {
                let e = self.expression()?;
                let _ = kw;
                Ok(f(Box::new(e)))
            }
        }
    }
}

#[derive(Clone, Copy)]
enum BuiltinKind {
    CountStar,
    BoundVar,
    Unary(fn(Box<Expression>) -> Expression),
}

const BUILTINS: [(&str, BuiltinKind); 7] = [
    ("COUNT", BuiltinKind::CountStar),
    ("bound", BuiltinKind::BoundVar),
    ("isLiteral", BuiltinKind::Unary(Expression::IsLiteral)),
    ("isIRI", BuiltinKind::Unary(Expression::IsIri)),
    ("isBlank", BuiltinKind::Unary(Expression::IsBlank)),
    ("datatype", BuiltinKind::Unary(Expression::Datatype)),
    ("str", BuiltinKind::Unary(Expression::Str)),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ask_with_bgp() {
        let q = parse("ASK { <http://e/a> <http://e/p> ?o . }").unwrap();
        let Query::Ask(g) = q else {
            panic!("expected ASK")
        };
        assert_eq!(g.elements.len(), 1);
    }

    #[test]
    fn prefixes_resolve() {
        let q = parse("PREFIX e: <http://e/>\nASK { e:a e:p e:b }").unwrap();
        let Query::Ask(g) = q else { panic!() };
        let PatternElement::Triple(t) = &g.elements[0] else {
            panic!()
        };
        assert_eq!(t.subject, TermPattern::Term(Term::iri("http://e/a")));
    }

    #[test]
    fn select_with_projection_and_group_by() {
        let q = parse("SELECT ?s (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?s HAVING (?c >= 2)")
            .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.group_by, vec![Var::new("s")]);
        assert_eq!(s.having.len(), 1);
        let Projection::Items(items) = &s.projection else {
            panic!()
        };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn filter_expressions() {
        let q = parse(
            "ASK { ?s ?p ?o . FILTER(isLiteral(?o) && datatype(?o) = <http://e/dt> || !bound(?o)) }",
        )
        .unwrap();
        let Query::Ask(g) = q else { panic!() };
        assert!(matches!(
            g.elements[1],
            PatternElement::Filter(Expression::Or(_, _))
        ));
    }

    #[test]
    fn subselect_nested() {
        let q =
            parse("ASK { { SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o } } FILTER(?c = 3) }").unwrap();
        let Query::Ask(g) = q else { panic!() };
        assert!(matches!(g.elements[0], PatternElement::SubSelect(_)));
        assert!(matches!(g.elements[1], PatternElement::Filter(_)));
    }

    #[test]
    fn union_chain() {
        let q = parse("ASK { { ?s <http://e/a> ?o } UNION { ?s <http://e/b> ?o } }").unwrap();
        let Query::Ask(g) = q else { panic!() };
        assert!(matches!(g.elements[0], PatternElement::Union(_, _)));
    }

    #[test]
    fn optional_block() {
        let q = parse("ASK { ?s <http://e/a> ?o . OPTIONAL { ?s <http://e/b> ?x } }").unwrap();
        let Query::Ask(g) = q else { panic!() };
        assert!(matches!(g.elements[1], PatternElement::Optional(_)));
    }

    #[test]
    fn predicate_object_lists() {
        let q = parse("ASK { ?s <http://e/a> 1, 2; <http://e/b> \"x\" }").unwrap();
        let Query::Ask(g) = q else { panic!() };
        assert_eq!(g.elements.len(), 3);
    }

    #[test]
    fn a_keyword() {
        let q = parse("ASK { ?s a <http://e/T> }").unwrap();
        let Query::Ask(g) = q else { panic!() };
        let PatternElement::Triple(t) = &g.elements[0] else {
            panic!()
        };
        assert_eq!(
            t.predicate,
            TermPattern::Term(Term::iri(shapex_rdf::vocab::rdf::TYPE))
        );
    }

    #[test]
    fn arithmetic_in_filter() {
        let q = parse("ASK { FILTER(?a + ?b = ?c - 1) }").unwrap();
        let Query::Ask(g) = q else { panic!() };
        let PatternElement::Filter(Expression::Equal(l, r)) = &g.elements[0] else {
            panic!()
        };
        assert!(matches!(**l, Expression::Add(_, _)));
        assert!(matches!(**r, Expression::Subtract(_, _)));
    }

    #[test]
    fn errors() {
        assert!(parse("ASK { ?s ?p }").is_err());
        assert!(parse("SELECT WHERE { }").is_err());
        assert!(parse("ASK { ?s ?p ?o ").is_err());
        assert!(parse("FOO { }").is_err());
        assert!(parse("ASK { } trailing").is_err());
        assert!(parse("ASK { e:a e:p e:b }").is_err()); // undefined prefix
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("ask where { ?s ?p ?o }").is_ok());
        assert!(parse("select ?s where { ?s ?p ?o } group by ?s").is_ok());
    }
}

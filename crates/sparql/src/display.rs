//! Pretty-printing parsed queries back to SPARQL text.
//!
//! Round-trip contract: printed output re-parses to an equal [`Query`]
//! (tested below and in the integration suite); useful for logging and
//! for inspecting generated validation queries after transformation.

use std::fmt::Write as _;

use shapex_rdf::term::Term;
use shapex_rdf::vocab::xsd;

use crate::ast::*;

/// Renders a query as SPARQL text.
pub fn query_to_string(query: &Query) -> String {
    let mut out = String::new();
    match query {
        Query::Ask(g) => {
            out.push_str("ASK ");
            group_to_string(g, 0, &mut out);
        }
        Query::Select(s) => select_to_string(s, 0, &mut out),
    }
    out.push('\n');
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn select_to_string(s: &SelectQuery, depth: usize, out: &mut String) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    match &s.projection {
        Projection::All => out.push('*'),
        Projection::Items(items) => {
            let parts: Vec<String> = items
                .iter()
                .map(|item| match item {
                    ProjectionItem::Var(v) => format!("?{}", v.as_str()),
                    ProjectionItem::Bind(e, v) => {
                        format!("({} AS ?{})", expr_to_string(e), v.as_str())
                    }
                })
                .collect();
            out.push_str(&parts.join(" "));
        }
    }
    out.push_str(" WHERE ");
    group_to_string(&s.pattern, depth, out);
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY");
        for v in &s.group_by {
            let _ = write!(out, " ?{}", v.as_str());
        }
    }
    for h in &s.having {
        let _ = write!(out, " HAVING ({})", expr_to_string(h));
    }
}

fn group_to_string(g: &GroupPattern, depth: usize, out: &mut String) {
    out.push_str("{\n");
    for element in &g.elements {
        indent(depth + 1, out);
        match element {
            PatternElement::Triple(t) => {
                let _ = write!(
                    out,
                    "{} {} {} .",
                    term_pattern(&t.subject),
                    term_pattern(&t.predicate),
                    term_pattern(&t.object)
                );
            }
            PatternElement::Filter(e) => {
                let _ = write!(out, "FILTER({})", expr_to_string(e));
            }
            PatternElement::Optional(inner) => {
                out.push_str("OPTIONAL ");
                group_to_string(inner, depth + 1, out);
            }
            PatternElement::Union(a, b) => {
                union_branch(a, depth + 1, out);
                out.push_str(" UNION ");
                union_branch(b, depth + 1, out);
            }
            PatternElement::SubSelect(s) => {
                out.push_str("{ ");
                select_to_string(s, depth + 1, out);
                out.push_str(" }");
            }
            PatternElement::Group(inner) => {
                group_to_string(inner, depth + 1, out);
            }
        }
        out.push('\n');
    }
    indent(depth, out);
    out.push('}');
}

/// Prints a UNION operand. The parser wraps each branch in a
/// one-element group, whose element prints its own braces — unwrap that
/// level so the round trip does not accumulate nesting.
fn union_branch(g: &GroupPattern, depth: usize, out: &mut String) {
    if let [PatternElement::Group(inner)] = g.elements.as_slice() {
        group_to_string(inner, depth, out);
        return;
    }
    if let [PatternElement::SubSelect(s)] = g.elements.as_slice() {
        out.push_str("{ ");
        select_to_string(s, depth, out);
        out.push_str(" }");
        return;
    }
    group_to_string(g, depth, out);
}

fn term_pattern(p: &TermPattern) -> String {
    match p {
        TermPattern::Var(v) => format!("?{}", v.as_str()),
        TermPattern::Term(t) => term_to_string(t),
    }
}

/// Renders a term in SPARQL syntax (numeric shorthand preserved so the
/// round trip is exact).
fn term_to_string(t: &Term) -> String {
    if let Term::Literal(l) = t {
        if l.datatype() == xsd::INTEGER || l.datatype() == xsd::DECIMAL {
            return l.lexical_form().to_string();
        }
        if l.datatype() == xsd::BOOLEAN {
            return l.lexical_form().to_string();
        }
    }
    t.to_string()
}

fn expr_to_string(e: &Expression) -> String {
    // Precedence: || < && < comparison < additive < unary. Parenthesise
    // conservatively on the lower-precedence side.
    match e {
        Expression::Var(v) => format!("?{}", v.as_str()),
        Expression::Constant(t) => term_to_string(t),
        Expression::Count(None) => "COUNT(*)".to_string(),
        Expression::Count(Some(v)) => format!("COUNT(?{})", v.as_str()),
        Expression::And(a, b) => format!("({} && {})", expr_to_string(a), expr_to_string(b)),
        Expression::Or(a, b) => format!("({} || {})", expr_to_string(a), expr_to_string(b)),
        Expression::Not(a) => format!("!({})", expr_to_string(a)),
        Expression::Equal(a, b) => format!("({} = {})", expr_to_string(a), expr_to_string(b)),
        Expression::NotEqual(a, b) => {
            format!("({} != {})", expr_to_string(a), expr_to_string(b))
        }
        Expression::Less(a, b) => format!("({} < {})", expr_to_string(a), expr_to_string(b)),
        Expression::LessEq(a, b) => {
            format!("({} <= {})", expr_to_string(a), expr_to_string(b))
        }
        Expression::Greater(a, b) => {
            format!("({} > {})", expr_to_string(a), expr_to_string(b))
        }
        Expression::GreaterEq(a, b) => {
            format!("({} >= {})", expr_to_string(a), expr_to_string(b))
        }
        Expression::Add(a, b) => format!("({} + {})", expr_to_string(a), expr_to_string(b)),
        Expression::Subtract(a, b) => {
            format!("({} - {})", expr_to_string(a), expr_to_string(b))
        }
        Expression::IsLiteral(a) => format!("isLiteral({})", expr_to_string(a)),
        Expression::IsIri(a) => format!("isIRI({})", expr_to_string(a)),
        Expression::IsBlank(a) => format!("isBlank({})", expr_to_string(a)),
        Expression::Bound(v) => format!("bound(?{})", v.as_str()),
        Expression::Datatype(a) => format!("datatype({})", expr_to_string(a)),
        Expression::Str(a) => format!("str({})", expr_to_string(a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn roundtrip(src: &str) {
        let q1 = parser::parse(src).unwrap();
        let printed = query_to_string(&q1);
        let q2 = parser::parse(&printed)
            .unwrap_or_else(|e| panic!("printed query must re-parse: {e}\n{printed}"));
        assert_eq!(q1, q2, "printed:\n{printed}");
    }

    #[test]
    fn ask_roundtrips() {
        roundtrip("ASK { <http://e/a> <http://e/p> ?o . FILTER(isLiteral(?o)) }");
    }

    #[test]
    fn select_roundtrips() {
        roundtrip(
            "SELECT DISTINCT ?s (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?s HAVING (?c >= 2)",
        );
    }

    #[test]
    fn optional_union_subselect_roundtrip() {
        roundtrip(
            "ASK { { SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o } } \
             OPTIONAL { ?s <http://e/q> ?x } \
             { ?s <http://e/a> ?y } UNION { ?s <http://e/b> ?y } \
             FILTER(?c = 3 && bound(?x) || !(?y > 1)) }",
        );
    }

    #[test]
    fn literals_roundtrip() {
        roundtrip("ASK { ?s ?p 42 . ?s ?p 4.5 . ?s ?p true . ?s ?p \"x\"@en . ?s ?p \"y\" }");
    }

    #[test]
    fn generated_validation_query_roundtrips() {
        use shapex_shex::shexc;
        let schema = shexc::parse(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             <P> { foaf:age xsd:integer, foaf:name xsd:string+ }",
        )
        .unwrap();
        let q = crate::generate::generate_node_ask(&schema, &"P".into(), "http://e/n").unwrap();
        roundtrip(&q);
        let q = crate::generate::generate_select_conforming(&schema, &"P".into()).unwrap();
        roundtrip(&q);
    }

    #[test]
    fn arithmetic_roundtrips() {
        roundtrip("ASK { FILTER(?a + ?b = ?c - 1) }");
    }
}

//! Evaluator for the SPARQL fragment, over a [`Graph`] + [`TermPool`].
//!
//! Semantics follow the SPARQL 1.1 algebra for the covered fragment:
//! group patterns join their elements, FILTERs scope to their group,
//! OPTIONAL is a left join, aggregates without GROUP BY form one implicit
//! group (so `COUNT(*)` over no solutions is 0), and expression errors
//! eliminate the row rather than failing the query.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use shapex_rdf::graph::Graph;
use shapex_rdf::pool::{TermId, TermPool};
use shapex_rdf::term::Term;
use shapex_rdf::xsd::Numeric;

use crate::ast::*;

/// A variable binding: either a term from the graph's pool or a value
/// computed by a projection expression (e.g. a COUNT) that may not exist
/// in the pool.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Binding {
    /// A term from the graph's pool.
    Term(TermId),
    /// A computed value (e.g. a COUNT) not present in the pool.
    Computed(Term),
}

impl Binding {
    /// The bound term, resolved against the pool.
    pub fn term<'a>(&'a self, pool: &'a TermPool) -> &'a Term {
        match self {
            Binding::Term(id) => pool.term(*id),
            Binding::Computed(t) => t,
        }
    }
}

/// A single solution mapping (variable → binding).
pub type Solution = BTreeMap<Box<str>, Binding>;

/// Evaluation errors (static problems; dynamic expression errors just
/// eliminate rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An aggregate (COUNT) used outside a projection/HAVING context.
    AggregateOutsideProjection,
    /// A constant term in the query that cannot occur in the graph is
    /// fine; this error is for malformed queries only.
    Malformed(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::AggregateOutsideProjection => {
                write!(f, "aggregate used outside projection/HAVING")
            }
            EvalError::Malformed(m) => write!(f, "malformed query: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates an ASK query.
pub fn ask(query: &Query, graph: &Graph, pool: &TermPool) -> Result<bool, EvalError> {
    match query {
        Query::Ask(g) => Ok(!eval_group(g, graph, pool)?.is_empty()),
        Query::Select(_) => Err(EvalError::Malformed("expected ASK query".into())),
    }
}

/// Evaluates a SELECT query into rows of `(projected var → term)`.
/// Unbound projections are absent from the row map.
pub fn select(query: &Query, graph: &Graph, pool: &TermPool) -> Result<Vec<Solution>, EvalError> {
    match query {
        Query::Select(s) => eval_select(s, graph, pool),
        Query::Ask(_) => Err(EvalError::Malformed("expected SELECT query".into())),
    }
}

fn eval_group(
    group: &GroupPattern,
    graph: &Graph,
    pool: &TermPool,
) -> Result<Vec<Solution>, EvalError> {
    let mut rows: Vec<Solution> = vec![Solution::new()];
    let mut filters: Vec<&Expression> = Vec::new();
    for element in &group.elements {
        match element {
            PatternElement::Triple(t) => {
                rows = match_triple(t, graph, pool, rows);
            }
            PatternElement::Filter(e) => filters.push(e),
            PatternElement::Optional(g) => {
                let right = eval_group(g, graph, pool)?;
                rows = left_join(rows, right);
            }
            PatternElement::Union(a, b) => {
                let mut u = eval_group(a, graph, pool)?;
                u.extend(eval_group(b, graph, pool)?);
                rows = join(rows, u);
            }
            PatternElement::SubSelect(s) => {
                let right = eval_select(s, graph, pool)?;
                rows = join(rows, right);
            }
            PatternElement::Group(g) => {
                let right = eval_group(g, graph, pool)?;
                rows = join(rows, right);
            }
        }
        if rows.is_empty() && filters.is_empty() {
            // Keep evaluating only for side-condition-free early exit.
            break;
        }
    }
    if !filters.is_empty() {
        rows.retain(|row| {
            filters.iter().all(|f| {
                matches!(
                    eval_expr(f, row, pool, None),
                    Ok(v) if effective_boolean(&v)
                )
            })
        });
    }
    Ok(rows)
}

fn eval_select(
    s: &SelectQuery,
    graph: &Graph,
    pool: &TermPool,
) -> Result<Vec<Solution>, EvalError> {
    let rows = eval_group(&s.pattern, graph, pool)?;
    let has_aggregate = projection_has_aggregate(&s.projection) || !s.having.is_empty();

    let mut out: Vec<Solution> = Vec::new();
    if !s.group_by.is_empty() || has_aggregate {
        // Group rows: by key when GROUP BY present, else one implicit group.
        let mut groups: BTreeMap<Vec<Option<Binding>>, Vec<Solution>> = BTreeMap::new();
        if s.group_by.is_empty() {
            groups.insert(Vec::new(), rows);
        } else {
            for row in rows {
                let key: Vec<Option<Binding>> = s
                    .group_by
                    .iter()
                    .map(|v| row.get(v.as_str()).cloned())
                    .collect();
                groups.entry(key).or_default().push(row);
            }
        }
        for (key, members) in groups {
            // A representative row exposing the grouped variables.
            let mut rep = Solution::new();
            for (v, t) in s.group_by.iter().zip(key.iter()) {
                if let Some(t) = t {
                    rep.insert(v.as_str().into(), t.clone());
                }
            }
            // Project first so HAVING can reference projection aliases
            // (e.g. `HAVING (?c >= 2)` with `(COUNT(*) AS ?c)`).
            let projected = project(&s.projection, &rep, pool, Some(&members))?;
            let mut visible = rep.clone();
            for (k, v) in &projected {
                visible.insert(k.clone(), v.clone());
            }
            let keep = s.having.iter().all(|h| {
                matches!(
                    eval_expr(h, &visible, pool, Some(&members)),
                    Ok(v) if effective_boolean(&v)
                )
            });
            if !keep {
                continue;
            }
            out.push(projected);
        }
    } else {
        for row in rows {
            out.push(project(&s.projection, &row, pool, None)?);
        }
    }
    if s.distinct {
        out.sort();
        out.dedup();
    }
    Ok(out)
}

fn projection_has_aggregate(p: &Projection) -> bool {
    match p {
        Projection::All => false,
        Projection::Items(items) => items
            .iter()
            .any(|i| matches!(i, ProjectionItem::Bind(e, _) if expr_has_aggregate(e))),
    }
}

fn expr_has_aggregate(e: &Expression) -> bool {
    match e {
        Expression::Count(_) => true,
        Expression::And(a, b)
        | Expression::Or(a, b)
        | Expression::Equal(a, b)
        | Expression::NotEqual(a, b)
        | Expression::Less(a, b)
        | Expression::LessEq(a, b)
        | Expression::Greater(a, b)
        | Expression::GreaterEq(a, b)
        | Expression::Add(a, b)
        | Expression::Subtract(a, b) => expr_has_aggregate(a) || expr_has_aggregate(b),
        Expression::Not(a)
        | Expression::IsLiteral(a)
        | Expression::IsIri(a)
        | Expression::IsBlank(a)
        | Expression::Datatype(a)
        | Expression::Str(a) => expr_has_aggregate(a),
        Expression::Var(_) | Expression::Constant(_) | Expression::Bound(_) => false,
    }
}

fn project(
    projection: &Projection,
    row: &Solution,
    pool: &TermPool,
    group: Option<&[Solution]>,
) -> Result<Solution, EvalError> {
    match projection {
        Projection::All => Ok(row.clone()),
        Projection::Items(items) => {
            let mut out = Solution::new();
            for item in items {
                match item {
                    ProjectionItem::Var(v) => {
                        if let Some(b) = row.get(v.as_str()) {
                            out.insert(v.as_str().into(), b.clone());
                        }
                    }
                    ProjectionItem::Bind(e, v) => {
                        if expr_has_aggregate(e) && group.is_none() {
                            return Err(EvalError::AggregateOutsideProjection);
                        }
                        if let Ok(val) = eval_expr(e, row, pool, group) {
                            // Materialise computed values as terms so they
                            // can join with outer patterns. Numbers become
                            // canonical integer/decimal literals.
                            if let Some(b) = value_to_binding(val, pool) {
                                out.insert(v.as_str().into(), b);
                            }
                        }
                    }
                }
            }
            Ok(out)
        }
    }
}

/// The computed value of an expression.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Term(TermId),
    Const(Term),
    Num(Numeric),
    Bool(bool),
    Str(String),
}

/// A dynamic expression error: the row is eliminated.
struct ExprError;

/// Turns a computed value into a binding, preferring pool terms so that
/// joins with graph-produced bindings compare equal.
fn value_to_binding(v: Value, pool: &TermPool) -> Option<Binding> {
    let term = match v {
        Value::Term(t) => return Some(Binding::Term(t)),
        Value::Const(t) => t,
        Value::Num(n) => numeric_to_term(n),
        Value::Bool(b) => Term::Literal(shapex_rdf::term::Literal::boolean(b)),
        Value::Str(s) => Term::Literal(shapex_rdf::term::Literal::string(s)),
    };
    Some(match pool.get(&term) {
        Some(id) => Binding::Term(id),
        None => Binding::Computed(term),
    })
}

fn numeric_to_term(n: Numeric) -> Term {
    use shapex_rdf::term::Literal;
    match n {
        Numeric::Decimal { unscaled, scale: 0 } => {
            Term::Literal(Literal::typed(unscaled.to_string(), xsd_ns::INTEGER))
        }
        Numeric::Decimal { unscaled, scale } => Term::Literal(Literal::typed(
            format!("{}", unscaled as f64 / 10f64.powi(scale as i32)),
            xsd_ns::DECIMAL,
        )),
        Numeric::Double(d) => Term::Literal(Literal::typed(format!("{d}"), xsd_ns::DOUBLE)),
    }
}

use shapex_rdf::vocab::xsd as xsd_ns;

fn eval_expr(
    e: &Expression,
    row: &Solution,
    pool: &TermPool,
    group: Option<&[Solution]>,
) -> Result<Value, ExprError> {
    match e {
        Expression::Var(v) => match row.get(v.as_str()) {
            Some(Binding::Term(t)) => Ok(Value::Term(*t)),
            Some(Binding::Computed(t)) => Ok(Value::Const(t.clone())),
            None => Err(ExprError),
        },
        Expression::Constant(t) => Ok(Value::Const(t.clone())),
        Expression::Count(var) => {
            let members = group.ok_or(ExprError)?;
            let n = match var {
                None => members.len(),
                Some(v) => members
                    .iter()
                    .filter(|m| m.contains_key(v.as_str()))
                    .count(),
            };
            Ok(Value::Num(Numeric::integer(n as i128)))
        }
        Expression::And(a, b) => {
            let a = effective_boolean(&eval_expr(a, row, pool, group)?);
            if !a {
                return Ok(Value::Bool(false));
            }
            let b = effective_boolean(&eval_expr(b, row, pool, group)?);
            Ok(Value::Bool(b))
        }
        Expression::Or(a, b) => {
            let a = effective_boolean(&eval_expr(a, row, pool, group)?);
            if a {
                return Ok(Value::Bool(true));
            }
            let b = effective_boolean(&eval_expr(b, row, pool, group)?);
            Ok(Value::Bool(b))
        }
        Expression::Not(a) => Ok(Value::Bool(!effective_boolean(&eval_expr(
            a, row, pool, group,
        )?))),
        Expression::Equal(a, b) => compare(a, b, row, pool, group, &[std::cmp::Ordering::Equal]),
        Expression::NotEqual(a, b) => {
            let eq = compare(a, b, row, pool, group, &[std::cmp::Ordering::Equal])?;
            Ok(Value::Bool(!effective_boolean(&eq)))
        }
        Expression::Less(a, b) => compare(a, b, row, pool, group, &[std::cmp::Ordering::Less]),
        Expression::LessEq(a, b) => compare(
            a,
            b,
            row,
            pool,
            group,
            &[std::cmp::Ordering::Less, std::cmp::Ordering::Equal],
        ),
        Expression::Greater(a, b) => {
            compare(a, b, row, pool, group, &[std::cmp::Ordering::Greater])
        }
        Expression::GreaterEq(a, b) => compare(
            a,
            b,
            row,
            pool,
            group,
            &[std::cmp::Ordering::Greater, std::cmp::Ordering::Equal],
        ),
        Expression::Add(a, b) => arith(a, b, row, pool, group, |x, y| x + y),
        Expression::Subtract(a, b) => arith(a, b, row, pool, group, |x, y| x - y),
        Expression::IsLiteral(a) => {
            let t = term_of(&eval_expr(a, row, pool, group)?, pool).ok_or(ExprError)?;
            Ok(Value::Bool(t.is_literal()))
        }
        Expression::IsIri(a) => {
            let t = term_of(&eval_expr(a, row, pool, group)?, pool).ok_or(ExprError)?;
            Ok(Value::Bool(t.is_iri()))
        }
        Expression::IsBlank(a) => {
            let t = term_of(&eval_expr(a, row, pool, group)?, pool).ok_or(ExprError)?;
            Ok(Value::Bool(t.is_blank()))
        }
        Expression::Bound(v) => Ok(Value::Bool(row.contains_key(v.as_str()))),
        Expression::Datatype(a) => {
            let t = term_of(&eval_expr(a, row, pool, group)?, pool).ok_or(ExprError)?;
            match t.as_literal() {
                Some(l) => Ok(Value::Const(Term::iri(l.datatype()))),
                None => Err(ExprError),
            }
        }
        Expression::Str(a) => {
            let t = term_of(&eval_expr(a, row, pool, group)?, pool).ok_or(ExprError)?;
            let s = match &t {
                Term::Iri(i) => i.as_str().to_string(),
                Term::Literal(l) => l.lexical_form().to_string(),
                Term::BlankNode(_) => return Err(ExprError),
            };
            Ok(Value::Str(s))
        }
    }
}

fn term_of(v: &Value, pool: &TermPool) -> Option<Term> {
    match v {
        Value::Term(t) => Some(pool.term(*t).clone()),
        Value::Const(t) => Some(t.clone()),
        _ => None,
    }
}

fn numeric_of(v: &Value, pool: &TermPool) -> Option<Numeric> {
    match v {
        Value::Num(n) => Some(*n),
        Value::Term(t) => pool.term(*t).as_literal().and_then(Numeric::of_literal),
        Value::Const(t) => t.as_literal().and_then(Numeric::of_literal),
        _ => None,
    }
}

fn string_of(v: &Value, pool: &TermPool) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        Value::Term(_) | Value::Const(_) => match term_of(v, pool)? {
            Term::Literal(l) => Some(l.lexical_form().to_string()),
            Term::Iri(i) => Some(i.as_str().to_string()),
            Term::BlankNode(_) => None,
        },
        _ => None,
    }
}

fn compare(
    a: &Expression,
    b: &Expression,
    row: &Solution,
    pool: &TermPool,
    group: Option<&[Solution]>,
    accept: &[std::cmp::Ordering],
) -> Result<Value, ExprError> {
    let va = eval_expr(a, row, pool, group)?;
    let vb = eval_expr(b, row, pool, group)?;
    // Numeric comparison when both sides are numbers (value semantics).
    if let (Some(na), Some(nb)) = (numeric_of(&va, pool), numeric_of(&vb, pool)) {
        let ord = na.compare(nb).ok_or(ExprError)?;
        return Ok(Value::Bool(accept.contains(&ord)));
    }
    // String comparison: if either side is a computed string, compare the
    // string values of both sides.
    if matches!(va, Value::Str(_)) || matches!(vb, Value::Str(_)) {
        let sa = string_of(&va, pool).ok_or(ExprError)?;
        let sb = string_of(&vb, pool).ok_or(ExprError)?;
        return Ok(Value::Bool(accept.contains(&sa.cmp(&sb))));
    }
    // Fallback: RDF term equality (only = / != meaningful).
    let ta = term_of(&va, pool);
    let tb = term_of(&vb, pool);
    match (ta, tb) {
        (Some(ta), Some(tb)) => {
            if accept == [std::cmp::Ordering::Equal] {
                Ok(Value::Bool(ta == tb))
            } else {
                Err(ExprError)
            }
        }
        _ => {
            // Booleans compare for equality too.
            if let (Value::Bool(x), Value::Bool(y)) = (&va, &vb) {
                if accept == [std::cmp::Ordering::Equal] {
                    return Ok(Value::Bool(x == y));
                }
            }
            Err(ExprError)
        }
    }
}

fn arith(
    a: &Expression,
    b: &Expression,
    row: &Solution,
    pool: &TermPool,
    group: Option<&[Solution]>,
    f: fn(f64, f64) -> f64,
) -> Result<Value, ExprError> {
    let va = eval_expr(a, row, pool, group)?;
    let vb = eval_expr(b, row, pool, group)?;
    let na = numeric_of(&va, pool).ok_or(ExprError)?;
    let nb = numeric_of(&vb, pool).ok_or(ExprError)?;
    // Exact integer fast path.
    if let (
        Numeric::Decimal {
            unscaled: x,
            scale: 0,
        },
        Numeric::Decimal {
            unscaled: y,
            scale: 0,
        },
    ) = (na, nb)
    {
        let r = f(x as f64, y as f64);
        return Ok(Value::Num(Numeric::integer(r as i128)));
    }
    let fa = match na {
        Numeric::Double(d) => d,
        Numeric::Decimal { unscaled, scale } => unscaled as f64 / 10f64.powi(scale as i32),
    };
    let fb = match nb {
        Numeric::Double(d) => d,
        Numeric::Decimal { unscaled, scale } => unscaled as f64 / 10f64.powi(scale as i32),
    };
    Ok(Value::Num(Numeric::Double(f(fa, fb))))
}

fn effective_boolean(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Num(n) => n
            .compare(Numeric::integer(0))
            .is_some_and(|o| o != std::cmp::Ordering::Equal),
        Value::Str(s) => !s.is_empty(),
        Value::Const(Term::Literal(l)) => match l.datatype() {
            shapex_rdf::vocab::xsd::BOOLEAN => matches!(l.lexical_form(), "true" | "1"),
            _ => !l.lexical_form().is_empty(),
        },
        _ => false,
    }
}

fn match_triple(
    pattern: &TriplePattern,
    graph: &Graph,
    pool: &TermPool,
    rows: Vec<Solution>,
) -> Vec<Solution> {
    let mut out = Vec::new();
    for row in rows {
        // Resolve each position under the current bindings.
        let s = resolve(&pattern.subject, &row, pool);
        let p = resolve(&pattern.predicate, &row, pool);
        let o = resolve(&pattern.object, &row, pool);
        // A constant term absent from the pool matches nothing.
        let to_opt = |r: Resolved| match r {
            Resolved::Known(id) => Some(Some(id)),
            Resolved::Free => Some(None),
            Resolved::Impossible => None,
        };
        let (Some(s), Some(p), Some(o)) = (to_opt(s), to_opt(p), to_opt(o)) else {
            continue;
        };
        // The store picks the right index (subject/object/scan).
        for t in graph.match_pattern(s, p, o) {
            let mut extended = row.clone();
            if !bind(&pattern.subject, t.subject, &mut extended)
                || !bind(&pattern.predicate, t.predicate, &mut extended)
                || !bind(&pattern.object, t.object, &mut extended)
            {
                continue;
            }
            out.push(extended);
        }
    }
    out
}

enum Resolved {
    Known(TermId),
    Free,
    /// Constant not present in the graph's pool: cannot match.
    Impossible,
}

fn resolve(p: &TermPattern, row: &Solution, pool: &TermPool) -> Resolved {
    match p {
        TermPattern::Var(v) => match row.get(v.as_str()) {
            Some(Binding::Term(t)) => Resolved::Known(*t),
            // A computed binding not in the pool can never match a triple.
            Some(Binding::Computed(t)) => match pool.get(t) {
                Some(id) => Resolved::Known(id),
                None => Resolved::Impossible,
            },
            None => Resolved::Free,
        },
        TermPattern::Term(t) => match pool.get(t) {
            Some(id) => Resolved::Known(id),
            None => Resolved::Impossible,
        },
    }
}

/// Binds a variable (no-op for constants); false on conflict.
fn bind(p: &TermPattern, value: TermId, row: &mut Solution) -> bool {
    match p {
        TermPattern::Term(_) => true,
        TermPattern::Var(v) => match row.entry(v.as_str().into()) {
            Entry::Vacant(e) => {
                e.insert(Binding::Term(value));
                true
            }
            Entry::Occupied(e) => *e.get() == Binding::Term(value),
        },
    }
}

fn compatible(a: &Solution, b: &Solution) -> bool {
    a.iter().all(|(k, v)| b.get(k).is_none_or(|w| w == v))
}

fn merge(a: &Solution, b: &Solution) -> Solution {
    let mut out = a.clone();
    for (k, v) in b {
        out.insert(k.clone(), v.clone());
    }
    out
}

fn join(left: Vec<Solution>, right: Vec<Solution>) -> Vec<Solution> {
    let mut out = Vec::new();
    for l in &left {
        for r in &right {
            if compatible(l, r) {
                out.push(merge(l, r));
            }
        }
    }
    out
}

fn left_join(left: Vec<Solution>, right: Vec<Solution>) -> Vec<Solution> {
    let mut out = Vec::new();
    for l in &left {
        let mut any = false;
        for r in &right {
            if compatible(l, r) {
                out.push(merge(l, r));
                any = true;
            }
        }
        if !any {
            out.push(l.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;
    use shapex_rdf::graph::Dataset;
    use shapex_rdf::turtle;

    fn data() -> Dataset {
        turtle::parse(
            r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :john foaf:age 23; foaf:name "John"; foaf:knows :bob .
            :bob foaf:age 34; foaf:name "Bob", "Robert" .
            :mary foaf:age 50, 65 .
            "#,
        )
        .unwrap()
    }

    fn run_ask(ds: &Dataset, q: &str) -> bool {
        let q = parser::parse(q).unwrap();
        ask(&q, &ds.graph, &ds.pool).unwrap()
    }

    fn run_select(ds: &Dataset, q: &str) -> Vec<Solution> {
        let q = parser::parse(q).unwrap();
        select(&q, &ds.graph, &ds.pool).unwrap()
    }

    #[test]
    fn ask_existing_and_missing_triples() {
        let ds = data();
        assert!(run_ask(
            &ds,
            "PREFIX : <http://example.org/>\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\nASK { :john foaf:age 23 }"
        ));
        assert!(!run_ask(
            &ds,
            "PREFIX : <http://example.org/>\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\nASK { :john foaf:age 99 }"
        ));
    }

    #[test]
    fn select_with_variables() {
        let ds = data();
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nSELECT ?s WHERE { ?s foaf:name ?n }",
        );
        // john once, bob twice (two names).
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn distinct_dedups() {
        let ds = data();
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nSELECT DISTINCT ?s WHERE { ?s foaf:name ?n }",
        );
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn count_group_by_having() {
        let ds = data();
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT ?s (COUNT(*) AS ?c) WHERE { ?s foaf:age ?o } GROUP BY ?s HAVING (?c >= 2)",
        );
        // Only mary has two ages.
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn count_star_over_empty_is_zero() {
        let ds = data();
        assert!(run_ask(
            &ds,
            "PREFIX : <http://example.org/>\n\
             ASK { { SELECT (COUNT(*) AS ?c) WHERE { :john <http://nope/p> ?o } } FILTER(?c = 0) }"
        ));
    }

    #[test]
    fn subselect_count_join_filter() {
        let ds = data();
        // john has exactly 1 age triple.
        assert!(run_ask(
            &ds,
            "PREFIX : <http://example.org/>\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             ASK { { SELECT (COUNT(*) AS ?c) WHERE { :john foaf:age ?o } } FILTER(?c = 1) }"
        ));
        // mary has 2.
        assert!(!run_ask(
            &ds,
            "PREFIX : <http://example.org/>\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             ASK { { SELECT (COUNT(*) AS ?c) WHERE { :mary foaf:age ?o } } FILTER(?c = 1) }"
        ));
    }

    #[test]
    fn filters_on_datatype() {
        let ds = data();
        assert!(run_ask(
            &ds,
            "PREFIX : <http://example.org/>\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             ASK { :john foaf:age ?o . FILTER(isLiteral(?o) && datatype(?o) = xsd:integer) }"
        ));
        assert!(!run_ask(
            &ds,
            "PREFIX : <http://example.org/>\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             ASK { :john foaf:name ?o . FILTER(datatype(?o) = xsd:integer) }"
        ));
    }

    #[test]
    fn numeric_value_comparison() {
        let ds = data();
        assert!(run_ask(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nASK { ?s foaf:age ?o . FILTER(?o > 60) }"
        ));
        assert!(!run_ask(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nASK { ?s foaf:age ?o . FILTER(?o > 65) }"
        ));
    }

    #[test]
    fn optional_and_bound() {
        let ds = data();
        // mary has no name; !bound detects it.
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT ?s WHERE { ?s foaf:age ?a . OPTIONAL { ?s foaf:name ?n } FILTER(!bound(?n)) }",
        );
        // mary appears once per age triple (2 solutions before projection).
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| {
            r.get("s")
                .unwrap()
                .term(&ds.pool)
                .to_string()
                .contains("mary")
        }));
    }

    #[test]
    fn union_branches() {
        let ds = data();
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT DISTINCT ?s WHERE { { ?s foaf:name ?x } UNION { ?s foaf:knows ?x } }",
        );
        assert_eq!(rows.len(), 2); // john, bob
    }

    #[test]
    fn arithmetic_filter() {
        let ds = data();
        assert!(run_ask(
            &ds,
            "PREFIX : <http://example.org/>\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             ASK { { SELECT (COUNT(*) AS ?c1) WHERE { :bob foaf:name ?o } }\n\
                   { SELECT (COUNT(*) AS ?c2) WHERE { :bob foaf:age ?o } }\n\
                   FILTER(?c1 + ?c2 = 3) }"
        ));
    }

    #[test]
    fn join_on_shared_vars() {
        let ds = data();
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT ?s ?friend WHERE { ?s foaf:knows ?friend . ?friend foaf:age ?a }",
        );
        assert_eq!(rows.len(), 1); // john knows bob, bob has one age
    }

    #[test]
    fn constant_not_in_pool_matches_nothing() {
        let ds = data();
        assert!(!run_ask(&ds, "ASK { <http://nowhere/x> ?p ?o }"));
    }

    #[test]
    fn str_function() {
        let ds = data();
        assert!(run_ask(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nASK { ?s foaf:name ?n . FILTER(str(?n) = \"John\") }"
        ));
    }

    #[test]
    fn filter_error_eliminates_row_not_query() {
        let ds = data();
        // datatype() on an IRI errors → that row is dropped, others stay.
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT ?o WHERE { ?s foaf:knows ?o . FILTER(datatype(?o) = foaf:whatever) }",
        );
        assert!(rows.is_empty());
        // But rows with literals evaluate normally alongside.
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             SELECT ?o WHERE { ?s ?p ?o . FILTER(datatype(?o) = xsd:integer) }",
        );
        assert_eq!(rows.len(), 4); // ages: 23, 34, 50, 65
    }

    #[test]
    fn count_var_skips_unbound() {
        let ds = data();
        // OPTIONAL name: mary contributes rows without ?n; COUNT(?n)
        // counts only bound occurrences, COUNT(*) counts all rows.
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT (COUNT(?n) AS ?named) (COUNT(*) AS ?all) WHERE {\n\
               ?s foaf:age ?a . OPTIONAL { ?s foaf:name ?n } }",
        );
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        let named = row.get("named").unwrap().term(&ds.pool).to_string();
        let all = row.get("all").unwrap().term(&ds.pool).to_string();
        // john(1 name × 1 age) + bob(2 names × 1 age) = 3 named rows;
        // mary adds 2 unnamed age rows → 5 total.
        assert!(named.contains("\"3\""), "{named}");
        assert!(all.contains("\"5\""), "{all}");
    }

    #[test]
    fn union_inside_optional() {
        let ds = data();
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT DISTINCT ?s WHERE { ?s foaf:age ?a .\n\
               OPTIONAL { { ?s foaf:name ?x } UNION { ?s foaf:knows ?x } } }",
        );
        // All three subjects survive (OPTIONAL keeps mary).
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn implicit_group_with_having_only() {
        let ds = data();
        // HAVING over the single implicit group.
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT (COUNT(*) AS ?c) WHERE { ?s foaf:age ?o } HAVING (?c > 3)",
        );
        assert_eq!(rows.len(), 1); // 4 age triples > 3
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT (COUNT(*) AS ?c) WHERE { ?s foaf:age ?o } HAVING (?c > 10)",
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn computed_binding_joins_with_graph_term() {
        let ds = data();
        // ?c = 2 (bob's names) materialises as an integer literal that can
        // be compared against graph values.
        assert!(run_ask(
            &ds,
            "PREFIX : <http://example.org/>\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             ASK { { SELECT (COUNT(*) AS ?c) WHERE { :bob foaf:name ?n } } FILTER(?c = 2) }"
        ));
    }

    #[test]
    fn distinct_applies_after_projection() {
        let ds = data();
        let rows = run_select(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT DISTINCT ?a WHERE { ?s foaf:age ?a . ?s foaf:name ?n }",
        );
        // john 23 (1 name) + bob 34 (2 names, deduped) = 2 distinct ages.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn bnode_str_errors_out() {
        let mut ds = turtle::parse("@prefix e: <http://e/> . _:b e:p 1 .").unwrap();
        let _ = &mut ds;
        let q = parser::parse("ASK { ?s ?p ?o . FILTER(str(?s) = \"b\") }").unwrap();
        // str() on a blank node is an error → row eliminated → false.
        assert!(!ask(&q, &ds.graph, &ds.pool).unwrap());
    }

    #[test]
    fn nested_groups_join() {
        let ds = data();
        assert!(run_ask(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             ASK { { ?s foaf:knows ?o } { ?o foaf:age ?a } FILTER(?a = 34) }"
        ));
        assert!(!run_ask(
            &ds,
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             ASK { { ?s foaf:knows ?o } { ?o foaf:age ?a } FILTER(?a = 23) }"
        ));
    }
}

//! Abstract syntax for the SPARQL fragment the generated validation
//! queries use (paper §3, Example 4): ASK/SELECT, basic graph patterns,
//! FILTER, OPTIONAL, UNION, sub-SELECT, COUNT aggregation with
//! GROUP BY / HAVING.

use shapex_rdf::term::Term;

/// A variable name (without the `?`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Box<str>);

impl Var {
    /// A variable from its name (no `?`).
    pub fn new(name: impl Into<Box<str>>) -> Self {
        Var(name.into())
    }

    /// The variable name, without the `?`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// A term or variable in a triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPattern {
    /// A variable.
    Var(Var),
    /// A constant term.
    Term(Term),
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: TermPattern,
    /// Predicate position.
    pub predicate: TermPattern,
    /// Object position.
    pub object: TermPattern,
}

/// One element of a group graph pattern, in syntactic order.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElement {
    /// A triple pattern (part of the group's basic graph pattern).
    Triple(TriplePattern),
    /// `FILTER (expr)` — scoped to the enclosing group.
    Filter(Expression),
    /// `OPTIONAL { ... }`.
    Optional(GroupPattern),
    /// `{ ... } UNION { ... }` (n-ary chains are folded left).
    Union(GroupPattern, GroupPattern),
    /// A nested sub-`SELECT`.
    SubSelect(Box<SelectQuery>),
    /// A plain nested group `{ ... }`.
    Group(GroupPattern),
}

/// A `{ ... }` group.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    /// The group's elements, in syntactic order.
    pub elements: Vec<PatternElement>,
}

/// What a SELECT projects.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    All,
    /// `SELECT ?x (COUNT(*) AS ?c) ...`
    Items(Vec<ProjectionItem>),
}

/// One projected column.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectionItem {
    /// A plain variable.
    Var(Var),
    /// `(expr AS ?v)` — in this fragment, expr is always an aggregate or a
    /// plain expression.
    Bind(Expression, Var),
}

/// A SELECT query (also used for sub-selects).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// What the query projects.
    pub projection: Projection,
    /// The WHERE pattern.
    pub pattern: GroupPattern,
    /// `GROUP BY` variables (empty when ungrouped).
    pub group_by: Vec<Var>,
    /// `HAVING` constraints over the groups.
    pub having: Vec<Expression>,
}

/// A top-level query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `ASK { ... }` — non-emptiness test.
    Ask(GroupPattern),
    /// `SELECT ... WHERE { ... }`.
    Select(SelectQuery),
}

/// Filter/projection expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    /// A variable reference.
    Var(Var),
    /// A constant RDF term.
    Constant(Term),
    /// `COUNT(*)` / `COUNT(?v)` — only valid where aggregates are allowed.
    Count(Option<Var>),
    /// `a && b`.
    And(Box<Expression>, Box<Expression>),
    /// `a || b`.
    Or(Box<Expression>, Box<Expression>),
    /// `!a`.
    Not(Box<Expression>),
    /// `a = b` (numeric value equality when both sides are numeric).
    Equal(Box<Expression>, Box<Expression>),
    /// `a != b`.
    NotEqual(Box<Expression>, Box<Expression>),
    /// `a < b`.
    Less(Box<Expression>, Box<Expression>),
    /// `a <= b`.
    LessEq(Box<Expression>, Box<Expression>),
    /// `a > b`.
    Greater(Box<Expression>, Box<Expression>),
    /// `a >= b`.
    GreaterEq(Box<Expression>, Box<Expression>),
    /// `a + b`.
    Add(Box<Expression>, Box<Expression>),
    /// `a - b`.
    Subtract(Box<Expression>, Box<Expression>),
    /// `isLiteral(a)`.
    IsLiteral(Box<Expression>),
    /// `isIRI(a)`.
    IsIri(Box<Expression>),
    /// `isBlank(a)`.
    IsBlank(Box<Expression>),
    /// `bound(?v)`.
    Bound(Var),
    /// `datatype(?o)` — the datatype IRI of a literal.
    Datatype(Box<Expression>),
    /// `str(?o)` — the lexical form / IRI text.
    Str(Box<Expression>),
}

impl Expression {
    /// `a && b`.
    pub fn and(a: Expression, b: Expression) -> Expression {
        Expression::And(Box::new(a), Box::new(b))
    }

    /// `a || b`.
    pub fn or(a: Expression, b: Expression) -> Expression {
        Expression::Or(Box::new(a), Box::new(b))
    }

    /// `a = b`.
    pub fn equal(a: Expression, b: Expression) -> Expression {
        Expression::Equal(Box::new(a), Box::new(b))
    }

    /// Folds a conjunction; empty input is `true`.
    pub fn all(items: impl IntoIterator<Item = Expression>) -> Expression {
        let mut it = items.into_iter();
        let Some(first) = it.next() else {
            return Expression::Constant(Term::Literal(shapex_rdf::term::Literal::boolean(true)));
        };
        it.fold(first, Expression::and)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_all_folds() {
        let e = Expression::all([
            Expression::Bound(Var::new("a")),
            Expression::Bound(Var::new("b")),
            Expression::Bound(Var::new("c")),
        ]);
        assert!(matches!(e, Expression::And(_, _)));
    }

    #[test]
    fn expression_all_empty_is_true() {
        let e = Expression::all([]);
        let Expression::Constant(Term::Literal(l)) = e else {
            panic!("expected constant");
        };
        assert_eq!(l.lexical_form(), "true");
    }

    #[test]
    fn var_name_access() {
        assert_eq!(Var::new("x").as_str(), "x");
    }
}

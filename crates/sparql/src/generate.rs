//! ShEx → SPARQL query generation (paper §3).
//!
//! The paper argues SPARQL is a plausible *lower-level target* for shape
//! validation ("Shape Expressions can be mapped to SPARQL queries. In fact,
//! one of our implementation of Shape Expressions is already able to
//! generate those SPARQL queries") while noting its limits — recursion is
//! not expressible, and the queries "become unwieldy" (Example 4).
//!
//! This module reproduces that mapping for the flat fragment the paper's
//! Example 4 covers: shapes that are unordered concatenations of arcs with
//! cardinalities. Each arc `p → C [m,n]` becomes a pair of `COUNT`
//! sub-selects — triples with predicate `p`, and triples with predicate
//! `p` whose object passes the FILTER translation of `C` — plus a FILTER
//! requiring (a) all objects pass and (b) the count is within `[m,n]`.
//! Closed-shape semantics adds a total-count check.
//!
//! Everything else (alternatives, shape references/recursion, inverse
//! arcs, string facets) is reported as [`GenError::Unsupported`] — which is
//! the paper's point.

use std::fmt::Write as _;

use shapex_rdf::xsd::Numeric;
use shapex_shex::ast::{ObjectConstraint, PredicateSet, ShapeExpr, ShapeLabel};
use shapex_shex::constraint::{Facet, NodeConstraint, NodeKind, ValueSetValue};
use shapex_shex::schema::Schema;

/// Why a shape cannot be translated to SPARQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The shape label has no definition.
    UnknownShape(String),
    /// The construct has no (reasonable) SPARQL encoding in this mapping.
    Unsupported(String),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::UnknownShape(l) => write!(f, "unknown shape <{l}>"),
            GenError::Unsupported(what) => {
                write!(f, "not expressible in the SPARQL mapping: {what}")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// A flattened arc: `predicate → constraint` with cardinality `[min, max]`.
struct FlatArc {
    predicate: String,
    constraint: NodeConstraint,
    min: u32,
    max: Option<u32>,
}

/// Flattens a shape into conjunct arcs, rejecting constructs outside the
/// Example 4 fragment.
fn flatten(expr: &ShapeExpr) -> Result<Vec<FlatArc>, GenError> {
    let mut out = Vec::new();
    collect(expr, 1, Some(1), &mut out)?;
    // Counting semantics breaks if two conjuncts share a predicate.
    for i in 0..out.len() {
        for j in i + 1..out.len() {
            if out[i].predicate == out[j].predicate {
                return Err(GenError::Unsupported(format!(
                    "two constraints on predicate <{}>",
                    out[i].predicate
                )));
            }
        }
    }
    Ok(out)
}

fn collect(
    expr: &ShapeExpr,
    min: u32,
    max: Option<u32>,
    out: &mut Vec<FlatArc>,
) -> Result<(), GenError> {
    match expr {
        ShapeExpr::Epsilon => Ok(()),
        ShapeExpr::Empty => Err(GenError::Unsupported("the empty shape ∅".into())),
        ShapeExpr::Arc(arc) => {
            if arc.inverse {
                return Err(GenError::Unsupported("inverse arcs".into()));
            }
            let PredicateSet::Iris(iris) = &arc.predicates else {
                return Err(GenError::Unsupported("wildcard predicates".into()));
            };
            if iris.len() != 1 {
                return Err(GenError::Unsupported("predicate sets".into()));
            }
            let constraint = match &arc.object {
                ObjectConstraint::Value(c) => c.clone(),
                ObjectConstraint::Ref(l) => {
                    return Err(GenError::Unsupported(format!(
                        "shape reference @<{}> (recursion is not expressible in SPARQL, §3)",
                        l.as_str()
                    )))
                }
            };
            out.push(FlatArc {
                predicate: iris[0].to_string(),
                constraint,
                min,
                max,
            });
            Ok(())
        }
        // Cardinalities compose only at the arc level in this fragment.
        ShapeExpr::Star(e) => collect(e, 0, None, out),
        ShapeExpr::Plus(e) => collect(e, 1, None, out),
        ShapeExpr::Opt(e) => collect(e, 0, Some(1), out),
        ShapeExpr::Repeat(e, m, n) => collect(e, *m, *n, out),
        ShapeExpr::And(a, b) => {
            if (min, max) != (1, Some(1)) {
                return Err(GenError::Unsupported("cardinality on a group".into()));
            }
            collect(a, 1, Some(1), out)?;
            collect(b, 1, Some(1), out)
        }
        ShapeExpr::Or(_, _) => Err(GenError::Unsupported("alternatives (|)".into())),
    }
}

/// Translates a node constraint to a FILTER body over `?o`.
fn constraint_filter(c: &NodeConstraint) -> Result<String, GenError> {
    match c {
        NodeConstraint::Any => Ok("true".to_string()),
        NodeConstraint::Kind(NodeKind::Iri) => Ok("isIRI(?o)".to_string()),
        NodeConstraint::Kind(NodeKind::BNode) => Ok("isBlank(?o)".to_string()),
        NodeConstraint::Kind(NodeKind::Literal) => Ok("isLiteral(?o)".to_string()),
        NodeConstraint::Kind(NodeKind::NonLiteral) => Ok("!isLiteral(?o)".to_string()),
        NodeConstraint::Datatype(dt) => Ok(format!("(isLiteral(?o) && datatype(?o) = <{dt}>)")),
        NodeConstraint::ValueSet(vs) => {
            let mut parts = Vec::new();
            for v in vs {
                match v {
                    ValueSetValue::Term(t) => parts.push(format!("?o = {t}")),
                    ValueSetValue::IriStem(_)
                    | ValueSetValue::Language(_)
                    | ValueSetValue::LanguageStem(_) => {
                        return Err(GenError::Unsupported(
                            "stems/language tags in value sets".into(),
                        ))
                    }
                }
            }
            if parts.is_empty() {
                return Ok("false".to_string());
            }
            Ok(format!("({})", parts.join(" || ")))
        }
        NodeConstraint::Facet(f) => facet_filter(f),
        NodeConstraint::AllOf(cs) => {
            let parts: Result<Vec<_>, _> = cs.iter().map(constraint_filter).collect();
            Ok(format!("({})", parts?.join(" && ")))
        }
        NodeConstraint::AnyOf(cs) => {
            if cs.is_empty() {
                return Ok("false".to_string());
            }
            let parts: Result<Vec<_>, _> = cs.iter().map(constraint_filter).collect();
            Ok(format!("({})", parts?.join(" || ")))
        }
        NodeConstraint::Not(inner) => Ok(format!("!{}", constraint_filter(inner)?)),
    }
}

fn facet_filter(f: &Facet) -> Result<String, GenError> {
    fn num(n: &Numeric) -> String {
        match n {
            Numeric::Decimal { unscaled, scale: 0 } => unscaled.to_string(),
            Numeric::Decimal { unscaled, scale } => {
                format!("{}", *unscaled as f64 / 10f64.powi(*scale as i32))
            }
            Numeric::Double(d) => format!("{d}"),
        }
    }
    match f {
        Facet::MinInclusive(n) => Ok(format!("?o >= {}", num(n))),
        Facet::MinExclusive(n) => Ok(format!("?o > {}", num(n))),
        Facet::MaxInclusive(n) => Ok(format!("?o <= {}", num(n))),
        Facet::MaxExclusive(n) => Ok(format!("?o < {}", num(n))),
        Facet::Length(_) | Facet::MinLength(_) | Facet::MaxLength(_) | Facet::Pattern(_) => {
            Err(GenError::Unsupported("string facets".into()))
        }
    }
}

/// Generates a per-node ASK validation query (closed semantics): `true`
/// iff `focus_iri` conforms to `label`.
pub fn generate_node_ask(
    schema: &Schema,
    label: &ShapeLabel,
    focus_iri: &str,
) -> Result<String, GenError> {
    let expr = schema
        .get(label)
        .ok_or_else(|| GenError::UnknownShape(label.as_str().to_string()))?;
    let arcs = flatten(expr)?;
    let mut q = String::from("ASK {\n");
    let mut count_vars = Vec::new();
    for (i, arc) in arcs.iter().enumerate() {
        let filter = constraint_filter(&arc.constraint)?;
        let _ = writeln!(
            q,
            "  {{ SELECT (COUNT(*) AS ?c{i}) WHERE {{ <{focus_iri}> <{}> ?o }} }}",
            arc.predicate
        );
        let _ = writeln!(
            q,
            "  {{ SELECT (COUNT(*) AS ?v{i}) WHERE {{ <{focus_iri}> <{}> ?o . FILTER({filter}) }} }}",
            arc.predicate
        );
        // All objects pass the constraint, and the count is in range.
        let mut cond = format!("?c{i} = ?v{i} && ?c{i} >= {}", arc.min);
        if let Some(max) = arc.max {
            let _ = write!(cond, " && ?c{i} <= {max}");
        }
        let _ = writeln!(q, "  FILTER({cond})");
        count_vars.push(format!("?c{i}"));
    }
    // Closed shape: every outgoing triple is accounted for by some arc.
    let _ = writeln!(
        q,
        "  {{ SELECT (COUNT(*) AS ?total) WHERE {{ <{focus_iri}> ?anyp ?anyo }} }}"
    );
    let sum = if count_vars.is_empty() {
        "0".to_string()
    } else {
        count_vars.join(" + ")
    };
    let _ = writeln!(q, "  FILTER(?total = {sum})");
    q.push('}');
    Ok(q)
}

/// Generates an Example 4-style SELECT query listing every node conforming
/// to `label`. Only supported when every arc has `min ≥ 1` (nodes with a
/// zero-count arc never appear in the grouped sub-selects; the paper's own
/// Example 4 needs an OPTIONAL/!bound workaround for `knows*`, which it
/// itself calls "not completely right").
pub fn generate_select_conforming(schema: &Schema, label: &ShapeLabel) -> Result<String, GenError> {
    let expr = schema
        .get(label)
        .ok_or_else(|| GenError::UnknownShape(label.as_str().to_string()))?;
    let arcs = flatten(expr)?;
    if arcs.iter().any(|a| a.min == 0) {
        return Err(GenError::Unsupported(
            "optional arcs in the SELECT mapping (see Example 4's OPTIONAL/!bound caveat)".into(),
        ));
    }
    let mut q = String::from("SELECT DISTINCT ?node {\n");
    let mut count_vars = Vec::new();
    for (i, arc) in arcs.iter().enumerate() {
        let filter = constraint_filter(&arc.constraint)?;
        let _ = writeln!(
            q,
            "  {{ SELECT ?node (COUNT(*) AS ?c{i}) WHERE {{ ?node <{}> ?o }} GROUP BY ?node }}",
            arc.predicate
        );
        let _ = writeln!(
            q,
            "  {{ SELECT ?node (COUNT(*) AS ?v{i}) WHERE {{ ?node <{}> ?o . FILTER({filter}) }} GROUP BY ?node }}",
            arc.predicate
        );
        let mut cond = format!("?c{i} = ?v{i} && ?c{i} >= {}", arc.min);
        if let Some(max) = arc.max {
            let _ = write!(cond, " && ?c{i} <= {max}");
        }
        let _ = writeln!(q, "  FILTER({cond})");
        count_vars.push(format!("?c{i}"));
    }
    let _ = writeln!(
        q,
        "  {{ SELECT ?node (COUNT(*) AS ?total) WHERE {{ ?node ?anyp ?anyo }} GROUP BY ?node }}"
    );
    let _ = writeln!(q, "  FILTER(?total = {})", count_vars.join(" + "));
    q.push('}');
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval, parser};
    use shapex_rdf::turtle;
    use shapex_shex::shexc;

    const SCHEMA: &str = r#"
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
        <Person> { foaf:age xsd:integer, foaf:name xsd:string+ }
    "#;

    const DATA: &str = r#"
        @prefix : <http://example.org/> .
        @prefix foaf: <http://xmlns.com/foaf/0.1/> .
        :john foaf:age 23; foaf:name "John" .
        :bob foaf:age 34; foaf:name "Bob", "Robert" .
        :mary foaf:age 50, 65 .
        :extra foaf:age 1; foaf:name "X"; foaf:knows :john .
    "#;

    fn conforms(node: &str) -> bool {
        let schema = shexc::parse(SCHEMA).unwrap();
        let ds = turtle::parse(DATA).unwrap();
        let q = generate_node_ask(&schema, &"Person".into(), node).unwrap();
        let parsed = parser::parse(&q).expect("generated query parses");
        eval::ask(&parsed, &ds.graph, &ds.pool).unwrap()
    }

    #[test]
    fn generated_ask_agrees_with_expectations() {
        assert!(conforms("http://example.org/john"));
        assert!(conforms("http://example.org/bob"));
        // mary: two ages (cardinality 1 violated), no name
        assert!(!conforms("http://example.org/mary"));
        // extra triple violates closedness
        assert!(!conforms("http://example.org/extra"));
        // absent node: zero counts fail min ≥ 1
        assert!(!conforms("http://example.org/nobody"));
    }

    #[test]
    fn generated_select_lists_conforming_nodes() {
        let schema = shexc::parse(SCHEMA).unwrap();
        let ds = turtle::parse(DATA).unwrap();
        let q = generate_select_conforming(&schema, &"Person".into()).unwrap();
        let parsed = parser::parse(&q).expect("generated query parses");
        let rows = eval::select(&parsed, &ds.graph, &ds.pool).unwrap();
        let nodes: Vec<String> = rows
            .iter()
            .map(|r| r.get("node").unwrap().term(&ds.pool).to_string())
            .collect();
        assert_eq!(rows.len(), 2, "{nodes:?}");
        assert!(nodes.iter().any(|n| n.contains("john")));
        assert!(nodes.iter().any(|n| n.contains("bob")));
    }

    #[test]
    fn recursion_is_unsupported() {
        let schema =
            shexc::parse("PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n<P> { foaf:knows @<P>* }")
                .unwrap();
        let err = generate_node_ask(&schema, &"P".into(), "http://e/x").unwrap_err();
        assert!(matches!(err, GenError::Unsupported(m) if m.contains("recursion")));
    }

    #[test]
    fn alternatives_unsupported() {
        let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { e:a [1] | e:b [2] }").unwrap();
        assert!(matches!(
            generate_node_ask(&schema, &"S".into(), "http://e/x"),
            Err(GenError::Unsupported(_))
        ));
    }

    #[test]
    fn duplicate_predicates_unsupported() {
        let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { e:p [1], e:p [2] }").unwrap();
        assert!(matches!(
            generate_node_ask(&schema, &"S".into(), "http://e/x"),
            Err(GenError::Unsupported(_))
        ));
    }

    #[test]
    fn select_mapping_rejects_optional_arcs() {
        let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { e:p .* }").unwrap();
        assert!(matches!(
            generate_select_conforming(&schema, &"S".into()),
            Err(GenError::Unsupported(_))
        ));
        // but the fixed-node ASK handles them (COUNT can be 0):
        assert!(generate_node_ask(&schema, &"S".into(), "http://e/x").is_ok());
    }

    #[test]
    fn value_sets_and_facets_translate() {
        let schema = shexc::parse(
            "PREFIX e: <http://e/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             <S> { e:v [1 2], e:n xsd:integer MININCLUSIVE 0 }",
        )
        .unwrap();
        let q = generate_node_ask(&schema, &"S".into(), "http://e/x").unwrap();
        assert!(q.contains("?o = \"1\""), "{q}");
        assert!(q.contains("?o >= 0"), "{q}");
        let ds = turtle::parse("@prefix e: <http://e/> . e:x e:v 1; e:n 5 .").unwrap();
        let parsed = parser::parse(&q).unwrap();
        assert!(eval::ask(&parsed, &ds.graph, &ds.pool).unwrap());
        let bad = turtle::parse("@prefix e: <http://e/> . e:x e:v 3; e:n 5 .").unwrap();
        assert!(!eval::ask(&parsed, &bad.graph, &bad.pool).unwrap());
    }

    #[test]
    fn cardinality_ranges_translate() {
        let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { e:p .{2,3} }").unwrap();
        let q = generate_node_ask(&schema, &"S".into(), "http://e/x").unwrap();
        let parsed = parser::parse(&q).unwrap();
        let two = turtle::parse("@prefix e: <http://e/> . e:x e:p 1, 2 .").unwrap();
        assert!(eval::ask(&parsed, &two.graph, &two.pool).unwrap());
        let four = turtle::parse("@prefix e: <http://e/> . e:x e:p 1, 2, 3, 4 .").unwrap();
        assert!(!eval::ask(&parsed, &four.graph, &four.pool).unwrap());
    }

    #[test]
    fn unknown_shape_error() {
        let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { e:p . }").unwrap();
        assert!(matches!(
            generate_node_ask(&schema, &"Nope".into(), "http://e/x"),
            Err(GenError::UnknownShape(_))
        ));
    }
}

#![warn(missing_docs)]
//! # shapex-integration-tests
//!
//! No library code — this crate exists to mount the workspace-level test
//! files in `tests/` (see this crate's `Cargo.toml` for the list):
//! every numbered example from the paper as an executable test
//! (`paper_examples`), differential property tests between the
//! derivative engine, the backtracking baseline, and the parallel/DFA
//! configurations (`engine_agreement`), incremental-revalidation
//! byte-identity and delta round-trips (`incremental`), parser/printer
//! round-trips (`roundtrips`), budget robustness (`robustness`), the
//! data-driven fixture suite (`fixtures`), end-to-end CLI-shaped runs
//! (`end_to_end`), and jobs-invariance of statistics (`stats_parallel`).

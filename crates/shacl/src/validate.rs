//! The SHACL validation driver: engine checks plus front-end verdicts
//! and report attribution.
//!
//! Life of a validation: select targets, warm the engine's memo tables
//! with a parallel typing pass over the data ([`shapex::Engine::type_all_par`]),
//! then evaluate each `(focus, shape)` pair — focus-node tests and
//! verdict-level logic in the front end, neighbourhood structure via the
//! (memoised) engine. Failing pairs get an attribution pass that walks
//! the shape's components and emits `sh:ValidationResult` rows.

use std::collections::HashMap;

use shapex::{Closure, Engine, EngineConfig, Exhaustion, Outcome, ShapeId};
use shapex_rdf::graph::{Dataset, Graph};
use shapex_rdf::pool::{TermId, TermPool};
use shapex_rdf::term::Term;
use shapex_shex::constraint::NodeConstraint;

use crate::compile::{LogicOp, ShaclSchema};
use crate::model::{Component, Path};
use crate::target::select_targets;
use crate::{err, ShaclError};

/// One row of the validation report (a `sh:ValidationResult`). All terms
/// are pre-rendered in N-Triples form so the report layer is a plain
/// serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationResult {
    /// The focus node that failed.
    pub focus: String,
    /// The shape (node or property shape) the check came from.
    pub source_shape: String,
    /// The `sh:`-CURIE of the violated constraint component.
    pub component: &'static str,
    /// `sh:Violation` unless the shape declares another severity.
    pub severity: String,
    /// The property path, for property-shape results.
    pub path: Option<String>,
    /// The offending value node, when the check is value-scoped.
    pub value: Option<String>,
    /// The shape's `sh:message`, if any.
    pub message: Option<String>,
}

/// A `(focus, shape)` pair whose check tripped a resource budget before
/// completing; the report's third verdict (exit code 3).
#[derive(Debug, Clone)]
pub struct ExhaustedTarget {
    /// The focus node whose check was cut short.
    pub focus: String,
    /// The shape being checked.
    pub shape: String,
    /// What ran out, how far it got.
    pub exhaustion: Exhaustion,
}

/// The outcome of validating a data graph against a compiled SHACL
/// schema.
#[derive(Debug)]
pub struct ShaclOutcome {
    /// Number of `(focus, shape)` target pairs checked.
    pub targets: usize,
    /// Violation rows, in deterministic (shape, focus) order.
    pub results: Vec<ValidationResult>,
    /// Target pairs whose verdict is unknown due to budget exhaustion.
    pub exhausted: Vec<ExhaustedTarget>,
}

impl ShaclOutcome {
    /// `Some(true)` when every target conforms, `Some(false)` when at
    /// least one violation was found, `None` when exhaustion left the
    /// question open (mirrors the engine's three-valued reporting).
    pub fn conforms(&self) -> Option<bool> {
        if !self.results.is_empty() {
            Some(false)
        } else if self.exhausted.is_empty() {
            Some(true)
        } else {
            None
        }
    }
}

#[derive(Debug, Clone)]
enum Verdict {
    Conforms,
    Fails,
    Exhausted(Exhaustion),
}

/// A compiled SHACL schema bound to an engine instance, ready to
/// validate datasets.
pub struct ShaclValidator {
    schema: ShaclSchema,
    engine: Engine,
    shape_ids: Vec<Option<ShapeId>>,
}

impl ShaclValidator {
    /// Compiles the engine for `schema` over the *data* term pool. The
    /// closure mode is forced to [`Closure::Open`]: the per-path
    /// translation (DESIGN.md §5h) is only correct when gathering is
    /// limited to mentioned predicates.
    pub fn new(
        schema: ShaclSchema,
        pool: &mut TermPool,
        mut config: EngineConfig,
    ) -> Result<Self, ShaclError> {
        config.closure = Closure::Open;
        let engine = Engine::compile(&schema.engine, pool, config)
            .map_err(|e| err("E008", format!("engine rejected compiled schema: {e:?}")))?;
        let shape_ids = schema
            .shapes
            .iter()
            .map(|s| s.engine_label.as_ref().and_then(|l| engine.shape_id(l)))
            .collect();
        Ok(ShaclValidator {
            schema,
            engine,
            shape_ids,
        })
    }

    /// The compiled schema this validator runs.
    pub fn schema(&self) -> &ShaclSchema {
        &self.schema
    }

    /// The underlying derivative engine (stats, metrics, calculus).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the engine, for host-level configuration such as
    /// installing a shared typing executor. The compiled schema itself is
    /// not reachable through this.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Validates `ds`, using `jobs` worker threads for the engine's
    /// typing pass. Needs `&mut Dataset` because `sh:targetNode` terms
    /// are interned into the data pool.
    pub fn validate_par(&mut self, ds: &mut Dataset, jobs: usize) -> ShaclOutcome {
        let targets = select_targets(&self.schema, ds);
        // Warm the memo tables: one parallel typing pass over the data
        // answers the bulk of the engine queries below from cache.
        self.engine.type_all_par(&ds.graph, &ds.pool, jobs);

        let mut memo: HashMap<(TermId, usize), Verdict> = HashMap::new();
        let mut results = Vec::new();
        let mut exhausted = Vec::new();
        for &(idx, focus) in &targets {
            let verdict = self.eval(&ds.graph, &ds.pool, focus, idx, &mut memo);
            match verdict {
                Verdict::Conforms => {}
                Verdict::Fails => {
                    let before = results.len();
                    self.explain(&ds.graph, &ds.pool, focus, idx, &mut memo, &mut results);
                    if results.len() == before {
                        // The derivative said ∅ but no single component
                        // re-check could be blamed; never report nothing.
                        let shape = &self.schema.shapes[idx];
                        results.push(ValidationResult {
                            focus: ds.pool.term(focus).to_string(),
                            source_shape: shape.label.clone(),
                            component: Component::Derivative.iri(),
                            severity: shape.severity.clone(),
                            path: None,
                            value: None,
                            message: shape.message.clone(),
                        });
                    }
                }
                Verdict::Exhausted(e) => exhausted.push(ExhaustedTarget {
                    focus: ds.pool.term(focus).to_string(),
                    shape: self.schema.shapes[idx].label.clone(),
                    exhaustion: e,
                }),
            }
        }
        ShaclOutcome {
            targets: targets.len(),
            results,
            exhausted,
        }
    }

    /// Three-valued conformance of `focus` against shape `idx`:
    /// focus tests ∧ engine check ∧ logic operators. Any `Fails` wins,
    /// otherwise any `Exhausted` wins, otherwise `Conforms`. Memoised;
    /// terminates because verdict-level logic is acyclic by construction.
    fn eval(
        &mut self,
        graph: &Graph,
        pool: &TermPool,
        focus: TermId,
        idx: usize,
        memo: &mut HashMap<(TermId, usize), Verdict>,
    ) -> Verdict {
        if let Some(v) = memo.get(&(focus, idx)) {
            return v.clone();
        }
        let verdict = self.eval_uncached(graph, pool, focus, idx, memo);
        memo.insert((focus, idx), verdict.clone());
        verdict
    }

    fn eval_uncached(
        &mut self,
        graph: &Graph,
        pool: &TermPool,
        focus: TermId,
        idx: usize,
        memo: &mut HashMap<(TermId, usize), Verdict>,
    ) -> Verdict {
        {
            let shape = &self.schema.shapes[idx];
            if shape.deactivated {
                return Verdict::Conforms;
            }
            let term = pool.term(focus);
            if shape.focus.iter().any(|(_, c)| !c.matches(term)) {
                return Verdict::Fails;
            }
        }
        let mut pending: Option<Exhaustion> = None;
        if let Some(sid) = self.shape_ids[idx] {
            match self.engine.check_id(graph, pool, focus, sid) {
                Outcome::Conforms => {}
                Outcome::Fails(_) => return Verdict::Fails,
                Outcome::Exhausted(e) => pending = Some(e),
            }
        }
        // Per-value residue: paths that mix class/shape membership with
        // arc constraints keep counting and tests in the engine and check
        // each value's membership here.
        let checks: Vec<(Path, Vec<Box<str>>, Vec<usize>)> = self.schema.shapes[idx]
            .value_checks
            .iter()
            .map(|c| (c.path.clone(), c.classes.clone(), c.refs.clone()))
            .collect();
        for (path, classes, refs) in checks {
            for v in values_of(graph, pool, focus, &path) {
                if classes.iter().any(|c| !has_type(graph, pool, v, c)) {
                    return Verdict::Fails;
                }
                for &r in &refs {
                    if let Some(sid) = self.shape_ids[r] {
                        match self.engine.check_id(graph, pool, v, sid) {
                            Outcome::Conforms => {}
                            Outcome::Fails(_) => return Verdict::Fails,
                            Outcome::Exhausted(e) => pending = pending.or(Some(e)),
                        }
                    }
                }
            }
        }
        // Verdict-level logic. Operand lists are cloned up front so the
        // recursive calls can borrow `self` mutably.
        let ops: Vec<LogicOp> = self.schema.shapes[idx]
            .logic
            .iter()
            .map(|op| match op {
                LogicOp::And(v) => LogicOp::And(v.clone()),
                LogicOp::Or(v) => LogicOp::Or(v.clone()),
                LogicOp::Xone(v) => LogicOp::Xone(v.clone()),
                LogicOp::Not(i) => LogicOp::Not(*i),
                LogicOp::Node(i) => LogicOp::Node(*i),
            })
            .collect();
        for op in ops {
            let v = self.eval_logic(graph, pool, focus, &op, memo);
            match v {
                Verdict::Fails => return Verdict::Fails,
                Verdict::Exhausted(e) => pending = pending.or(Some(e)),
                Verdict::Conforms => {}
            }
        }
        match pending {
            Some(e) => Verdict::Exhausted(e),
            None => Verdict::Conforms,
        }
    }

    fn eval_logic(
        &mut self,
        graph: &Graph,
        pool: &TermPool,
        focus: TermId,
        op: &LogicOp,
        memo: &mut HashMap<(TermId, usize), Verdict>,
    ) -> Verdict {
        match op {
            LogicOp::And(ops) => {
                let mut pending = None;
                for &i in ops {
                    match self.eval(graph, pool, focus, i, memo) {
                        Verdict::Fails => return Verdict::Fails,
                        Verdict::Exhausted(e) => pending = pending.or(Some(e)),
                        Verdict::Conforms => {}
                    }
                }
                pending.map_or(Verdict::Conforms, Verdict::Exhausted)
            }
            LogicOp::Node(i) => self.eval(graph, pool, focus, *i, memo),
            LogicOp::Or(ops) => {
                let mut pending = None;
                for &i in ops {
                    match self.eval(graph, pool, focus, i, memo) {
                        Verdict::Conforms => return Verdict::Conforms,
                        Verdict::Exhausted(e) => pending = pending.or(Some(e)),
                        Verdict::Fails => {}
                    }
                }
                pending.map_or(Verdict::Fails, Verdict::Exhausted)
            }
            LogicOp::Not(i) => match self.eval(graph, pool, focus, *i, memo) {
                Verdict::Conforms => Verdict::Fails,
                Verdict::Fails => Verdict::Conforms,
                exhausted => exhausted,
            },
            LogicOp::Xone(ops) => {
                let mut conforming = 0usize;
                let mut pending = None;
                for &i in ops {
                    match self.eval(graph, pool, focus, i, memo) {
                        Verdict::Conforms => conforming += 1,
                        Verdict::Exhausted(e) => pending = pending.or(Some(e)),
                        Verdict::Fails => {}
                    }
                }
                match (conforming, pending) {
                    // An unknown operand can still change "exactly one"
                    // unless two already conform.
                    (n, Some(e)) if n <= 1 => Verdict::Exhausted(e),
                    (1, _) => Verdict::Conforms,
                    _ => Verdict::Fails,
                }
            }
        }
    }

    /// Attribution: re-walks a failing `(focus, shape)` pair component by
    /// component and emits one report row per violated check.
    fn explain(
        &mut self,
        graph: &Graph,
        pool: &TermPool,
        focus: TermId,
        idx: usize,
        memo: &mut HashMap<(TermId, usize), Verdict>,
        out: &mut Vec<ValidationResult>,
    ) {
        let focus_str = pool.term(focus).to_string();
        let shape = &self.schema.shapes[idx];
        let shape_label = shape.label.clone();
        let severity = shape.severity.clone();
        let message = shape.message.clone();
        let row = |component: Component, path: Option<String>, value: Option<String>| {
            ValidationResult {
                focus: focus_str.clone(),
                source_shape: shape_label.clone(),
                component: component.iri(),
                severity: severity.clone(),
                path,
                value,
                message: message.clone(),
            }
        };

        let term = pool.term(focus);
        for (component, c) in &shape.focus {
            if !c.matches(term) {
                out.push(row(*component, None, Some(focus_str.clone())));
            }
        }
        for class in &shape.focus_classes {
            if !has_type(graph, pool, focus, class) {
                out.push(row(Component::Class, None, Some(focus_str.clone())));
            }
        }

        // Property groups: collect per-group rows first (needs engine
        // access for sh:node re-checks, so the shape borrow is re-taken).
        let group_count = self.schema.shapes[idx].groups.len();
        for g_idx in 0..group_count {
            self.explain_group(graph, pool, focus, idx, g_idx, out);
        }

        let shape = &self.schema.shapes[idx];
        if let Some(spec) = &shape.closed {
            for &(p, o) in graph.neighbourhood(focus) {
                let Some(pred) = pool.term(p).as_iri() else {
                    continue;
                };
                let pred = pred.as_str();
                let allowed = spec.mentioned.iter().any(|m| &**m == pred)
                    || spec.ignored.iter().any(|i| &**i == pred);
                if !allowed {
                    out.push(ValidationResult {
                        focus: focus_str.clone(),
                        source_shape: shape.label.clone(),
                        component: Component::Closed.iri(),
                        severity: shape.severity.clone(),
                        path: Some(format!("<{pred}>")),
                        value: Some(pool.term(o).to_string()),
                        message: shape.message.clone(),
                    });
                }
            }
        }

        let ops: Vec<LogicOp> = self.schema.shapes[idx]
            .logic
            .iter()
            .map(|op| match op {
                LogicOp::And(v) => LogicOp::And(v.clone()),
                LogicOp::Or(v) => LogicOp::Or(v.clone()),
                LogicOp::Xone(v) => LogicOp::Xone(v.clone()),
                LogicOp::Not(i) => LogicOp::Not(*i),
                LogicOp::Node(i) => LogicOp::Node(*i),
            })
            .collect();
        for op in &ops {
            if matches!(self.eval_logic(graph, pool, focus, op, memo), Verdict::Fails) {
                let component = match op {
                    LogicOp::And(_) => Component::And,
                    LogicOp::Or(_) => Component::Or,
                    LogicOp::Not(_) => Component::Not,
                    LogicOp::Xone(_) => Component::Xone,
                    LogicOp::Node(_) => Component::Node,
                };
                out.push(row(component, None, Some(focus_str.clone())));
            }
        }
    }

    fn explain_group(
        &mut self,
        graph: &Graph,
        pool: &TermPool,
        focus: TermId,
        shape_idx: usize,
        g_idx: usize,
        out: &mut Vec<ValidationResult>,
    ) {
        let g = &self.schema.shapes[shape_idx].groups[g_idx];
        let focus_str = pool.term(focus).to_string();
        let path_str = g.path.render();
        let label = g.label.clone();
        let severity = g.severity.clone();
        let message = g.message.clone();
        let row = |component: Component, value: Option<String>| ValidationResult {
            focus: focus_str.clone(),
            source_shape: label.clone(),
            component: component.iri(),
            severity: severity.clone(),
            path: Some(path_str.clone()),
            value,
            message: message.clone(),
        };

        let values = values_of(graph, pool, focus, &g.path);
        if let Some(min) = g.min {
            if (values.len() as u32) < min {
                out.push(row(Component::MinCount, None));
            }
        }
        if let Some(max) = g.max {
            if values.len() as u32 > max {
                out.push(row(Component::MaxCount, None));
            }
        }
        let tests: Vec<(Component, NodeConstraint)> = g.tests.clone();
        let classes = g.classes.clone();
        let has_values = g.has_values.clone();
        let refs = g.refs.clone();
        for &v in &values {
            let vt = pool.term(v);
            for (component, c) in &tests {
                if !c.matches(vt) {
                    out.push(row(*component, Some(vt.to_string())));
                }
            }
            for class in &classes {
                if !has_type(graph, pool, v, class) {
                    out.push(row(Component::Class, Some(vt.to_string())));
                }
            }
            for &r in &refs {
                if let Some(sid) = self.shape_ids[r] {
                    if matches!(
                        self.engine.check_id(graph, pool, v, sid),
                        Outcome::Fails(_)
                    ) {
                        out.push(row(Component::Node, Some(vt.to_string())));
                    }
                }
            }
        }
        for t in &has_values {
            let present = pool.get(t).is_some_and(|tid| values.contains(&tid));
            if !present {
                out.push(row(Component::HasValue, None));
            }
        }
    }
}

/// The value nodes of `focus` under a (forward or inverse) path.
fn values_of(graph: &Graph, pool: &TermPool, focus: TermId, path: &Path) -> Vec<TermId> {
    let Some(pid) = pool.get(&Term::iri(path.iri())) else {
        return Vec::new();
    };
    match path {
        Path::Forward(_) => graph.objects(focus, pid).collect(),
        Path::Inverse(_) => graph
            .incoming(focus)
            .iter()
            .filter(|&&(_, p)| p == pid)
            .map(|&(s, _)| s)
            .collect(),
    }
}

/// Direct `rdf:type` membership (see §5h: `sh:class` on value nodes uses
/// direct types; the subclass closure applies to target selection only).
fn has_type(graph: &Graph, pool: &TermPool, node: TermId, class: &str) -> bool {
    let (Some(type_id), Some(class_id)) = (
        pool.get(&Term::iri(shapex_rdf::vocab::rdf::TYPE)),
        pool.get(&Term::iri(class)),
    ) else {
        return false;
    };
    graph.objects(node, type_id).any(|o| o == class_id)
}

/// Convenience wrapper: compile the shapes graph, bind a validator, and
/// validate in one call (the CLI and server compose the pieces instead,
/// to reuse compiled schemas across requests).
pub fn validate(
    shapes: &Dataset,
    data: &mut Dataset,
    config: EngineConfig,
    jobs: usize,
) -> Result<(ShaclOutcome, ShaclValidator), ShaclError> {
    let schema = crate::compile::compile(shapes)?;
    let mut validator = ShaclValidator::new(schema, &mut data.pool, config)?;
    let outcome = validator.validate_par(data, jobs);
    Ok((outcome, validator))
}

//! Rendering a [`ShaclOutcome`] as a W3C-style `sh:ValidationReport`.
//!
//! The JSON document is built with the same helpers (and so the same
//! formatting and key ordering) as the engine's native reports, which is
//! what lets the CLI and the server emit byte-identical documents for the
//! same inputs. `sh:`-prefixed keys carry the report vocabulary of the
//! SHACL recommendation; unprefixed keys (`stats`, `targets`, `conforms`)
//! are this tool's operational envelope, shared with `--report json`.

use serde_json::{Map, Value};

use shapex::report::{metrics_json, render, stats_json};
use shapex::{Engine, ShapeId};

use crate::validate::{ShaclOutcome, ValidationResult};

/// Renders the full report document. Deterministic for a fixed input,
/// engine configuration, and job count (the `stats` block counts engine
/// work, which is scheduling-independent only for `--jobs 1`).
pub fn shacl_report(outcome: &ShaclOutcome, engine: &Engine) -> String {
    let mut doc = Map::new();
    doc.insert("tool".into(), Value::from("shapex"));
    doc.insert("mode".into(), Value::from("shacl"));
    doc.insert("engine".into(), Value::from("derivative"));
    doc.insert("@type".into(), Value::from("sh:ValidationReport"));
    let conforms = match outcome.conforms() {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    };
    doc.insert("sh:conforms".into(), conforms.clone());
    doc.insert("conforms".into(), conforms);
    doc.insert("targets".into(), Value::from(outcome.targets));
    doc.insert(
        "sh:result".into(),
        Value::Array(outcome.results.iter().map(result_row).collect()),
    );
    if !outcome.exhausted.is_empty() {
        doc.insert(
            "exhausted".into(),
            Value::Array(
                outcome
                    .exhausted
                    .iter()
                    .map(|e| {
                        let mut row = Map::new();
                        row.insert("focus".into(), Value::from(e.focus.clone()));
                        row.insert("shape".into(), Value::from(e.shape.clone()));
                        row.insert("exhaustion".into(), e.exhaustion.to_json());
                        Value::Object(row)
                    })
                    .collect(),
            ),
        );
    }
    doc.insert("stats".into(), stats_json(&engine.stats()));
    if let Some(m) = engine.metrics() {
        let labels = |i: usize| engine.label_of(ShapeId(i as u32)).as_str().to_string();
        doc.insert("metrics".into(), metrics_json(m, &labels));
    }
    render(&Value::Object(doc))
}

fn result_row(r: &ValidationResult) -> Value {
    let mut row = Map::new();
    row.insert("@type".into(), Value::from("sh:ValidationResult"));
    row.insert("sh:focusNode".into(), Value::from(r.focus.clone()));
    row.insert("sh:sourceShape".into(), Value::from(r.source_shape.clone()));
    row.insert(
        "sh:sourceConstraintComponent".into(),
        Value::from(r.component),
    );
    row.insert("sh:resultSeverity".into(), Value::from(r.severity.clone()));
    if let Some(p) = &r.path {
        row.insert("sh:resultPath".into(), Value::from(p.clone()));
    }
    if let Some(v) = &r.value {
        row.insert("sh:value".into(), Value::from(v.clone()));
    }
    if let Some(m) = &r.message {
        row.insert("sh:resultMessage".into(), Value::from(m.clone()));
    }
    Value::Object(row)
}

/// Plain-text rendering for terminal use (`--report text`, the default):
/// one line per violation, a summary line at the end.
pub fn render_text(outcome: &ShaclOutcome) -> String {
    let mut out = String::new();
    for r in &outcome.results {
        out.push_str(&format!(
            "✗ {} {} {}{}{}\n",
            r.focus,
            r.source_shape,
            r.component,
            r.path.as_deref().map(|p| format!(" path {p}")).unwrap_or_default(),
            r.value.as_deref().map(|v| format!(" value {v}")).unwrap_or_default(),
        ));
    }
    for e in &outcome.exhausted {
        out.push_str(&format!(
            "? {} {} exhausted: {} {}/{}\n",
            e.focus, e.shape, e.exhaustion.resource, e.exhaustion.spent, e.exhaustion.limit
        ));
    }
    match outcome.conforms() {
        Some(true) => out.push_str(&format!("conforms ({} targets)\n", outcome.targets)),
        Some(false) => out.push_str(&format!(
            "does not conform: {} violations over {} targets\n",
            outcome.results.len(),
            outcome.targets
        )),
        None => out.push_str(&format!(
            "undetermined: {} checks exhausted over {} targets\n",
            outcome.exhausted.len(),
            outcome.targets
        )),
    }
    out
}

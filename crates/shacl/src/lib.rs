//! SHACL Core front-end for the shapex derivative engine.
//!
//! This crate parses a [SHACL](https://www.w3.org/TR/shacl/) Core shapes
//! graph (Turtle or N-Triples, via `shapex-rdf`) and compiles it onto the
//! engine's regular shape expressions, so SHACL validation runs on the
//! same derivative machinery — DFA caching, budgets, parallel typing,
//! incremental revalidation — as ShEx. The translation is documented
//! term by term in DESIGN.md §5h; its two pillars:
//!
//! * **Per-path counting.** A property shape on path `p` with value
//!   constraint `C` and cardinality `min`/`max` becomes the counted arc
//!   `(p → C){min,max}`. Paths are conjoined with the partition operator
//!   `‖` and the engine runs with the *open* closure, so each path's
//!   triples are counted independently — exactly SHACL's semantics.
//! * **Fail, don't skip.** Every SHACL Core term is either translated or
//!   rejected at compile time with a term-identified error (`E001`…).
//!   A shapes graph never validates vacuously because a constraint was
//!   silently dropped.
//!
//! Constraints the shape-expression algebra cannot express — tests on
//! the focus node itself, verdict-level `sh:and`/`sh:or`/`sh:not`/
//! `sh:xone`, report attribution — live in a thin front end
//! ([`ShaclValidator`]) layered over the engine.
//!
//! # Example
//!
//! ```
//! use shapex::EngineConfig;
//! use shapex_rdf::turtle;
//!
//! let shapes = turtle::parse(r#"
//!     @prefix sh: <http://www.w3.org/ns/shacl#> .
//!     @prefix ex: <http://example.org/> .
//!     @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
//!     ex:PersonShape a sh:NodeShape ;
//!       sh:targetClass ex:Person ;
//!       sh:property [ sh:path ex:name ; sh:minCount 1 ; sh:datatype xsd:string ] .
//! "#).unwrap();
//! let schema = shapex_shacl::compile(&shapes).unwrap();
//! assert_eq!(schema.shape_count(), 2); // node shape + property shape
//!
//! let mut data = turtle::parse(r#"
//!     @prefix ex: <http://example.org/> .
//!     ex:alice a ex:Person ; ex:name "Alice" .
//!     ex:bob a ex:Person .
//! "#).unwrap();
//! let (outcome, validator) =
//!     shapex_shacl::validate(&shapes, &mut data, EngineConfig::default(), 1).unwrap();
//! assert_eq!(outcome.conforms(), Some(false)); // bob has no name
//!
//! let report = shapex_shacl::shacl_report(&outcome, validator.engine());
//! assert!(report.contains("sh:MinCountConstraintComponent"));
//! ```
//!
//! Unsupported terms fail compilation with their error code, never
//! validate vacuously:
//!
//! ```
//! use shapex_rdf::turtle;
//!
//! let shapes = turtle::parse(r#"
//!     @prefix sh: <http://www.w3.org/ns/shacl#> .
//!     @prefix ex: <http://example.org/> .
//!     ex:S a sh:NodeShape ; sh:targetNode ex:n ; sh:sparql [ ] .
//! "#).unwrap();
//! let e = shapex_shacl::compile(&shapes).unwrap_err();
//! assert_eq!(e.code, "E001");
//! assert!(e.to_string().contains("sh:sparql"));
//! ```

#![warn(missing_docs)]

mod compile;
mod model;
mod report;
mod target;
mod validate;

pub use compile::{compile, ShaclSchema};
pub use report::{render_text, shacl_report};
pub use validate::{
    validate, ExhaustedTarget, ShaclOutcome, ShaclValidator, ValidationResult,
};

/// A compile-time SHACL front-end error. Every error carries a stable
/// code (documented in DESIGN.md §5h) so tests and tooling can assert on
/// the failure class rather than on message text:
///
/// | code | meaning |
/// |------|---------|
/// | `E001` | unsupported or unrecognised SHACL term |
/// | `E002` | unsupported `sh:path` form (sequence, alternative, …) |
/// | `E003` | malformed RDF list |
/// | `E004` | malformed constraint parameter value |
/// | `E005` | `sh:property` target without `sh:path` |
/// | `E006` | untranslatable constraint combination on one path |
/// | `E007` | recursion through verdict-level logical operators |
/// | `E008` | compiled schema rejected by the engine |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShaclError {
    /// Stable error class, `"E001"`…`"E008"`.
    pub code: &'static str,
    /// Human-readable description naming the offending term and shape.
    pub detail: String,
}

impl std::fmt::Display for ShaclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for ShaclError {}

pub(crate) fn err(code: &'static str, detail: impl Into<String>) -> ShaclError {
    ShaclError {
        code,
        detail: detail.into(),
    }
}

// The worked example under fixtures/shacl/ compiles and runs as a
// doctest, so the documented walkthrough can never drift from the code.
#[cfg(doctest)]
#[doc = include_str!("../../../fixtures/shacl/README.md")]
pub struct FixturesWorkedExample;

//! Target selection: from target declarations to `(shape, focus)` pairs.
//!
//! SHACL's four explicit target kinds plus the implicit class target all
//! reduce to picking focus nodes out of the data graph. Selection is
//! deterministic: pairs are sorted by (shape index, focus term id) and
//! deduplicated, so reports are byte-stable across runs and between the
//! CLI and the server.

use std::collections::HashMap;

use shapex_rdf::graph::Dataset;
use shapex_rdf::pool::TermId;
use shapex_rdf::term::Term;
use shapex_rdf::vocab::{rdf, rdfs};

use crate::compile::ShaclSchema;
use crate::model::TargetDecl;

/// Selects every `(shape index, focus node)` pair the schema targets in
/// `ds`. `sh:targetNode` terms are interned into the data pool (a node
/// can be targeted without occurring in the data; it then has an empty
/// neighbourhood).
pub(crate) fn select_targets(schema: &ShaclSchema, ds: &mut Dataset) -> Vec<(usize, TermId)> {
    // Index rdf:type and rdfs:subClassOf once; class targets walk the
    // subclass closure *in the data graph* (SHACL instance semantics).
    let type_id = ds.pool.get(&Term::iri(rdf::TYPE));
    let sub_id = ds.pool.get(&Term::iri(rdfs::SUB_CLASS_OF));
    let mut instances: HashMap<TermId, Vec<TermId>> = HashMap::new();
    let mut subs: HashMap<TermId, Vec<TermId>> = HashMap::new();
    if schema.shapes.iter().any(|s| {
        s.targets
            .iter()
            .any(|t| matches!(t, TargetDecl::Class(_)))
    }) {
        for s in ds.graph.subjects().collect::<Vec<_>>() {
            for &(p, o) in ds.graph.neighbourhood(s) {
                if Some(p) == type_id {
                    instances.entry(o).or_default().push(s);
                } else if Some(p) == sub_id {
                    subs.entry(o).or_default().push(s);
                }
            }
        }
    }

    let mut pairs: Vec<(usize, TermId)> = Vec::new();
    for (idx, shape) in schema.shapes.iter().enumerate() {
        if shape.deactivated {
            continue;
        }
        for target in &shape.targets {
            match target {
                TargetDecl::Node(t) => {
                    let id = ds.pool.intern(t.clone());
                    pairs.push((idx, id));
                }
                TargetDecl::Class(c) => {
                    let Some(root) = ds.pool.get(&Term::iri(&**c)) else {
                        continue; // class unknown to the data: no instances
                    };
                    // Reverse BFS over rdfs:subClassOf: root and all its
                    // (transitive) subclasses contribute their instances.
                    let mut stack = vec![root];
                    let mut seen = vec![root];
                    while let Some(cls) = stack.pop() {
                        for focus in instances.get(&cls).into_iter().flatten() {
                            pairs.push((idx, *focus));
                        }
                        for sub in subs.get(&cls).into_iter().flatten() {
                            if !seen.contains(sub) {
                                seen.push(*sub);
                                stack.push(*sub);
                            }
                        }
                    }
                }
                TargetDecl::SubjectsOf(p) => {
                    let Some(pid) = ds.pool.get(&Term::iri(&**p)) else {
                        continue;
                    };
                    for s in ds.graph.subjects().collect::<Vec<_>>() {
                        if ds.graph.neighbourhood(s).iter().any(|&(pp, _)| pp == pid) {
                            pairs.push((idx, s));
                        }
                    }
                }
                TargetDecl::ObjectsOf(p) => {
                    let Some(pid) = ds.pool.get(&Term::iri(&**p)) else {
                        continue;
                    };
                    for s in ds.graph.subjects().collect::<Vec<_>>() {
                        for &(pp, o) in ds.graph.neighbourhood(s) {
                            if pp == pid {
                                pairs.push((idx, o));
                            }
                        }
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use shapex_rdf::turtle;

    const SHAPES: &str = "@prefix sh: <http://www.w3.org/ns/shacl#> .\n\
                          @prefix ex: <http://example.org/> .\n\
                          ex:S a sh:NodeShape ;\n\
                            sh:targetClass ex:Agent ;\n\
                            sh:targetNode ex:orphan ;\n\
                            sh:targetSubjectsOf ex:knows ;\n\
                            sh:targetObjectsOf ex:knows ;\n\
                            sh:property [ sh:path ex:name ; sh:minCount 1 ] .";

    #[test]
    fn all_four_target_kinds_and_subclass_closure() {
        let shapes = turtle::parse(SHAPES).unwrap();
        let schema = compile(&shapes).unwrap();
        let mut data = turtle::parse(
            "@prefix ex: <http://example.org/> .\n\
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:Person rdfs:subClassOf ex:Agent .\n\
             ex:alice a ex:Person ; ex:knows ex:bob .\n\
             ex:carol a ex:Agent .",
        )
        .unwrap();
        let targets = select_targets(&schema, &mut data);
        let names: Vec<String> = targets
            .iter()
            .map(|&(_, f)| data.pool.term(f).to_string())
            .collect();
        // alice (class via subclass + subjectsOf), bob (objectsOf),
        // carol (class), orphan (targetNode, interned fresh).
        for expected in [
            "<http://example.org/alice>",
            "<http://example.org/bob>",
            "<http://example.org/carol>",
            "<http://example.org/orphan>",
        ] {
            assert!(names.contains(&expected.to_string()), "{expected} in {names:?}");
        }
        assert_eq!(targets.len(), 4, "dedup across target kinds: {names:?}");
    }
}

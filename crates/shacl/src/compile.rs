//! Compiling raw SHACL shapes onto the derivative engine.
//!
//! The central translation (DESIGN.md §5h): every property shape on a
//! single-predicate path `p` becomes a counted arc `(p → C){min,max}` of
//! the engine's regular shape-expression language, the shape's paths are
//! conjoined with the partition operator `‖`, and the engine is run with
//! the *open* closure so only mentioned predicates are gathered. Under
//! that combination the partition semantics coincide exactly with SHACL's
//! per-path counting semantics. Constraints the algebra cannot express on
//! arcs — focus-node tests, `sh:and`/`sh:or`/`sh:not`/`sh:xone` between
//! shapes, attribution — are kept in a thin front-end layer evaluated by
//! [`crate::validate`].

use std::collections::{BTreeMap, BTreeSet, HashMap};

use shapex_rdf::graph::Dataset;
use shapex_rdf::pool::TermId;
use shapex_rdf::term::Term;
use shapex_rdf::vocab::rdf;
use shapex_shex::ast::{ArcConstraint, ObjectConstraint, PredicateSet, ShapeExpr, ShapeLabel};
use shapex_shex::constraint::{NodeConstraint, ValueSetValue};
use shapex_shex::schema::Schema;

use crate::model::{self, Component, Path, RawShape, TargetDecl};
use crate::{err, ShaclError};

/// A compiled SHACL schema: the engine-facing regular shape expressions
/// plus the front-end metadata (targets, focus tests, logic, attribution
/// structure) the validator layers on top.
#[derive(Debug)]
pub struct ShaclSchema {
    pub(crate) shapes: Vec<CompiledShape>,
    pub(crate) engine: Schema,
}

impl ShaclSchema {
    /// The regular shape-expression schema the shapes graph compiled to.
    /// Useful for inspection (`--explain`-style tooling) and for the
    /// schema calculus: containment and emptiness apply to compiled SHACL
    /// exactly as to hand-written ShEx.
    pub fn engine_schema(&self) -> &Schema {
        &self.engine
    }

    /// Number of compiled shapes (node and property shapes).
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// Number of shapes that declare at least one target.
    pub fn targeted_count(&self) -> usize {
        self.shapes
            .iter()
            .filter(|s| !s.targets.is_empty() && !s.deactivated)
            .count()
    }
}

/// One shape after resolution, detached from the shapes-graph pool.
#[derive(Debug)]
pub(crate) struct CompiledShape {
    /// Rendered shapes-graph term (`<iri>` / `_:b`), used as
    /// `sh:sourceShape` in reports and as the engine label.
    pub label: String,
    pub deactivated: bool,
    pub severity: String,
    pub message: Option<String>,
    pub targets: Vec<TargetDecl>,
    /// Tests on the focus node itself (node-shape value constraints).
    pub focus: Vec<(Component, NodeConstraint)>,
    /// Node-level `sh:class`: engine-checked via `rdf:type` arcs, listed
    /// here so attribution can name the missing class.
    pub focus_classes: Vec<Box<str>>,
    /// Property shapes attached via `sh:property` (or the shape itself,
    /// when it is a property shape), in shapes-graph order.
    pub groups: Vec<Group>,
    /// Per-value membership checks the engine expression does not cover.
    pub value_checks: Vec<ValueCheck>,
    pub logic: Vec<LogicOp>,
    pub closed: Option<ClosedSpec>,
    /// Engine shape to check the focus node against, when the shape has
    /// any structural (neighbourhood) component.
    pub engine_label: Option<ShapeLabel>,
}

/// One property shape: the attribution-facing view of a counted arc.
#[derive(Debug)]
pub(crate) struct Group {
    pub label: String,
    pub path: Path,
    pub min: Option<u32>,
    pub max: Option<u32>,
    pub tests: Vec<(Component, NodeConstraint)>,
    pub classes: Vec<Box<str>>,
    /// Resolved structural `sh:node` references (pure-engine shapes),
    /// checked per value via the engine.
    pub refs: Vec<usize>,
    pub has_values: Vec<Term>,
    pub severity: String,
    pub message: Option<String>,
}

/// A per-value check the front end runs over a path's value nodes when a
/// path combines arc-expressible constraints with class/shape membership
/// (the arc object is a single constraint; membership of *another* node's
/// neighbourhood needs an engine query per value). Pure cases — a lone
/// `sh:node`, a lone `sh:class` set — compile to arc `Ref`s instead and
/// never appear here.
#[derive(Debug)]
pub(crate) struct ValueCheck {
    pub path: Path,
    pub classes: Vec<Box<str>>,
    pub refs: Vec<usize>,
}

/// Verdict-level logical operators between shapes. SHACL's shape-level
/// booleans talk about *conformance verdicts*, which the engine's `‖`/`|`
/// operators (partition and alternation of neighbourhoods) do not model,
/// so these stay in the front end.
#[derive(Debug)]
pub(crate) enum LogicOp {
    And(Vec<usize>),
    Or(Vec<usize>),
    Not(usize),
    Xone(Vec<usize>),
    /// `sh:node` on a node shape: conjunction with another shape.
    Node(usize),
}

/// `sh:closed true` bookkeeping for attribution: predicates that are
/// legitimately present (mentioned forward paths and ignored properties).
#[derive(Debug)]
pub(crate) struct ClosedSpec {
    pub mentioned: Vec<Box<str>>,
    pub ignored: Vec<Box<str>>,
}

/// Compiles a SHACL shapes graph (parsed with the Turtle or N-Triples
/// front end) into a [`ShaclSchema`]. Every SHACL Core term is either
/// translated or rejected with a term-identified error — never silently
/// dropped (see DESIGN.md §5h for the full mapping table).
pub fn compile(shapes_graph: &Dataset) -> Result<ShaclSchema, ShaclError> {
    let raws = model::read_shapes(shapes_graph)?;
    let ids: Vec<TermId> = raws.keys().copied().collect();
    let idx_of: HashMap<TermId, usize> = ids.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let labels: Vec<String> = ids
        .iter()
        .map(|&t| model::render_term(shapes_graph.pool.term(t)))
        .collect();

    let ctx = Ctx {
        raws: &raws,
        ids: &ids,
        idx_of: &idx_of,
        labels: &labels,
    };

    // Front-end structure first (groups, focus tests, logic)…
    let mut shapes = Vec::with_capacity(ids.len());
    for &id in &ids {
        shapes.push(ctx.build_shape(id)?);
    }
    check_logic_acyclic(&shapes)?;

    // …then the engine rules, one per shape with structural content,
    // plus auxiliary `rdf:type` shapes for `sh:class` value checks.
    let mut aux: BTreeMap<Vec<Box<str>>, ShapeLabel> = BTreeMap::new();
    let mut rules: Vec<(ShapeLabel, ShapeExpr)> = Vec::new();
    for i in 0..ids.len() {
        let (expr, checks) = ctx.build_expr(&shapes[i], &mut aux)?;
        shapes[i].value_checks = checks;
        if let Some(expr) = expr {
            let label = ShapeLabel::new(shapes[i].label.clone());
            shapes[i].engine_label = Some(label.clone());
            rules.push((label, expr));
        }
    }
    for (classes, label) in &aux {
        rules.push((label.clone(), class_expr(classes)));
    }
    let engine = Schema::from_rules(rules)
        .map_err(|e| err("E008", format!("engine schema rejected: {e:?}")))?;
    fill_mentioned(&mut shapes);
    Ok(ShaclSchema { shapes, engine })
}

struct Ctx<'a> {
    raws: &'a BTreeMap<TermId, RawShape>,
    ids: &'a [TermId],
    idx_of: &'a HashMap<TermId, usize>,
    labels: &'a [String],
}

impl<'a> Ctx<'a> {
    fn raw(&self, idx: usize) -> &RawShape {
        &self.raws[&self.ids[idx]]
    }

    /// Folds a shape into a single node constraint, when it tests nothing
    /// but the node itself (no path, no structure, only value tests and
    /// logic over foldable shapes). This is what lets `sh:or` between
    /// value-testable shapes live inside one arc as
    /// [`NodeConstraint::AnyOf`] instead of forcing verdict-level logic.
    fn fold(&self, idx: usize, visiting: &mut Vec<usize>) -> Option<NodeConstraint> {
        if visiting.contains(&idx) {
            return None;
        }
        let raw = self.raw(idx);
        if raw.deactivated {
            // A deactivated shape conforms by definition.
            return Some(NodeConstraint::Any);
        }
        if raw.path.is_some() || !raw.properties.is_empty() || !raw.classes.is_empty() || raw.closed
        {
            return None;
        }
        visiting.push(idx);
        let result = (|| {
            let mut parts: Vec<NodeConstraint> = raw.tests.iter().map(|(_, c)| c.clone()).collect();
            for t in &raw.has_values {
                parts.push(NodeConstraint::ValueSet(vec![ValueSetValue::Term(t.clone())]));
            }
            for list in &raw.and {
                for &op in list {
                    parts.push(self.fold(self.idx_of[&op], visiting)?);
                }
            }
            for list in &raw.or {
                let members = list
                    .iter()
                    .map(|&op| self.fold(self.idx_of[&op], visiting))
                    .collect::<Option<Vec<_>>>()?;
                parts.push(NodeConstraint::AnyOf(members));
            }
            for list in &raw.xone {
                let members = list
                    .iter()
                    .map(|&op| self.fold(self.idx_of[&op], visiting))
                    .collect::<Option<Vec<_>>>()?;
                parts.push(xone_constraint(members));
            }
            for &op in &raw.not {
                parts.push(NodeConstraint::Not(Box::new(self.fold(self.idx_of[&op], visiting)?)));
            }
            for &op in &raw.node_refs {
                parts.push(self.fold(self.idx_of[&op], visiting)?);
            }
            Some(flatten_all_of(parts))
        })();
        visiting.pop();
        result
    }

    /// True when the shape compiles entirely onto the engine: checking the
    /// engine shape *is* checking the SHACL shape. Only such shapes can be
    /// `sh:node` targets at arc level (`ObjectConstraint::Ref`).
    fn pure_engine(&self, idx: usize) -> bool {
        let raw = self.raw(idx);
        if raw.deactivated
            || !raw.and.is_empty()
            || !raw.or.is_empty()
            || !raw.xone.is_empty()
            || !raw.not.is_empty()
        {
            return false;
        }
        if raw.path.is_some() {
            true // a property shape's whole meaning is its arc
        } else {
            raw.tests.is_empty() && raw.has_values.is_empty() && raw.node_refs.is_empty()
        }
    }

    /// True when the shape contributes any engine rule at all.
    fn has_engine(&self, idx: usize) -> bool {
        let raw = self.raw(idx);
        raw.path.is_some() || !raw.properties.is_empty() || !raw.classes.is_empty() || raw.closed
    }

    /// Resolves value-level `sh:node` references on a property shape:
    /// foldable targets merge into the arc's node constraint, pure-engine
    /// targets become engine references (an arc `Ref` when alone on the
    /// path, a per-value check otherwise), anything else is an
    /// unsupported combination (`E006`).
    fn resolve_value_refs(
        &self,
        raw: &RawShape,
        shape_label: &str,
        tests: &mut Vec<(Component, NodeConstraint)>,
    ) -> Result<Vec<usize>, ShaclError> {
        let mut refs: Vec<usize> = Vec::new();
        for &r in &raw.node_refs {
            let idx = self.idx_of[&r];
            if self.raw(idx).deactivated {
                continue;
            }
            if let Some(c) = self.fold(idx, &mut Vec::new()) {
                tests.push((Component::Node, c));
            } else if self.pure_engine(idx) {
                if self.has_engine(idx) {
                    refs.push(idx);
                }
            } else {
                return Err(err(
                    "E006",
                    format!(
                        "sh:node target {} at {shape_label} mixes focus-level and structural \
                         constraints; an arc object is either a node test or a shape reference",
                        self.labels[idx]
                    ),
                ));
            }
        }
        refs.sort_unstable();
        refs.dedup();
        Ok(refs)
    }

    /// Builds the attribution-facing view of a property shape.
    fn build_group(&self, idx: usize) -> Result<Group, ShaclError> {
        let raw = self.raw(idx);
        let label = self.labels[idx].clone();
        let path = raw
            .path
            .clone()
            .ok_or_else(|| err("E005", format!("sh:property target {label} has no sh:path")))?;
        let mut tests = raw.tests.clone();
        for (component, lists) in [
            (Component::And, &raw.and),
            (Component::Or, &raw.or),
            (Component::Xone, &raw.xone),
        ] {
            for list in lists {
                let members = list
                    .iter()
                    .map(|&op| self.fold(self.idx_of[&op], &mut Vec::new()))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| self.value_logic_err(&label, component))?;
                let folded = match component {
                    Component::And => flatten_all_of(members),
                    Component::Or => NodeConstraint::AnyOf(members),
                    _ => xone_constraint(members),
                };
                tests.push((component, folded));
            }
        }
        for &op in &raw.not {
            let inner = self
                .fold(self.idx_of[&op], &mut Vec::new())
                .ok_or_else(|| self.value_logic_err(&label, Component::Not))?;
            tests.push((Component::Not, NodeConstraint::Not(Box::new(inner))));
        }
        let refs = self.resolve_value_refs(raw, &label, &mut tests)?;
        let mut classes = raw.classes.clone();
        classes.sort_unstable();
        classes.dedup();
        let mut has_values = raw.has_values.clone();
        has_values.dedup();
        Ok(Group {
            label,
            path,
            min: raw.min_count,
            max: raw.max_count,
            tests,
            classes,
            refs,
            has_values,
            severity: raw.severity.clone().unwrap_or_else(|| "sh:Violation".into()),
            message: join_messages(&raw.messages),
        })
    }

    fn value_logic_err(&self, label: &str, component: Component) -> ShaclError {
        err(
            "E006",
            format!(
                "{} at property shape {label}: logical operands applied to value nodes \
                 must be value-testable shapes (no sh:path/sh:property/sh:class/sh:closed)",
                component.iri()
            ),
        )
    }

    fn build_shape(&self, id: TermId) -> Result<CompiledShape, ShaclError> {
        let idx = self.idx_of[&id];
        let raw = self.raw(idx);
        let label = self.labels[idx].clone();
        let mut shape = CompiledShape {
            label: label.clone(),
            deactivated: raw.deactivated,
            severity: raw.severity.clone().unwrap_or_else(|| "sh:Violation".into()),
            message: join_messages(&raw.messages),
            targets: raw.targets.clone(),
            focus: Vec::new(),
            focus_classes: Vec::new(),
            groups: Vec::new(),
            value_checks: Vec::new(),
            logic: Vec::new(),
            closed: None,
            engine_label: None,
        };
        if raw.path.is_some() {
            // A property shape validates its targets through its own arc.
            shape.groups.push(self.build_group(idx)?);
            return Ok(shape);
        }
        shape.focus = raw.tests.clone();
        for t in &raw.has_values {
            shape.focus.push((
                Component::HasValue,
                NodeConstraint::ValueSet(vec![ValueSetValue::Term(t.clone())]),
            ));
        }
        shape.focus_classes = raw.classes.clone();
        shape.focus_classes.sort_unstable();
        shape.focus_classes.dedup();
        for (component, lists) in [
            (Component::And, &raw.and),
            (Component::Or, &raw.or),
            (Component::Xone, &raw.xone),
        ] {
            for list in lists {
                let folded = list
                    .iter()
                    .map(|&op| self.fold(self.idx_of[&op], &mut Vec::new()))
                    .collect::<Option<Vec<_>>>();
                match (component, folded) {
                    (Component::And, Some(ms)) => shape.focus.push((component, flatten_all_of(ms))),
                    (Component::Or, Some(ms)) => {
                        shape.focus.push((component, NodeConstraint::AnyOf(ms)))
                    }
                    (_, Some(ms)) => shape.focus.push((component, xone_constraint(ms))),
                    (_, None) => {
                        let ops: Vec<usize> = list.iter().map(|&op| self.idx_of[&op]).collect();
                        shape.logic.push(match component {
                            Component::And => LogicOp::And(ops),
                            Component::Or => LogicOp::Or(ops),
                            _ => LogicOp::Xone(ops),
                        });
                    }
                }
            }
        }
        for &op in &raw.not {
            let op_idx = self.idx_of[&op];
            match self.fold(op_idx, &mut Vec::new()) {
                Some(c) => shape
                    .focus
                    .push((Component::Not, NodeConstraint::Not(Box::new(c)))),
                None => shape.logic.push(LogicOp::Not(op_idx)),
            }
        }
        for &op in &raw.node_refs {
            let op_idx = self.idx_of[&op];
            if self.raw(op_idx).deactivated {
                continue;
            }
            match self.fold(op_idx, &mut Vec::new()) {
                Some(c) => shape.focus.push((Component::Node, c)),
                None => shape.logic.push(LogicOp::Node(op_idx)),
            }
        }
        for &child in &raw.properties {
            shape.groups.push(self.build_group(self.idx_of[&child])?);
        }
        if raw.closed {
            shape.closed = Some(ClosedSpec {
                mentioned: Vec::new(), // filled by build_expr
                ignored: raw.ignored.clone(),
            });
        }
        Ok(shape)
    }

    /// Merges a shape's property groups per path and builds its engine
    /// expression, plus the per-value residue checks for paths that mix
    /// class/shape membership with arc-expressible constraints. The
    /// expression is `None` when the shape has no structural part.
    fn build_expr(
        &self,
        shape: &CompiledShape,
        aux: &mut BTreeMap<Vec<Box<str>>, ShapeLabel>,
    ) -> Result<(Option<ShapeExpr>, Vec<ValueCheck>), ShaclError> {
        #[derive(Default)]
        struct Slot {
            min: u32,
            max: Option<u32>,
            tests: Vec<NodeConstraint>,
            classes: BTreeSet<Box<str>>,
            refs: Vec<usize>,
            has: Vec<Term>,
        }
        let mut slots: BTreeMap<(bool, Box<str>), Slot> = BTreeMap::new();
        for g in &shape.groups {
            let slot = slots
                .entry((g.path.is_inverse(), g.path.iri().into()))
                .or_default();
            slot.min = slot.min.max(g.min.unwrap_or(0));
            slot.max = match (slot.max, g.max) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            slot.tests.extend(g.tests.iter().map(|(_, c)| c.clone()));
            slot.classes.extend(g.classes.iter().cloned());
            slot.refs.extend(g.refs.iter().copied());
            for t in &g.has_values {
                if !slot.has.contains(t) {
                    slot.has.push(t.clone());
                }
            }
        }
        // Node-level `sh:class C` is the same check as
        // `sh:path rdf:type ; sh:hasValue C` (direct types; see §5h for
        // the documented entailment deviation).
        for c in &shape.focus_classes {
            let slot = slots.entry((false, rdf::TYPE.into())).or_default();
            let t = Term::iri(&**c);
            if !slot.has.contains(&t) {
                slot.has.push(t);
            }
        }

        let mut exprs: Vec<ShapeExpr> = Vec::new();
        let mut checks: Vec<ValueCheck> = Vec::new();
        let mut mentioned: Vec<Box<str>> = Vec::new();
        for ((inverse, iri), mut slot) in slots {
            if !inverse {
                mentioned.push(iri.clone());
            }
            slot.refs.sort_unstable();
            slot.refs.dedup();
            let mk_arc = |object: NodeConstraint| {
                let arc = ArcConstraint::new(
                    PredicateSet::one(&*iri),
                    ObjectConstraint::Value(object),
                );
                if inverse {
                    arc.inverted()
                } else {
                    arc
                }
            };
            let only_refs = slot.tests.is_empty() && slot.classes.is_empty() && slot.has.is_empty();
            if slot.refs.len() == 1 && only_refs {
                // A lone structural reference is the arc object itself.
                let target = slot.refs[0];
                let arc = ArcConstraint::reference(&*iri, ShapeLabel::new(self.labels[target].clone()));
                let arc = if inverse { arc.inverted() } else { arc };
                exprs.push(counted(arc, slot.min, slot.max));
                continue;
            }
            if slot.refs.is_empty() && !slot.classes.is_empty() && slot.tests.is_empty()
                && slot.has.is_empty()
            {
                // A lone class set points every value at the shared
                // auxiliary `rdf:type` shape.
                let classes: Vec<Box<str>> = slot.classes.iter().cloned().collect();
                let label = aux.entry(classes.clone()).or_insert_with(|| {
                    ShapeLabel::new(format!("class:{}", classes.join("&")))
                });
                let arc = ArcConstraint::reference(&*iri, label.clone());
                let arc = if inverse { arc.inverted() } else { arc };
                exprs.push(counted(arc, slot.min, slot.max));
                continue;
            }
            // Mixed case: the arc keeps counting and the node tests; class
            // and shape membership of the value nodes becomes a per-value
            // front-end check (an arc object is a single constraint, and
            // membership lives in the *value's* neighbourhood).
            if !slot.refs.is_empty() || !slot.classes.is_empty() {
                checks.push(ValueCheck {
                    path: if inverse {
                        Path::Inverse(iri.clone())
                    } else {
                        Path::Forward(iri.clone())
                    },
                    classes: slot.classes.iter().cloned().collect(),
                    refs: slot.refs.clone(),
                });
            }
            let value = flatten_all_of(slot.tests.clone());
            // `sh:hasValue t` pins one arc per required term; the residual
            // arc carries the remaining cardinality. A max below the
            // number of required terms is unsatisfiable (∅).
            let k = slot.has.len() as u32;
            let resid_max = match slot.max {
                Some(m) if m < k => {
                    exprs.push(ShapeExpr::Empty);
                    continue;
                }
                Some(m) => Some(m - k),
                None => None,
            };
            let resid_min = slot.min.saturating_sub(k);
            if let Some(m) = slot.max {
                if slot.min > m {
                    exprs.push(ShapeExpr::Empty);
                    continue;
                }
            }
            for t in &slot.has {
                let pinned = flatten_all_of(
                    [NodeConstraint::ValueSet(vec![ValueSetValue::Term(t.clone())])]
                        .into_iter()
                        .chain([value.clone()].into_iter().filter(|c| *c != NodeConstraint::Any))
                        .collect(),
                );
                exprs.push(ShapeExpr::Arc(mk_arc(pinned)));
            }
            exprs.push(counted(mk_arc(value), resid_min, resid_max));
        }

        if let Some(spec) = &shape.closed {
            // Phantom wildcard arc with cardinality {0,0}: mentioning `.`
            // widens open-closure gathering to *every* forward triple, and
            // an unlisted predicate then has no arc to match — exactly
            // `sh:closed`. Ignored properties get absorbing `*` arcs.
            exprs.push(ShapeExpr::repeat(
                ShapeExpr::Arc(ArcConstraint::new(
                    PredicateSet::Any,
                    ObjectConstraint::Value(NodeConstraint::Any),
                )),
                0,
                Some(0),
            ));
            for iri in &spec.ignored {
                exprs.push(ShapeExpr::star(ShapeExpr::Arc(ArcConstraint::value(
                    &**iri,
                    NodeConstraint::Any,
                ))));
            }
        }
        if exprs.is_empty() {
            return Ok((None, checks));
        }
        Ok((Some(ShapeExpr::and_all(exprs)), checks))
    }
}

/// `{min,max}` repetition with the common cases lowered to the engine's
/// dedicated operators (which simplify and memoise better).
fn counted(arc: ArcConstraint, min: u32, max: Option<u32>) -> ShapeExpr {
    let e = ShapeExpr::Arc(arc);
    match (min, max) {
        (0, None) => ShapeExpr::star(e),
        (1, None) => ShapeExpr::plus(e),
        (0, Some(1)) => ShapeExpr::opt(e),
        (m, x) => ShapeExpr::repeat(e, m, x),
    }
}

/// The engine expression for the auxiliary `sh:class` shape: one pinned
/// `rdf:type` arc per required class, plus an absorber for the node's
/// other types.
fn class_expr(classes: &[Box<str>]) -> ShapeExpr {
    let mut parts: Vec<ShapeExpr> = classes
        .iter()
        .map(|c| {
            ShapeExpr::repeat(
                ShapeExpr::Arc(ArcConstraint::value(
                    rdf::TYPE,
                    NodeConstraint::ValueSet(vec![ValueSetValue::Term(Term::iri(&**c))]),
                )),
                1,
                Some(1),
            )
        })
        .collect();
    parts.push(ShapeExpr::star(ShapeExpr::Arc(ArcConstraint::value(
        rdf::TYPE,
        NodeConstraint::Any,
    ))));
    ShapeExpr::and_all(parts)
}

/// `sh:xone` over value-testable members: exactly one matches, spelled as
/// a disjunction of "this one and none of the others".
fn xone_constraint(members: Vec<NodeConstraint>) -> NodeConstraint {
    if members.is_empty() {
        // Zero operands can never have exactly one match.
        return NodeConstraint::Not(Box::new(NodeConstraint::Any));
    }
    let branches = (0..members.len())
        .map(|i| {
            let parts = members
                .iter()
                .enumerate()
                .map(|(j, c)| {
                    if i == j {
                        c.clone()
                    } else {
                        NodeConstraint::Not(Box::new(c.clone()))
                    }
                })
                .collect();
            flatten_all_of(parts)
        })
        .collect();
    NodeConstraint::AnyOf(branches)
}

fn flatten_all_of(mut parts: Vec<NodeConstraint>) -> NodeConstraint {
    parts.retain(|c| *c != NodeConstraint::Any);
    match parts.len() {
        0 => NodeConstraint::Any,
        1 => parts.pop().expect("one element"),
        _ => NodeConstraint::AllOf(parts),
    }
}

fn join_messages(messages: &[String]) -> Option<String> {
    if messages.is_empty() {
        return None;
    }
    let mut sorted = messages.to_vec();
    sorted.sort_unstable();
    Some(sorted.join("; "))
}

/// Records, per closed shape, which forward predicates are legitimately
/// present so attribution can name the offenders: the groups' forward
/// paths, plus `rdf:type` when node-level `sh:class` created a type slot.
/// As in the SHACL spec, `rdf:type` is *not* implicitly allowed — typed
/// nodes under a bare `sh:closed true` need `sh:ignoredProperties`.
fn fill_mentioned(shapes: &mut [CompiledShape]) {
    for shape in shapes {
        let has_classes = !shape.focus_classes.is_empty();
        let Some(spec) = &mut shape.closed else {
            continue;
        };
        let mut mentioned: Vec<Box<str>> = shape
            .groups
            .iter()
            .filter(|g| !g.path.is_inverse())
            .map(|g| g.path.iri().into())
            .collect();
        if has_classes {
            mentioned.push(rdf::TYPE.into());
        }
        mentioned.sort_unstable();
        mentioned.dedup();
        spec.mentioned = mentioned;
    }
}

/// Rejects cycles through verdict-level logic (`sh:and`/`or`/`not`/
/// `xone`/node-level `sh:node`). SHACL leaves recursive shape semantics
/// undefined; arc-level recursion (`sh:node` on values) is well-defined
/// in the engine and allowed, but a verdict that depends on itself is not.
fn check_logic_acyclic(shapes: &[CompiledShape]) -> Result<(), ShaclError> {
    fn visit(
        shapes: &[CompiledShape],
        idx: usize,
        state: &mut [u8],
    ) -> Result<(), ShaclError> {
        match state[idx] {
            1 => {
                return Err(err(
                    "E007",
                    format!(
                        "shape {} participates in a cycle through logical operators; \
                         recursive conformance verdicts are undefined in SHACL",
                        shapes[idx].label
                    ),
                ))
            }
            2 => return Ok(()),
            _ => {}
        }
        state[idx] = 1;
        let ops = shapes[idx].logic.iter().flat_map(|op| match op {
            LogicOp::And(v) | LogicOp::Or(v) | LogicOp::Xone(v) => v.clone(),
            LogicOp::Not(i) | LogicOp::Node(i) => vec![*i],
        });
        for next in ops {
            visit(shapes, next, state)?;
        }
        state[idx] = 2;
        Ok(())
    }
    let mut state = vec![0u8; shapes.len()];
    for idx in 0..shapes.len() {
        visit(shapes, idx, &mut state)?;
    }
    Ok(())
}

//! Reading a SHACL shapes graph into raw, unresolved shape descriptions.
//!
//! This layer is purely syntactic: it discovers shape nodes, walks RDF
//! lists, parses paths and constraint parameters, and rejects every SHACL
//! term the compiler does not translate (see DESIGN.md §5h). Semantic
//! resolution — merging per-path groups, building engine expressions,
//! classifying `sh:node` references — happens in [`crate::compile`].

use std::collections::BTreeMap;

use shapex_rdf::graph::Dataset;
use shapex_rdf::pool::TermId;
use shapex_rdf::term::Term;
use shapex_rdf::vocab::{rdf, rdfs, sh};
use shapex_rdf::xsd::Numeric;
use shapex_shex::constraint::{Facet, NodeConstraint, NodeKind, ValueSetValue};
use shapex_shex::strre::Regex;

use crate::{err, ShaclError};

/// A SHACL property path, restricted to the forms the derivative engine's
/// arc constraints express directly: a single predicate, forward or
/// inverse. Sequence, alternative, and repetition paths are rejected at
/// read time with error `E002`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Path {
    /// `sh:path ex:p` — forward arcs `focus --p--> value`.
    Forward(Box<str>),
    /// `sh:path [ sh:inversePath ex:p ]` — inverse arcs `value --p--> focus`.
    Inverse(Box<str>),
}

impl Path {
    pub(crate) fn iri(&self) -> &str {
        match self {
            Path::Forward(p) | Path::Inverse(p) => p,
        }
    }

    pub(crate) fn is_inverse(&self) -> bool {
        matches!(self, Path::Inverse(_))
    }

    /// SPARQL-style rendering used in report rows: `<p>` or `^<p>`.
    pub(crate) fn render(&self) -> String {
        match self {
            Path::Forward(p) => format!("<{p}>"),
            Path::Inverse(p) => format!("^<{p}>"),
        }
    }
}

/// The SHACL constraint component a check (and so a report row) comes
/// from. Rendered as the component's `sh:` CURIE in validation reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Component {
    Class,
    Datatype,
    NodeKind,
    MinCount,
    MaxCount,
    MinExclusive,
    MinInclusive,
    MaxExclusive,
    MaxInclusive,
    MinLength,
    MaxLength,
    Pattern,
    LanguageIn,
    In,
    HasValue,
    And,
    Or,
    Not,
    Xone,
    Node,
    Closed,
    /// Fallback for failures the attribution pass cannot localise to a
    /// single component (the derivative said ∅ but every per-component
    /// re-check passed). Non-standard, namespaced to this tool.
    Derivative,
}

impl Component {
    pub(crate) fn iri(self) -> &'static str {
        match self {
            Component::Class => "sh:ClassConstraintComponent",
            Component::Datatype => "sh:DatatypeConstraintComponent",
            Component::NodeKind => "sh:NodeKindConstraintComponent",
            Component::MinCount => "sh:MinCountConstraintComponent",
            Component::MaxCount => "sh:MaxCountConstraintComponent",
            Component::MinExclusive => "sh:MinExclusiveConstraintComponent",
            Component::MinInclusive => "sh:MinInclusiveConstraintComponent",
            Component::MaxExclusive => "sh:MaxExclusiveConstraintComponent",
            Component::MaxInclusive => "sh:MaxInclusiveConstraintComponent",
            Component::MinLength => "sh:MinLengthConstraintComponent",
            Component::MaxLength => "sh:MaxLengthConstraintComponent",
            Component::Pattern => "sh:PatternConstraintComponent",
            Component::LanguageIn => "sh:LanguageInConstraintComponent",
            Component::In => "sh:InConstraintComponent",
            Component::HasValue => "sh:HasValueConstraintComponent",
            Component::And => "sh:AndConstraintComponent",
            Component::Or => "sh:OrConstraintComponent",
            Component::Not => "sh:NotConstraintComponent",
            Component::Xone => "sh:XoneConstraintComponent",
            Component::Node => "sh:NodeConstraintComponent",
            Component::Closed => "sh:ClosedConstraintComponent",
            Component::Derivative => "shapex:DerivativeConstraintComponent",
        }
    }
}

/// A target declaration, detached from the shapes-graph term pool so the
/// compiled schema can outlive it.
#[derive(Debug, Clone)]
pub(crate) enum TargetDecl {
    /// `sh:targetClass C` (and the implicit target when the shape itself
    /// is a `rdfs:Class`): instances of `C` under `rdfs:subClassOf`*.
    Class(Box<str>),
    /// `sh:targetNode t`: the term itself, present in the data or not.
    Node(Term),
    /// `sh:targetSubjectsOf p`.
    SubjectsOf(Box<str>),
    /// `sh:targetObjectsOf p`.
    ObjectsOf(Box<str>),
}

/// One shape node of the shapes graph, read but not yet resolved.
#[derive(Debug, Default)]
pub(crate) struct RawShape {
    pub deactivated: bool,
    pub severity: Option<String>,
    pub messages: Vec<String>,
    pub targets: Vec<TargetDecl>,
    pub path: Option<Path>,
    pub min_count: Option<u32>,
    pub max_count: Option<u32>,
    /// Value tests translated straight to engine node constraints.
    pub tests: Vec<(Component, NodeConstraint)>,
    /// `sh:class` object IRIs.
    pub classes: Vec<Box<str>>,
    /// `sh:node` object shape nodes.
    pub node_refs: Vec<TermId>,
    /// `sh:hasValue` terms.
    pub has_values: Vec<Term>,
    /// `sh:property` child shape nodes.
    pub properties: Vec<TermId>,
    pub and: Vec<Vec<TermId>>,
    pub or: Vec<Vec<TermId>>,
    pub xone: Vec<Vec<TermId>>,
    pub not: Vec<TermId>,
    pub closed: bool,
    pub ignored: Vec<Box<str>>,
}

/// Renders a shapes-graph term the way report rows and error messages
/// spell it: N-Triples form (`<iri>`, `_:b`, quoted literal).
pub(crate) fn render_term(t: &Term) -> String {
    t.to_string()
}

/// Reads every shape reachable from the discovery seeds. Keys are the
/// shape's node in the *shapes* pool; iteration order (pool id order) is
/// the deterministic compile order.
pub(crate) fn read_shapes(ds: &Dataset) -> Result<BTreeMap<TermId, RawShape>, ShaclError> {
    let r = Reader { ds };
    let mut queue: Vec<TermId> = r.seeds();
    let mut shapes = BTreeMap::new();
    while let Some(id) = queue.pop() {
        if shapes.contains_key(&id) {
            continue;
        }
        let raw = r.parse_shape(id)?;
        for child in raw
            .properties
            .iter()
            .chain(raw.node_refs.iter())
            .chain(raw.not.iter())
            .chain(raw.and.iter().flatten())
            .chain(raw.or.iter().flatten())
            .chain(raw.xone.iter().flatten())
        {
            queue.push(*child);
        }
        shapes.insert(id, raw);
    }
    Ok(shapes)
}

struct Reader<'a> {
    ds: &'a Dataset,
}

impl<'a> Reader<'a> {
    fn pid(&self, iri: &str) -> Option<TermId> {
        self.ds.pool.get(&Term::iri(iri))
    }

    fn objects(&self, s: TermId, p: &str) -> Vec<TermId> {
        match self.pid(p) {
            Some(p) => self.ds.graph.objects(s, p).collect(),
            None => Vec::new(),
        }
    }

    /// Shape discovery seeds: nodes typed as shapes, nodes with a target,
    /// and subjects using `sh:property`. Everything else is reached by
    /// following `sh:property` / `sh:node` / logical-operator edges.
    fn seeds(&self) -> Vec<TermId> {
        let mut out = Vec::new();
        let type_id = self.pid(rdf::TYPE);
        let shape_classes: Vec<TermId> = [sh::NODE_SHAPE, sh::PROPERTY_SHAPE]
            .iter()
            .filter_map(|c| self.pid(c))
            .collect();
        let seed_preds: Vec<TermId> = [
            sh::TARGET_CLASS,
            sh::TARGET_NODE,
            sh::TARGET_SUBJECTS_OF,
            sh::TARGET_OBJECTS_OF,
            sh::PROPERTY,
        ]
        .iter()
        .filter_map(|p| self.pid(p))
        .collect();
        for s in self.ds.graph.subjects() {
            for &(p, o) in self.ds.graph.neighbourhood(s) {
                let typed = Some(p) == type_id && shape_classes.contains(&o);
                if typed || seed_preds.contains(&p) {
                    out.push(s);
                    break;
                }
            }
        }
        out
    }

    /// Walks an `rdf:first`/`rdf:rest` list. Rejects malformed lists
    /// (missing links, cycles) with `E003`.
    fn read_list(&self, head: TermId) -> Result<Vec<TermId>, ShaclError> {
        let nil = self.pid(rdf::NIL);
        let mut items = Vec::new();
        let mut seen = Vec::new();
        let mut cur = head;
        loop {
            if Some(cur) == nil {
                return Ok(items);
            }
            if seen.contains(&cur) {
                return Err(err("E003", "rdf list contains a cycle"));
            }
            seen.push(cur);
            let first = self.objects(cur, rdf::FIRST);
            let rest = self.objects(cur, rdf::REST);
            match (first.as_slice(), rest.as_slice()) {
                (&[f], &[r]) => {
                    items.push(f);
                    cur = r;
                }
                _ => {
                    return Err(err(
                        "E003",
                        format!(
                            "malformed rdf list at {}: expected exactly one rdf:first and rdf:rest",
                            render_term(self.ds.pool.term(cur))
                        ),
                    ))
                }
            }
        }
    }

    fn iri_of(&self, id: TermId, what: &str) -> Result<Box<str>, ShaclError> {
        match self.ds.pool.term(id).as_iri() {
            Some(iri) => Ok(iri.as_str().into()),
            None => Err(err(
                "E004",
                format!("{what} must be an IRI, got {}", render_term(self.ds.pool.term(id))),
            )),
        }
    }

    fn u32_of(&self, id: TermId, what: &str) -> Result<u32, ShaclError> {
        self.ds
            .pool
            .term(id)
            .as_literal()
            .and_then(|l| l.lexical_form().parse::<u32>().ok())
            .ok_or_else(|| {
                err(
                    "E004",
                    format!(
                        "{what} must be a non-negative integer literal, got {}",
                        render_term(self.ds.pool.term(id))
                    ),
                )
            })
    }

    fn bool_of(&self, id: TermId, what: &str) -> Result<bool, ShaclError> {
        match self.ds.pool.term(id).as_literal().map(|l| l.lexical_form()) {
            Some("true") => Ok(true),
            Some("false") => Ok(false),
            _ => Err(err(
                "E004",
                format!("{what} must be \"true\" or \"false\""),
            )),
        }
    }

    fn numeric_of(&self, id: TermId, what: &str) -> Result<Numeric, ShaclError> {
        self.ds
            .pool
            .term(id)
            .as_literal()
            .and_then(Numeric::of_literal)
            .ok_or_else(|| {
                err(
                    "E004",
                    format!(
                        "{what} must be a numeric literal, got {}",
                        render_term(self.ds.pool.term(id))
                    ),
                )
            })
    }

    /// Parses a `sh:path` object: a bare IRI (forward) or a blank node
    /// carrying exactly `sh:inversePath <iri>`. Every other path form —
    /// sequences, alternatives, `sh:zeroOrMorePath` and friends — is
    /// outside the engine's arc language and is rejected.
    fn parse_path(&self, id: TermId) -> Result<Path, ShaclError> {
        let term = self.ds.pool.term(id);
        if let Some(iri) = term.as_iri() {
            return Ok(Path::Forward(iri.as_str().into()));
        }
        let inv = self.objects(id, sh::INVERSE_PATH);
        if let &[obj] = inv.as_slice() {
            // The blank node must carry nothing but the inverse marker.
            if self.ds.graph.neighbourhood(id).len() == 1 {
                return Ok(Path::Inverse(self.iri_of(obj, "sh:inversePath object")?));
            }
        }
        Err(err(
            "E002",
            format!(
                "unsupported sh:path form at {}: only a predicate IRI or \
                 [ sh:inversePath <iri> ] translate to engine arcs",
                render_term(term)
            ),
        ))
    }

    /// Translates a `sh:pattern` string (SPARQL REGEX, substring match)
    /// into the engine's full-match pattern facet: anchors at the ends are
    /// honoured, unanchored ends get an explicit `.*`. Anchors in the
    /// middle of the pattern have no full-match equivalent.
    fn translate_pattern(&self, pattern: &str) -> Result<Box<str>, ShaclError> {
        let mut core = pattern;
        let anchored_start = core.starts_with('^');
        if anchored_start {
            core = &core[1..];
        }
        // A trailing `$` anchors the end unless it is escaped (`\$`).
        let anchored_end = core.ends_with('$') && {
            let backslashes = core[..core.len() - 1].chars().rev().take_while(|&c| c == '\\').count();
            backslashes % 2 == 0
        };
        if anchored_end {
            core = &core[..core.len() - 1];
        }
        let mut depth_ok = true;
        let mut chars = core.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => {
                    chars.next();
                }
                '^' | '$' => depth_ok = false,
                _ => {}
            }
        }
        if !depth_ok {
            return Err(err(
                "E004",
                format!("sh:pattern {pattern:?}: anchors mid-pattern have no full-match translation"),
            ));
        }
        let full = format!(
            "{}({}){}",
            if anchored_start { "" } else { ".*" },
            core,
            if anchored_end { "" } else { ".*" },
        );
        if let Err(e) = Regex::new(&full) {
            return Err(err("E004", format!("sh:pattern {pattern:?} does not parse: {e}")));
        }
        Ok(full.into())
    }

    fn parse_shape(&self, id: TermId) -> Result<RawShape, ShaclError> {
        let mut raw = RawShape::default();
        let subject = render_term(self.ds.pool.term(id));
        let at = |what: &str| format!("{what} at shape {subject}");
        let type_id = self.pid(rdf::TYPE);
        let rdfs_class = self.pid(rdfs::CLASS);

        // Collect multi-valued parameters first so duplicate handling is
        // explicit; neighbourhood order is insertion order, deterministic.
        for &(p, o) in self.ds.graph.neighbourhood(id) {
            if Some(p) == type_id {
                // `?shape a rdfs:Class` declares the implicit class target.
                if Some(o) == rdfs_class {
                    if let Some(iri) = self.ds.pool.term(id).as_iri() {
                        raw.targets.push(TargetDecl::Class(iri.as_str().into()));
                    }
                }
                continue;
            }
            let pred = match self.ds.pool.term(p).as_iri() {
                Some(iri) => iri.as_str().to_string(),
                None => continue,
            };
            if !pred.starts_with(sh::NS) {
                continue; // foreign annotations are not SHACL parameters
            }
            match pred.as_str() {
                sh::PATH => {
                    if raw.path.is_some() {
                        return Err(err("E004", at("more than one sh:path")));
                    }
                    raw.path = Some(self.parse_path(o)?);
                }
                sh::MIN_COUNT => {
                    if raw.min_count.is_some() {
                        return Err(err("E004", at("more than one sh:minCount")));
                    }
                    raw.min_count = Some(self.u32_of(o, "sh:minCount")?);
                }
                sh::MAX_COUNT => {
                    if raw.max_count.is_some() {
                        return Err(err("E004", at("more than one sh:maxCount")));
                    }
                    raw.max_count = Some(self.u32_of(o, "sh:maxCount")?);
                }
                sh::DATATYPE => {
                    let dt = self.iri_of(o, "sh:datatype")?;
                    raw.tests.push((Component::Datatype, NodeConstraint::Datatype(dt)));
                }
                sh::NODE_KIND => {
                    let kind = self.iri_of(o, "sh:nodeKind")?;
                    let c = match &*kind {
                        sh::IRI => NodeConstraint::Kind(NodeKind::Iri),
                        sh::BLANK_NODE => NodeConstraint::Kind(NodeKind::BNode),
                        sh::LITERAL => NodeConstraint::Kind(NodeKind::Literal),
                        sh::BLANK_NODE_OR_IRI => NodeConstraint::Kind(NodeKind::NonLiteral),
                        sh::BLANK_NODE_OR_LITERAL => {
                            NodeConstraint::Not(Box::new(NodeConstraint::Kind(NodeKind::Iri)))
                        }
                        sh::IRI_OR_LITERAL => {
                            NodeConstraint::Not(Box::new(NodeConstraint::Kind(NodeKind::BNode)))
                        }
                        other => {
                            return Err(err("E004", at(&format!("unknown sh:nodeKind <{other}>"))))
                        }
                    };
                    raw.tests.push((Component::NodeKind, c));
                }
                sh::CLASS => raw.classes.push(self.iri_of(o, "sh:class")?),
                sh::NODE => raw.node_refs.push(o),
                sh::IN => {
                    let values = self
                        .read_list(o)?
                        .into_iter()
                        .map(|v| ValueSetValue::Term(self.ds.pool.term(v).clone()))
                        .collect();
                    raw.tests.push((Component::In, NodeConstraint::ValueSet(values)));
                }
                sh::HAS_VALUE => raw.has_values.push(self.ds.pool.term(o).clone()),
                sh::PATTERN => {
                    let lit = self
                        .ds
                        .pool
                        .term(o)
                        .as_literal()
                        .ok_or_else(|| err("E004", at("sh:pattern must be a string literal")))?;
                    let translated = self.translate_pattern(lit.lexical_form())?;
                    raw.tests
                        .push((Component::Pattern, NodeConstraint::Facet(Facet::Pattern(translated))));
                }
                sh::MIN_LENGTH => {
                    let n = self.u32_of(o, "sh:minLength")? as usize;
                    raw.tests
                        .push((Component::MinLength, NodeConstraint::Facet(Facet::MinLength(n))));
                }
                sh::MAX_LENGTH => {
                    let n = self.u32_of(o, "sh:maxLength")? as usize;
                    raw.tests
                        .push((Component::MaxLength, NodeConstraint::Facet(Facet::MaxLength(n))));
                }
                sh::LANGUAGE_IN => {
                    let tags: Result<Vec<ValueSetValue>, ShaclError> = self
                        .read_list(o)?
                        .into_iter()
                        .map(|v| {
                            self.ds
                                .pool
                                .term(v)
                                .as_literal()
                                .map(|l| ValueSetValue::Language(l.lexical_form().into()))
                                .ok_or_else(|| err("E004", at("sh:languageIn members must be strings")))
                        })
                        .collect();
                    raw.tests
                        .push((Component::LanguageIn, NodeConstraint::ValueSet(tags?)));
                }
                sh::MIN_INCLUSIVE => raw.tests.push((
                    Component::MinInclusive,
                    NodeConstraint::Facet(Facet::MinInclusive(self.numeric_of(o, "sh:minInclusive")?)),
                )),
                sh::MIN_EXCLUSIVE => raw.tests.push((
                    Component::MinExclusive,
                    NodeConstraint::Facet(Facet::MinExclusive(self.numeric_of(o, "sh:minExclusive")?)),
                )),
                sh::MAX_INCLUSIVE => raw.tests.push((
                    Component::MaxInclusive,
                    NodeConstraint::Facet(Facet::MaxInclusive(self.numeric_of(o, "sh:maxInclusive")?)),
                )),
                sh::MAX_EXCLUSIVE => raw.tests.push((
                    Component::MaxExclusive,
                    NodeConstraint::Facet(Facet::MaxExclusive(self.numeric_of(o, "sh:maxExclusive")?)),
                )),
                sh::AND => raw.and.push(self.read_list(o)?),
                sh::OR => raw.or.push(self.read_list(o)?),
                sh::XONE => raw.xone.push(self.read_list(o)?),
                sh::NOT => raw.not.push(o),
                sh::PROPERTY => raw.properties.push(o),
                sh::CLOSED => raw.closed = self.bool_of(o, "sh:closed")?,
                sh::IGNORED_PROPERTIES => {
                    for v in self.read_list(o)? {
                        raw.ignored.push(self.iri_of(v, "sh:ignoredProperties member")?);
                    }
                }
                sh::DEACTIVATED => raw.deactivated = self.bool_of(o, "sh:deactivated")?,
                sh::SEVERITY => {
                    let iri = self.iri_of(o, "sh:severity")?;
                    raw.severity = Some(curie(&iri));
                }
                sh::MESSAGE => {
                    if let Some(l) = self.ds.pool.term(o).as_literal() {
                        raw.messages.push(l.lexical_form().to_string());
                    }
                }
                sh::TARGET_CLASS => raw
                    .targets
                    .push(TargetDecl::Class(self.iri_of(o, "sh:targetClass")?)),
                sh::TARGET_NODE => raw
                    .targets
                    .push(TargetDecl::Node(self.ds.pool.term(o).clone())),
                sh::TARGET_SUBJECTS_OF => raw
                    .targets
                    .push(TargetDecl::SubjectsOf(self.iri_of(o, "sh:targetSubjectsOf")?)),
                sh::TARGET_OBJECTS_OF => raw
                    .targets
                    .push(TargetDecl::ObjectsOf(self.iri_of(o, "sh:targetObjectsOf")?)),
                // Pure annotations: valid SHACL, no validation semantics.
                sh::NAME | sh::DESCRIPTION | sh::ORDER | sh::GROUP | sh::DEFAULT_VALUE => {}
                // Recognised SHACL terms with no translation onto the
                // engine. Failing here — rather than skipping the triple —
                // is what keeps an unsupported shapes graph from
                // validating vacuously (DESIGN.md §5h).
                sh::SPARQL
                | sh::UNIQUE_LANG
                | sh::EQUALS
                | sh::DISJOINT
                | sh::LESS_THAN
                | sh::LESS_THAN_OR_EQUALS
                | sh::QUALIFIED_VALUE_SHAPE
                | sh::QUALIFIED_MIN_COUNT
                | sh::QUALIFIED_MAX_COUNT
                | sh::FLAGS => {
                    return Err(err(
                        "E001",
                        at(&format!("unsupported SHACL term {}", curie(&pred))),
                    ));
                }
                other => {
                    return Err(err(
                        "E001",
                        at(&format!("unrecognised SHACL term {}", curie(other))),
                    ));
                }
            }
        }

        // Structural sanity that is cheap to state here: counts and
        // closedness only make sense with / without a path.
        if raw.path.is_none() && (raw.min_count.is_some() || raw.max_count.is_some()) {
            return Err(err("E004", at("sh:minCount/sh:maxCount require sh:path")));
        }
        if raw.path.is_some() && !raw.properties.is_empty() {
            return Err(err(
                "E006",
                at("sh:property on a property shape (value-node scope) is not translated"),
            ));
        }
        if raw.path.is_some() && raw.closed {
            return Err(err(
                "E006",
                at("sh:closed on a property shape (value-node scope) is not translated"),
            ));
        }
        Ok(raw)
    }
}

/// Shortens a SHACL-namespace IRI to its `sh:` CURIE for messages and
/// report rows; other IRIs render in angle brackets.
pub(crate) fn curie(iri: &str) -> String {
    match iri.strip_prefix(sh::NS) {
        Some(local) => format!("sh:{local}"),
        None => format!("<{iri}>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_rdf::turtle;

    fn read(src: &str) -> Result<BTreeMap<TermId, RawShape>, ShaclError> {
        let ds = turtle::parse(src).expect("shapes parse");
        read_shapes(&ds)
    }

    const PREFIXES: &str = "@prefix sh: <http://www.w3.org/ns/shacl#> .\n\
                            @prefix ex: <http://example.org/> .\n\
                            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n";

    #[test]
    fn discovers_shapes_and_children() {
        let shapes = read(&format!(
            "{PREFIXES}\
             ex:Person a sh:NodeShape ;\n\
               sh:targetClass ex:PersonC ;\n\
               sh:property [ sh:path ex:name ; sh:minCount 1 ; sh:datatype xsd:string ] ."
        ))
        .unwrap();
        assert_eq!(shapes.len(), 2, "node shape + property child");
        let person = shapes
            .values()
            .find(|s| !s.targets.is_empty())
            .expect("targeted shape");
        assert_eq!(person.properties.len(), 1);
        let child = &shapes[&person.properties[0]];
        assert_eq!(child.path, Some(Path::Forward("http://example.org/name".into())));
        assert_eq!(child.min_count, Some(1));
        assert_eq!(child.tests.len(), 1);
    }

    #[test]
    fn inverse_path_parses_and_sequence_path_rejected() {
        let shapes = read(&format!(
            "{PREFIXES}\
             ex:S a sh:NodeShape ;\n\
               sh:property [ sh:path [ sh:inversePath ex:member ] ; sh:minCount 1 ] ."
        ))
        .unwrap();
        let child = shapes.values().find(|s| s.path.is_some()).unwrap();
        assert!(child.path.as_ref().unwrap().is_inverse());

        let e = read(&format!(
            "{PREFIXES}ex:S a sh:NodeShape ; sh:property [ sh:path ( ex:a ex:b ) ] ."
        ))
        .unwrap_err();
        assert_eq!(e.code, "E002");
    }

    #[test]
    fn unsupported_terms_fail_not_skip() {
        for (term, frag) in [
            ("sh:uniqueLang", "sh:uniqueLang true"),
            ("sh:equals", "sh:equals ex:other"),
            ("sh:lessThan", "sh:lessThan ex:other"),
            ("sh:qualifiedMinCount", "sh:qualifiedMinCount 1"),
            ("sh:flags", "sh:flags \"i\""),
        ] {
            let e = read(&format!(
                "{PREFIXES}ex:S a sh:NodeShape ; sh:property [ sh:path ex:p ; {frag} ] ."
            ))
            .unwrap_err();
            assert_eq!(e.code, "E001", "{term} must be rejected, got {e}");
            assert!(e.to_string().contains(term), "{e} should name {term}");
        }
        // sh:sparql sits on the node shape itself.
        let e = read(&format!(
            "{PREFIXES}ex:S a sh:NodeShape ; sh:targetNode ex:n ; sh:sparql [ ] ."
        ))
        .unwrap_err();
        assert_eq!(e.code, "E001");
        assert!(e.to_string().contains("sh:sparql"));
    }

    #[test]
    fn unknown_sh_term_rejected() {
        let e = read(&format!(
            "{PREFIXES}ex:S a sh:NodeShape ; sh:frobnicate true ."
        ))
        .unwrap_err();
        assert_eq!(e.code, "E001");
        assert!(e.to_string().contains("sh:frobnicate"));
    }

    #[test]
    fn list_cycle_detected() {
        // Hand-built cyclic list: _:l rdf:first 1 ; rdf:rest _:l .
        let src = format!(
            "{PREFIXES}\
             @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .\n\
             ex:S a sh:NodeShape ; sh:property [ sh:path ex:p ; sh:in _:l ] .\n\
             _:l rdf:first 1 ; rdf:rest _:l ."
        );
        let e = read(&src).unwrap_err();
        assert_eq!(e.code, "E003");
    }

    #[test]
    fn pattern_translation_honours_anchors() {
        let ds = turtle::parse(PREFIXES).unwrap();
        let r = Reader { ds: &ds };
        assert_eq!(&*r.translate_pattern("ab").unwrap(), ".*(ab).*");
        assert_eq!(&*r.translate_pattern("^ab$").unwrap(), "(ab)");
        assert_eq!(&*r.translate_pattern("^a|b").unwrap(), "(a|b).*");
        assert!(r.translate_pattern("a^b").is_err());
        assert!(r.translate_pattern("(unclosed").is_err());
    }

    #[test]
    fn implicit_class_target() {
        let shapes = read(&format!(
            "{PREFIXES}\
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:PersonC a rdfs:Class, sh:NodeShape ;\n\
               sh:property [ sh:path ex:name ; sh:minCount 1 ] ."
        ))
        .unwrap();
        let person = shapes.values().find(|s| !s.properties.is_empty()).unwrap();
        assert!(matches!(&person.targets[..], [TargetDecl::Class(c)] if &**c == "http://example.org/PersonC"));
    }
}

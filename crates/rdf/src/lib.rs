#![warn(missing_docs)]
//! # shapex-rdf
//!
//! The RDF substrate for the `shapex` validator: an in-memory, interned
//! triple store with the graph operations the paper's validation algorithms
//! need (most importantly node neighbourhoods `Σg_n`), plus Turtle and
//! N-Triples parsers, serializers, and XSD datatype support.
//!
//! ## Quick tour
//!
//! ```
//! use shapex_rdf::turtle;
//!
//! let ds = turtle::parse(r#"
//!     @prefix : <http://example.org/> .
//!     @prefix foaf: <http://xmlns.com/foaf/0.1/> .
//!     :john foaf:age 23; foaf:name "John" .
//! "#).unwrap();
//!
//! let john = ds.iri("http://example.org/john").unwrap();
//! assert_eq!(ds.graph.neighbourhood(john).len(), 2);
//! ```

pub mod delta;
pub mod failpoint;
pub mod graph;
pub mod iso;
pub mod ntriples;
pub mod parser;
pub mod pool;
pub mod term;
pub mod turtle;
pub mod vocab;
pub mod writer;
pub mod xsd;

pub use delta::{AppliedDelta, DeltaApplyError, DeltaError, GraphDelta};
pub use graph::{Arc, Dataset, Graph, Triple};
pub use iso::are_isomorphic;
pub use parser::ParseError;
pub use pool::{TermId, TermPool};
pub use term::{BlankNode, Iri, Literal, Term};

//! Named fault-injection points for robustness testing.
//!
//! A *failpoint* is a named site in the code where a test (or an operator
//! running a chaos drill) can inject a fault: a panic, an artificial
//! delay, or a synthetic I/O-style error. Production builds compile every
//! site down to nothing — the whole module is inert unless the
//! `fail-inject` cargo feature is enabled, and even then a site is a
//! single mutex-guarded map probe that misses for unregistered names.
//!
//! Sites come in two flavours:
//!
//! * [`hit`] — panic/delay only. Used where the surrounding code has no
//!   error channel (engine internals). An `Error` action registered at a
//!   `hit` site escalates to a panic.
//! * [`check`] — returns `Some(message)` for an `Error` action so the
//!   caller can surface it through its own error type (parsers, delta
//!   application). Panics and delays are handled internally.
//!
//! The registered sites (all names are stable test API):
//!
//! | name            | site                                   | flavour |
//! |-----------------|----------------------------------------|---------|
//! | `turtle-parse`  | [`crate::turtle::parse_into`]          | check   |
//! | `delta-apply`   | [`crate::graph::Graph::try_apply_delta`] per-operation | check |
//! | `engine-compile`| `shapex::Engine::compile`              | hit     |
//! | `typing-wave`   | the engine's per-query gfp driver      | hit     |
//! | `dfa-fill`      | lazy-DFA transition-table fills        | hit     |
//!
//! Configuration is programmatic ([`set`]/[`clear`]/[`reset`]) or via the
//! `SHAPEX_FAILPOINTS` environment variable (see [`configure_from_env`]),
//! e.g. `SHAPEX_FAILPOINTS="typing-wave=panic:1;delta-apply=error(disk)"`.

use std::time::Duration;

/// What an armed failpoint does when its site is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Panic with `failpoint <name>` — models an engine invariant blowing
    /// up mid-request.
    Panic,
    /// Sleep for the duration before continuing — models a stall that
    /// should trip deadlines and shed load.
    Delay(Duration),
    /// Surface a synthetic error with this message through the site's
    /// error channel — models I/O failure. At a panic-only ([`hit`])
    /// site this escalates to a panic.
    Error(String),
}

#[cfg(feature = "fail-inject")]
mod armed {
    use super::Action;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    struct Entry {
        action: Action,
        /// Hits to let pass before the point starts firing — this is what
        /// places an injected failure *mid*-delta or mid-run.
        skip: u32,
        /// `None` = fire on every hit; `Some(n)` = fire on the next `n`
        /// hits, then disarm.
        remaining: Option<u32>,
    }

    fn registry() -> &'static Mutex<HashMap<String, Entry>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub fn set(name: &str, action: Action, skip: u32, times: Option<u32>) {
        registry().lock().unwrap().insert(
            name.to_string(),
            Entry {
                action,
                skip,
                remaining: times,
            },
        );
    }

    pub fn clear(name: &str) {
        registry().lock().unwrap().remove(name);
    }

    pub fn reset() {
        registry().lock().unwrap().clear();
    }

    /// Consumes one firing of `name`, if armed. The sleep for a `Delay`
    /// happens here, after the registry lock is released.
    pub fn fire(name: &str) -> Option<Action> {
        let action = {
            let mut map = registry().lock().unwrap();
            let entry = map.get_mut(name)?;
            if entry.skip > 0 {
                entry.skip -= 1;
                return None;
            }
            match &mut entry.remaining {
                Some(0) => return None,
                Some(n) => *n -= 1,
                None => {}
            }
            entry.action.clone()
        };
        if let Action::Delay(d) = action {
            std::thread::sleep(d);
            return None;
        }
        Some(action)
    }

    /// Parses one `name=action[:times]` clause.
    pub fn parse_clause(clause: &str) -> Option<(String, Action, Option<u32>)> {
        let (name, spec) = clause.split_once('=')?;
        let (spec, times) = match spec.rsplit_once(':') {
            Some((head, n)) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                (head, Some(n.parse().ok()?))
            }
            _ => (spec, None),
        };
        let action = if spec == "panic" {
            Action::Panic
        } else if let Some(ms) = spec
            .strip_prefix("delay(")
            .and_then(|s| s.strip_suffix(')'))
        {
            Action::Delay(Duration::from_millis(ms.parse().ok()?))
        } else if let Some(msg) = spec
            .strip_prefix("error(")
            .and_then(|s| s.strip_suffix(')'))
        {
            Action::Error(msg.to_string())
        } else {
            return None;
        };
        Some((name.trim().to_string(), action, times))
    }
}

/// Arms failpoint `name` with `action`. `times: Some(n)` fires on the next
/// `n` hits then disarms; `None` fires on every hit until [`clear`]ed.
/// No-op without the `fail-inject` feature.
pub fn set(name: &str, action: Action, times: Option<u32>) {
    set_after(name, action, 0, times);
}

/// [`set`], but lets the first `skip` hits pass before firing — the knob
/// that places an injected failure *mid*-delta or mid-run instead of at
/// the first site reached. No-op without the `fail-inject` feature.
pub fn set_after(name: &str, action: Action, skip: u32, times: Option<u32>) {
    #[cfg(feature = "fail-inject")]
    armed::set(name, action, skip, times);
    #[cfg(not(feature = "fail-inject"))]
    let _ = (name, action, skip, times);
}

/// Disarms failpoint `name`. No-op without the `fail-inject` feature.
pub fn clear(name: &str) {
    #[cfg(feature = "fail-inject")]
    armed::clear(name);
    #[cfg(not(feature = "fail-inject"))]
    let _ = name;
}

/// Disarms every failpoint. No-op without the `fail-inject` feature.
pub fn reset() {
    #[cfg(feature = "fail-inject")]
    armed::reset();
}

/// Arms failpoints from the `SHAPEX_FAILPOINTS` environment variable:
/// `;`-separated `name=action[:times]` clauses where `action` is `panic`,
/// `delay(MS)`, or `error(MSG)` and `times` caps how often the point
/// fires. Malformed clauses are reported back instead of silently
/// ignored. No-op (returning an empty list) without the feature.
pub fn configure_from_env() -> Vec<String> {
    #[cfg(feature = "fail-inject")]
    {
        let mut bad = Vec::new();
        if let Ok(spec) = std::env::var("SHAPEX_FAILPOINTS") {
            for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
                match armed::parse_clause(clause.trim()) {
                    Some((name, action, times)) => armed::set(&name, action, 0, times),
                    None => bad.push(clause.trim().to_string()),
                }
            }
        }
        bad
    }
    #[cfg(not(feature = "fail-inject"))]
    Vec::new()
}

/// A panic-only failpoint site: panics on `Panic` (and, escalated, on
/// `Error`), sleeps on `Delay`, and does nothing when unarmed. Compiles
/// to nothing without the `fail-inject` feature.
#[inline]
pub fn hit(name: &str) {
    #[cfg(feature = "fail-inject")]
    if let Some(action) = armed::fire(name) {
        match action {
            Action::Panic => panic!("failpoint {name}"),
            Action::Error(msg) => panic!("failpoint {name}: {msg} (error at panic-only site)"),
            Action::Delay(_) => unreachable!("delays are handled in fire"),
        }
    }
    #[cfg(not(feature = "fail-inject"))]
    let _ = name;
}

/// An error-capable failpoint site: like [`hit`], but an `Error` action is
/// returned as `Some(message)` for the caller to surface through its own
/// error type. Always `None` without the `fail-inject` feature.
#[inline]
pub fn check(name: &str) -> Option<String> {
    #[cfg(feature = "fail-inject")]
    if let Some(action) = armed::fire(name) {
        match action {
            Action::Panic => panic!("failpoint {name}"),
            Action::Error(msg) => return Some(msg),
            Action::Delay(_) => unreachable!("delays are handled in fire"),
        }
    }
    #[cfg(not(feature = "fail-inject"))]
    let _ = name;
    None
}

#[cfg(all(test, feature = "fail-inject"))]
mod tests {
    use super::*;

    // Failpoint state is process-global; these tests use distinct names so
    // they can run concurrently with each other and with other suites.

    #[test]
    fn unarmed_sites_are_inert() {
        hit("fp-test-unarmed");
        assert_eq!(check("fp-test-unarmed"), None);
    }

    #[test]
    fn error_action_surfaces_at_check_sites() {
        set("fp-test-err", Action::Error("disk on fire".into()), None);
        assert_eq!(check("fp-test-err"), Some("disk on fire".to_string()));
        clear("fp-test-err");
        assert_eq!(check("fp-test-err"), None);
    }

    #[test]
    fn times_budget_disarms() {
        set("fp-test-times", Action::Error("boom".into()), Some(2));
        assert!(check("fp-test-times").is_some());
        assert!(check("fp-test-times").is_some());
        assert!(check("fp-test-times").is_none());
    }

    #[test]
    fn panic_action_panics() {
        set("fp-test-panic", Action::Panic, Some(1));
        let err = std::panic::catch_unwind(|| hit("fp-test-panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("failpoint fp-test-panic"), "{msg}");
        // The budget of 1 is spent: the site is inert again.
        hit("fp-test-panic");
    }

    #[test]
    fn delay_action_sleeps_and_continues() {
        set(
            "fp-test-delay",
            Action::Delay(Duration::from_millis(30)),
            Some(1),
        );
        let start = std::time::Instant::now();
        hit("fp-test-delay");
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn env_clause_parsing() {
        use super::armed::parse_clause;
        assert_eq!(
            parse_clause("a=panic"),
            Some(("a".to_string(), Action::Panic, None))
        );
        assert_eq!(
            parse_clause("b=delay(40):2"),
            Some((
                "b".to_string(),
                Action::Delay(Duration::from_millis(40)),
                Some(2)
            ))
        );
        assert_eq!(
            parse_clause("c=error(no space left)"),
            Some((
                "c".to_string(),
                Action::Error("no space left".to_string()),
                None
            ))
        );
        assert_eq!(parse_clause("junk"), None);
        assert_eq!(parse_clause("d=explode"), None);
    }
}

//! Common RDF vocabularies used throughout the validator and tests.

/// RDF core vocabulary.
pub mod rdf {
    /// The namespace IRI.
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    /// The `Type` term.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// The `Lang String` term.
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
    /// The `First` term.
    pub const FIRST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
    /// The `Rest` term.
    pub const REST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
    /// The `Nil` term.
    pub const NIL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
}

/// RDF Schema vocabulary.
pub mod rdfs {
    /// The namespace IRI.
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    /// The `Label` term.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// The `Comment` term.
    pub const COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
    /// The `Sub Class Of` term.
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    /// The `Class` term (SHACL's implicit-class-target marker).
    pub const CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
}

/// XML Schema datatypes, the value spaces the paper's node constraints draw
/// from (e.g. `xsd:integer`, `xsd:string` in Example 1).
pub mod xsd {
    /// The namespace IRI.
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    /// The `String` term.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// The `Boolean` term.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    /// The `Integer` term.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// The `Decimal` term.
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// The `Double` term.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// The `Float` term.
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    /// The `Long` term.
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    /// The `Int` term.
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    /// The `Short` term.
    pub const SHORT: &str = "http://www.w3.org/2001/XMLSchema#short";
    /// The `Byte` term.
    pub const BYTE: &str = "http://www.w3.org/2001/XMLSchema#byte";
    /// The `Non Negative Integer` term.
    pub const NON_NEGATIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#nonNegativeInteger";
    /// The `Non Positive Integer` term.
    pub const NON_POSITIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#nonPositiveInteger";
    /// The `Positive Integer` term.
    pub const POSITIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#positiveInteger";
    /// The `Negative Integer` term.
    pub const NEGATIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#negativeInteger";
    /// The `Unsigned Long` term.
    pub const UNSIGNED_LONG: &str = "http://www.w3.org/2001/XMLSchema#unsignedLong";
    /// The `Unsigned Int` term.
    pub const UNSIGNED_INT: &str = "http://www.w3.org/2001/XMLSchema#unsignedInt";
    /// The `Unsigned Short` term.
    pub const UNSIGNED_SHORT: &str = "http://www.w3.org/2001/XMLSchema#unsignedShort";
    /// The `Unsigned Byte` term.
    pub const UNSIGNED_BYTE: &str = "http://www.w3.org/2001/XMLSchema#unsignedByte";
    /// The `Date` term.
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    /// The `Date Time` term.
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    /// The `Time` term.
    pub const TIME: &str = "http://www.w3.org/2001/XMLSchema#time";
    /// The `G Year` term.
    pub const G_YEAR: &str = "http://www.w3.org/2001/XMLSchema#gYear";
    /// The `Any Uri` term.
    pub const ANY_URI: &str = "http://www.w3.org/2001/XMLSchema#anyURI";
}

/// FOAF vocabulary, used in the paper's running example (Examples 1, 2, 14).
pub mod foaf {
    /// The namespace IRI.
    pub const NS: &str = "http://xmlns.com/foaf/0.1/";
    /// The `Age` term.
    pub const AGE: &str = "http://xmlns.com/foaf/0.1/age";
    /// The `Name` term.
    pub const NAME: &str = "http://xmlns.com/foaf/0.1/name";
    /// The `Knows` term.
    pub const KNOWS: &str = "http://xmlns.com/foaf/0.1/knows";
    /// The `Mbox` term.
    pub const MBOX: &str = "http://xmlns.com/foaf/0.1/mbox";
    /// The `Person` term.
    pub const PERSON: &str = "http://xmlns.com/foaf/0.1/Person";
}

/// SHACL Core vocabulary, consumed by the `shapex-shacl` front-end.
pub mod sh {
    /// The namespace IRI.
    pub const NS: &str = "http://www.w3.org/ns/shacl#";
    /// The `NodeShape` class.
    pub const NODE_SHAPE: &str = "http://www.w3.org/ns/shacl#NodeShape";
    /// The `PropertyShape` class.
    pub const PROPERTY_SHAPE: &str = "http://www.w3.org/ns/shacl#PropertyShape";
    /// The `property` term.
    pub const PROPERTY: &str = "http://www.w3.org/ns/shacl#property";
    /// The `path` term.
    pub const PATH: &str = "http://www.w3.org/ns/shacl#path";
    /// The `inversePath` term.
    pub const INVERSE_PATH: &str = "http://www.w3.org/ns/shacl#inversePath";
    /// The `targetClass` term.
    pub const TARGET_CLASS: &str = "http://www.w3.org/ns/shacl#targetClass";
    /// The `targetNode` term.
    pub const TARGET_NODE: &str = "http://www.w3.org/ns/shacl#targetNode";
    /// The `targetSubjectsOf` term.
    pub const TARGET_SUBJECTS_OF: &str = "http://www.w3.org/ns/shacl#targetSubjectsOf";
    /// The `targetObjectsOf` term.
    pub const TARGET_OBJECTS_OF: &str = "http://www.w3.org/ns/shacl#targetObjectsOf";
    /// The `minCount` term.
    pub const MIN_COUNT: &str = "http://www.w3.org/ns/shacl#minCount";
    /// The `maxCount` term.
    pub const MAX_COUNT: &str = "http://www.w3.org/ns/shacl#maxCount";
    /// The `datatype` term.
    pub const DATATYPE: &str = "http://www.w3.org/ns/shacl#datatype";
    /// The `nodeKind` term.
    pub const NODE_KIND: &str = "http://www.w3.org/ns/shacl#nodeKind";
    /// The `IRI` node kind.
    pub const IRI: &str = "http://www.w3.org/ns/shacl#IRI";
    /// The `BlankNode` node kind.
    pub const BLANK_NODE: &str = "http://www.w3.org/ns/shacl#BlankNode";
    /// The `Literal` node kind.
    pub const LITERAL: &str = "http://www.w3.org/ns/shacl#Literal";
    /// The `BlankNodeOrIRI` node kind.
    pub const BLANK_NODE_OR_IRI: &str = "http://www.w3.org/ns/shacl#BlankNodeOrIRI";
    /// The `BlankNodeOrLiteral` node kind.
    pub const BLANK_NODE_OR_LITERAL: &str = "http://www.w3.org/ns/shacl#BlankNodeOrLiteral";
    /// The `IRIOrLiteral` node kind.
    pub const IRI_OR_LITERAL: &str = "http://www.w3.org/ns/shacl#IRIOrLiteral";
    /// The `class` term.
    pub const CLASS: &str = "http://www.w3.org/ns/shacl#class";
    /// The `node` term.
    pub const NODE: &str = "http://www.w3.org/ns/shacl#node";
    /// The `in` term.
    pub const IN: &str = "http://www.w3.org/ns/shacl#in";
    /// The `hasValue` term.
    pub const HAS_VALUE: &str = "http://www.w3.org/ns/shacl#hasValue";
    /// The `pattern` term.
    pub const PATTERN: &str = "http://www.w3.org/ns/shacl#pattern";
    /// The `flags` term.
    pub const FLAGS: &str = "http://www.w3.org/ns/shacl#flags";
    /// The `minLength` term.
    pub const MIN_LENGTH: &str = "http://www.w3.org/ns/shacl#minLength";
    /// The `maxLength` term.
    pub const MAX_LENGTH: &str = "http://www.w3.org/ns/shacl#maxLength";
    /// The `languageIn` term.
    pub const LANGUAGE_IN: &str = "http://www.w3.org/ns/shacl#languageIn";
    /// The `minInclusive` term.
    pub const MIN_INCLUSIVE: &str = "http://www.w3.org/ns/shacl#minInclusive";
    /// The `minExclusive` term.
    pub const MIN_EXCLUSIVE: &str = "http://www.w3.org/ns/shacl#minExclusive";
    /// The `maxInclusive` term.
    pub const MAX_INCLUSIVE: &str = "http://www.w3.org/ns/shacl#maxInclusive";
    /// The `maxExclusive` term.
    pub const MAX_EXCLUSIVE: &str = "http://www.w3.org/ns/shacl#maxExclusive";
    /// The `and` term.
    pub const AND: &str = "http://www.w3.org/ns/shacl#and";
    /// The `or` term.
    pub const OR: &str = "http://www.w3.org/ns/shacl#or";
    /// The `not` term.
    pub const NOT: &str = "http://www.w3.org/ns/shacl#not";
    /// The `xone` term.
    pub const XONE: &str = "http://www.w3.org/ns/shacl#xone";
    /// The `closed` term.
    pub const CLOSED: &str = "http://www.w3.org/ns/shacl#closed";
    /// The `ignoredProperties` term.
    pub const IGNORED_PROPERTIES: &str = "http://www.w3.org/ns/shacl#ignoredProperties";
    /// The `deactivated` term.
    pub const DEACTIVATED: &str = "http://www.w3.org/ns/shacl#deactivated";
    /// The `severity` term.
    pub const SEVERITY: &str = "http://www.w3.org/ns/shacl#severity";
    /// The `message` term.
    pub const MESSAGE: &str = "http://www.w3.org/ns/shacl#message";
    /// The `Violation` severity.
    pub const VIOLATION: &str = "http://www.w3.org/ns/shacl#Violation";
    /// The `name`/`description` annotation terms (ignored, never errors).
    pub const NAME: &str = "http://www.w3.org/ns/shacl#name";
    /// The `description` annotation term.
    pub const DESCRIPTION: &str = "http://www.w3.org/ns/shacl#description";
    /// The `order` annotation term.
    pub const ORDER: &str = "http://www.w3.org/ns/shacl#order";
    /// The `group` annotation term.
    pub const GROUP: &str = "http://www.w3.org/ns/shacl#group";
    /// The `defaultValue` annotation term.
    pub const DEFAULT_VALUE: &str = "http://www.w3.org/ns/shacl#defaultValue";
    /// The `uniqueLang` term (unsupported by the compiler).
    pub const UNIQUE_LANG: &str = "http://www.w3.org/ns/shacl#uniqueLang";
    /// The `equals` term (unsupported by the compiler).
    pub const EQUALS: &str = "http://www.w3.org/ns/shacl#equals";
    /// The `disjoint` term (unsupported by the compiler).
    pub const DISJOINT: &str = "http://www.w3.org/ns/shacl#disjoint";
    /// The `lessThan` term (unsupported by the compiler).
    pub const LESS_THAN: &str = "http://www.w3.org/ns/shacl#lessThan";
    /// The `lessThanOrEquals` term (unsupported by the compiler).
    pub const LESS_THAN_OR_EQUALS: &str = "http://www.w3.org/ns/shacl#lessThanOrEquals";
    /// The `qualifiedValueShape` term (unsupported by the compiler).
    pub const QUALIFIED_VALUE_SHAPE: &str = "http://www.w3.org/ns/shacl#qualifiedValueShape";
    /// The `qualifiedMinCount` term (unsupported by the compiler).
    pub const QUALIFIED_MIN_COUNT: &str = "http://www.w3.org/ns/shacl#qualifiedMinCount";
    /// The `qualifiedMaxCount` term (unsupported by the compiler).
    pub const QUALIFIED_MAX_COUNT: &str = "http://www.w3.org/ns/shacl#qualifiedMaxCount";
    /// The `sparql` term (SHACL-SPARQL; unsupported by the compiler).
    pub const SPARQL: &str = "http://www.w3.org/ns/shacl#sparql";
}

/// Default prefix table offered by the parsers' convenience constructors.
pub fn well_known_prefixes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("rdf", rdf::NS),
        ("rdfs", rdfs::NS),
        ("xsd", xsd::NS),
        ("foaf", foaf::NS),
        ("sh", sh::NS),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn namespaces_are_prefixes_of_their_terms() {
        assert!(super::xsd::INTEGER.starts_with(super::xsd::NS));
        assert!(super::rdf::TYPE.starts_with(super::rdf::NS));
        assert!(super::foaf::KNOWS.starts_with(super::foaf::NS));
        assert!(super::rdfs::LABEL.starts_with(super::rdfs::NS));
        assert!(super::sh::MIN_COUNT.starts_with(super::sh::NS));
    }

    #[test]
    fn well_known_prefixes_contains_xsd() {
        let p = super::well_known_prefixes();
        assert!(p.iter().any(|(k, v)| *k == "xsd" && *v == super::xsd::NS));
    }
}

//! Common RDF vocabularies used throughout the validator and tests.

/// RDF core vocabulary.
pub mod rdf {
    /// The namespace IRI.
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    /// The `Type` term.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// The `Lang String` term.
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
    /// The `First` term.
    pub const FIRST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
    /// The `Rest` term.
    pub const REST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
    /// The `Nil` term.
    pub const NIL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
}

/// RDF Schema vocabulary.
pub mod rdfs {
    /// The namespace IRI.
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    /// The `Label` term.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// The `Comment` term.
    pub const COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
    /// The `Sub Class Of` term.
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
}

/// XML Schema datatypes, the value spaces the paper's node constraints draw
/// from (e.g. `xsd:integer`, `xsd:string` in Example 1).
pub mod xsd {
    /// The namespace IRI.
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    /// The `String` term.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// The `Boolean` term.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    /// The `Integer` term.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// The `Decimal` term.
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// The `Double` term.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// The `Float` term.
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    /// The `Long` term.
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    /// The `Int` term.
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    /// The `Short` term.
    pub const SHORT: &str = "http://www.w3.org/2001/XMLSchema#short";
    /// The `Byte` term.
    pub const BYTE: &str = "http://www.w3.org/2001/XMLSchema#byte";
    /// The `Non Negative Integer` term.
    pub const NON_NEGATIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#nonNegativeInteger";
    /// The `Non Positive Integer` term.
    pub const NON_POSITIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#nonPositiveInteger";
    /// The `Positive Integer` term.
    pub const POSITIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#positiveInteger";
    /// The `Negative Integer` term.
    pub const NEGATIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#negativeInteger";
    /// The `Unsigned Long` term.
    pub const UNSIGNED_LONG: &str = "http://www.w3.org/2001/XMLSchema#unsignedLong";
    /// The `Unsigned Int` term.
    pub const UNSIGNED_INT: &str = "http://www.w3.org/2001/XMLSchema#unsignedInt";
    /// The `Unsigned Short` term.
    pub const UNSIGNED_SHORT: &str = "http://www.w3.org/2001/XMLSchema#unsignedShort";
    /// The `Unsigned Byte` term.
    pub const UNSIGNED_BYTE: &str = "http://www.w3.org/2001/XMLSchema#unsignedByte";
    /// The `Date` term.
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    /// The `Date Time` term.
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    /// The `Time` term.
    pub const TIME: &str = "http://www.w3.org/2001/XMLSchema#time";
    /// The `G Year` term.
    pub const G_YEAR: &str = "http://www.w3.org/2001/XMLSchema#gYear";
    /// The `Any Uri` term.
    pub const ANY_URI: &str = "http://www.w3.org/2001/XMLSchema#anyURI";
}

/// FOAF vocabulary, used in the paper's running example (Examples 1, 2, 14).
pub mod foaf {
    /// The namespace IRI.
    pub const NS: &str = "http://xmlns.com/foaf/0.1/";
    /// The `Age` term.
    pub const AGE: &str = "http://xmlns.com/foaf/0.1/age";
    /// The `Name` term.
    pub const NAME: &str = "http://xmlns.com/foaf/0.1/name";
    /// The `Knows` term.
    pub const KNOWS: &str = "http://xmlns.com/foaf/0.1/knows";
    /// The `Mbox` term.
    pub const MBOX: &str = "http://xmlns.com/foaf/0.1/mbox";
    /// The `Person` term.
    pub const PERSON: &str = "http://xmlns.com/foaf/0.1/Person";
}

/// Default prefix table offered by the parsers' convenience constructors.
pub fn well_known_prefixes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("rdf", rdf::NS),
        ("rdfs", rdfs::NS),
        ("xsd", xsd::NS),
        ("foaf", foaf::NS),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn namespaces_are_prefixes_of_their_terms() {
        assert!(super::xsd::INTEGER.starts_with(super::xsd::NS));
        assert!(super::rdf::TYPE.starts_with(super::rdf::NS));
        assert!(super::foaf::KNOWS.starts_with(super::foaf::NS));
        assert!(super::rdfs::LABEL.starts_with(super::rdfs::NS));
    }

    #[test]
    fn well_known_prefixes_contains_xsd() {
        let p = super::well_known_prefixes();
        assert!(p.iter().any(|(k, v)| *k == "xsd" && *v == super::xsd::NS));
    }
}

//! XSD datatype support: lexical-form validation and numeric value
//! comparison.
//!
//! The paper treats datatypes as value subsets of `L` ("we can consider
//! xsd:int and xsd:string as subsets of L", Example 6). Membership of a
//! literal in such a subset is decided here by checking (a) the declared
//! datatype IRI and (b) that the lexical form is valid for it. Numeric
//! values additionally support exact ordering for the ShEx numeric facets
//! (`MININCLUSIVE` etc.).

use crate::term::Literal;
use crate::vocab::{rdf, xsd};

/// Checks whether `lexical` is a valid lexical form for the datatype IRI.
/// Unknown datatypes are treated permissively (any lexical form is valid),
/// matching the open-world handling of user-defined datatypes.
pub fn is_valid_lexical(datatype: &str, lexical: &str) -> bool {
    match datatype {
        xsd::STRING | xsd::ANY_URI | rdf::LANG_STRING => true,
        xsd::BOOLEAN => matches!(lexical, "true" | "false" | "1" | "0"),
        xsd::INTEGER => is_integer(lexical),
        xsd::LONG => in_int_range(lexical, i64::MIN as i128, i64::MAX as i128),
        xsd::INT => in_int_range(lexical, i32::MIN as i128, i32::MAX as i128),
        xsd::SHORT => in_int_range(lexical, i16::MIN as i128, i16::MAX as i128),
        xsd::BYTE => in_int_range(lexical, i8::MIN as i128, i8::MAX as i128),
        xsd::NON_NEGATIVE_INTEGER => in_int_range(lexical, 0, i128::MAX),
        xsd::NON_POSITIVE_INTEGER => in_int_range(lexical, i128::MIN, 0),
        xsd::POSITIVE_INTEGER => in_int_range(lexical, 1, i128::MAX),
        xsd::NEGATIVE_INTEGER => in_int_range(lexical, i128::MIN, -1),
        xsd::UNSIGNED_LONG => in_int_range(lexical, 0, u64::MAX as i128),
        xsd::UNSIGNED_INT => in_int_range(lexical, 0, u32::MAX as i128),
        xsd::UNSIGNED_SHORT => in_int_range(lexical, 0, u16::MAX as i128),
        xsd::UNSIGNED_BYTE => in_int_range(lexical, 0, u8::MAX as i128),
        xsd::DECIMAL => is_decimal(lexical),
        xsd::DOUBLE | xsd::FLOAT => is_double(lexical),
        xsd::DATE => is_date(lexical),
        xsd::TIME => is_time(lexical),
        xsd::DATE_TIME => is_date_time(lexical),
        xsd::G_YEAR => is_g_year(lexical),
        _ => true,
    }
}

/// True if the datatype IRI denotes a numeric XSD type.
pub fn is_numeric_datatype(datatype: &str) -> bool {
    matches!(
        datatype,
        xsd::INTEGER
            | xsd::LONG
            | xsd::INT
            | xsd::SHORT
            | xsd::BYTE
            | xsd::NON_NEGATIVE_INTEGER
            | xsd::NON_POSITIVE_INTEGER
            | xsd::POSITIVE_INTEGER
            | xsd::NEGATIVE_INTEGER
            | xsd::UNSIGNED_LONG
            | xsd::UNSIGNED_INT
            | xsd::UNSIGNED_SHORT
            | xsd::UNSIGNED_BYTE
            | xsd::DECIMAL
            | xsd::DOUBLE
            | xsd::FLOAT
    )
}

/// A numeric value with exact integer/decimal comparison where possible.
///
/// Decimals are kept as `unscaled × 10⁻ˢᶜᵃˡᵉ` so that `1.10 = 1.1` compares
/// equal and facet bounds compare exactly; doubles fall back to `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Numeric {
    /// Integers and decimals that fit `i128 × 10⁻ˢᶜᵃˡᵉ`.
    Decimal {
        /// The unscaled integer value.
        unscaled: i128,
        /// Number of decimal digits after the point.
        scale: u32,
    },
    /// `xsd:double` / `xsd:float`, and overflow fallback.
    Double(f64),
}

impl Numeric {
    /// An exact integer value.
    pub fn integer(v: i128) -> Self {
        Numeric::Decimal {
            unscaled: v,
            scale: 0,
        }
    }

    /// Parses the lexical form of a numeric literal with the given datatype.
    /// Returns `None` when the form is invalid for the datatype.
    pub fn parse(datatype: &str, lexical: &str) -> Option<Numeric> {
        if !is_numeric_datatype(datatype) || !is_valid_lexical(datatype, lexical) {
            return None;
        }
        match datatype {
            xsd::DOUBLE | xsd::FLOAT => lexical_double(lexical).map(Numeric::Double),
            xsd::DECIMAL => parse_decimal(lexical),
            _ => parse_decimal(lexical), // integer types: scale 0 path
        }
    }

    /// Extracts the numeric value of a literal, if it is numerically typed
    /// and lexically valid.
    pub fn of_literal(lit: &Literal) -> Option<Numeric> {
        Numeric::parse(lit.datatype(), lit.lexical_form())
    }

    fn as_f64(self) -> f64 {
        match self {
            Numeric::Decimal { unscaled, scale } => unscaled as f64 / 10f64.powi(scale as i32),
            Numeric::Double(d) => d,
        }
    }

    /// Total comparison across representations. Exact for decimal/decimal;
    /// decimal/double comparisons go through `f64`.
    pub fn compare(self, other: Numeric) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (
                Numeric::Decimal {
                    unscaled: a,
                    scale: sa,
                },
                Numeric::Decimal {
                    unscaled: b,
                    scale: sb,
                },
            ) => {
                // Rescale the lower-scale operand up; on overflow, fall back
                // to f64 (lexical forms that big are vanishingly rare).
                let (a, b) = if sa == sb {
                    (a, b)
                } else if sa < sb {
                    match a.checked_mul(pow10(sb - sa)?) {
                        Some(a) => (a, b),
                        None => return self.as_f64().partial_cmp(&other.as_f64()),
                    }
                } else {
                    match b.checked_mul(pow10(sa - sb)?) {
                        Some(b) => (a, b),
                        None => return self.as_f64().partial_cmp(&other.as_f64()),
                    }
                };
                Some(a.cmp(&b))
            }
            _ => self.as_f64().partial_cmp(&other.as_f64()),
        }
    }
}

fn pow10(n: u32) -> Option<i128> {
    10i128.checked_pow(n)
}

fn parse_decimal(lexical: &str) -> Option<Numeric> {
    let s = lexical.strip_prefix('+').unwrap_or(lexical);
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let (int_part, frac_part) = match s.split_once('.') {
        Some((i, f)) => (i, f),
        None => (s, ""),
    };
    let frac_part = frac_part.trim_end_matches('0');
    let digits: String = [int_part, frac_part].concat();
    let digits = digits.trim_start_matches('0');
    let unscaled: i128 = if digits.is_empty() {
        0
    } else {
        match digits.parse() {
            Ok(v) => v,
            // Too large for i128: approximate via f64.
            Err(_) => return lexical_double(lexical).map(Numeric::Double),
        }
    };
    Some(Numeric::Decimal {
        unscaled: if neg { -unscaled } else { unscaled },
        scale: frac_part.len() as u32,
    })
}

fn lexical_double(lexical: &str) -> Option<f64> {
    match lexical {
        "INF" | "+INF" => Some(f64::INFINITY),
        "-INF" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => lexical.parse().ok(),
    }
}

fn is_integer(s: &str) -> bool {
    let s = s.strip_prefix(['+', '-']).unwrap_or(s);
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
}

fn in_int_range(s: &str, lo: i128, hi: i128) -> bool {
    if !is_integer(s) {
        return false;
    }
    match s.parse::<i128>() {
        Ok(v) => (lo..=hi).contains(&v),
        Err(_) => false, // beyond i128: out of range for all bounded types
    }
}

fn is_decimal(s: &str) -> bool {
    let s = s.strip_prefix(['+', '-']).unwrap_or(s);
    match s.split_once('.') {
        Some((i, f)) => {
            (!i.is_empty() || !f.is_empty())
                && i.bytes().all(|b| b.is_ascii_digit())
                && f.bytes().all(|b| b.is_ascii_digit())
        }
        None => !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()),
    }
}

fn is_double(s: &str) -> bool {
    if matches!(s, "INF" | "+INF" | "-INF" | "NaN") {
        return true;
    }
    let s = s.strip_prefix(['+', '-']).unwrap_or(s);
    let (mantissa, exponent) = match s.split_once(['e', 'E']) {
        Some((m, e)) => (m, Some(e)),
        None => (s, None),
    };
    if !is_decimal(mantissa) {
        return false;
    }
    match exponent {
        Some(e) => is_integer(e),
        None => true,
    }
}

fn all_digits(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
}

fn is_date_fields(y: &str, m: &str, d: &str) -> bool {
    let year_ok = {
        let y = y.strip_prefix('-').unwrap_or(y);
        y.len() >= 4 && all_digits(y)
    };
    year_ok
        && m.len() == 2
        && all_digits(m)
        && (1..=12).contains(&m.parse::<u8>().unwrap_or(0))
        && d.len() == 2
        && all_digits(d)
        && (1..=31).contains(&d.parse::<u8>().unwrap_or(0))
}

/// Strips an optional timezone suffix: `Z`, `+hh:mm`, `-hh:mm`.
fn strip_timezone(s: &str) -> &str {
    if let Some(rest) = s.strip_suffix('Z') {
        return rest;
    }
    if s.len() >= 6 {
        let (head, tz) = s.split_at(s.len() - 6);
        let b = tz.as_bytes();
        if (b[0] == b'+' || b[0] == b'-')
            && b[1].is_ascii_digit()
            && b[2].is_ascii_digit()
            && b[3] == b':'
            && b[4].is_ascii_digit()
            && b[5].is_ascii_digit()
        {
            return head;
        }
    }
    s
}

fn is_date(s: &str) -> bool {
    let s = strip_timezone(s);
    // [-]YYYY-MM-DD: split from the right so negative years survive.
    let mut parts = s.rsplitn(3, '-');
    let (Some(d), Some(m), Some(y)) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    is_date_fields(y, m, d)
}

fn is_time(s: &str) -> bool {
    let s = strip_timezone(s);
    let mut it = s.splitn(3, ':');
    let (Some(h), Some(m), Some(sec)) = (it.next(), it.next(), it.next()) else {
        return false;
    };
    let (sec_int, sec_frac) = match sec.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (sec, None),
    };
    h.len() == 2
        && all_digits(h)
        && h.parse::<u8>().unwrap_or(99) <= 24
        && m.len() == 2
        && all_digits(m)
        && m.parse::<u8>().unwrap_or(99) <= 59
        && sec_int.len() == 2
        && all_digits(sec_int)
        && sec_int.parse::<u8>().unwrap_or(99) <= 59
        && sec_frac.is_none_or(all_digits)
}

fn is_date_time(s: &str) -> bool {
    match s.split_once('T') {
        // Timezone belongs to the time part; the date half must not carry one.
        Some((d, t)) => is_date_plain(d) && is_time(t),
        None => false,
    }
}

fn is_date_plain(s: &str) -> bool {
    let mut parts = s.rsplitn(3, '-');
    let (Some(d), Some(m), Some(y)) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    is_date_fields(y, m, d)
}

fn is_g_year(s: &str) -> bool {
    let s = strip_timezone(s);
    let s = s.strip_prefix('-').unwrap_or(s);
    s.len() >= 4 && all_digits(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn integer_lexicals() {
        assert!(is_valid_lexical(xsd::INTEGER, "23"));
        assert!(is_valid_lexical(xsd::INTEGER, "-23"));
        assert!(is_valid_lexical(xsd::INTEGER, "+0023"));
        assert!(!is_valid_lexical(xsd::INTEGER, "23.0"));
        assert!(!is_valid_lexical(xsd::INTEGER, ""));
        assert!(!is_valid_lexical(xsd::INTEGER, "twenty"));
        assert!(!is_valid_lexical(xsd::INTEGER, "2 3"));
    }

    #[test]
    fn bounded_integer_ranges() {
        assert!(is_valid_lexical(xsd::BYTE, "127"));
        assert!(!is_valid_lexical(xsd::BYTE, "128"));
        assert!(is_valid_lexical(xsd::BYTE, "-128"));
        assert!(!is_valid_lexical(xsd::BYTE, "-129"));
        assert!(is_valid_lexical(xsd::UNSIGNED_BYTE, "255"));
        assert!(!is_valid_lexical(xsd::UNSIGNED_BYTE, "-1"));
        assert!(is_valid_lexical(xsd::NON_NEGATIVE_INTEGER, "0"));
        assert!(!is_valid_lexical(xsd::NEGATIVE_INTEGER, "0"));
        assert!(is_valid_lexical(xsd::POSITIVE_INTEGER, "1"));
    }

    #[test]
    fn decimal_lexicals() {
        assert!(is_valid_lexical(xsd::DECIMAL, "1.5"));
        assert!(is_valid_lexical(xsd::DECIMAL, ".5"));
        assert!(is_valid_lexical(xsd::DECIMAL, "5."));
        assert!(is_valid_lexical(xsd::DECIMAL, "-0.002"));
        assert!(is_valid_lexical(xsd::DECIMAL, "42"));
        assert!(!is_valid_lexical(xsd::DECIMAL, "."));
        assert!(!is_valid_lexical(xsd::DECIMAL, "1.5e3"));
        assert!(!is_valid_lexical(xsd::DECIMAL, "1,5"));
    }

    #[test]
    fn double_lexicals() {
        assert!(is_valid_lexical(xsd::DOUBLE, "1.5E3"));
        assert!(is_valid_lexical(xsd::DOUBLE, "-1.5e-3"));
        assert!(is_valid_lexical(xsd::DOUBLE, "INF"));
        assert!(is_valid_lexical(xsd::DOUBLE, "-INF"));
        assert!(is_valid_lexical(xsd::DOUBLE, "NaN"));
        assert!(is_valid_lexical(xsd::DOUBLE, "4.2"));
        assert!(!is_valid_lexical(xsd::DOUBLE, "1.5E"));
        assert!(!is_valid_lexical(xsd::DOUBLE, "E3"));
    }

    #[test]
    fn boolean_lexicals() {
        assert!(is_valid_lexical(xsd::BOOLEAN, "true"));
        assert!(is_valid_lexical(xsd::BOOLEAN, "0"));
        assert!(!is_valid_lexical(xsd::BOOLEAN, "True"));
        assert!(!is_valid_lexical(xsd::BOOLEAN, "yes"));
    }

    #[test]
    fn date_lexicals() {
        assert!(is_valid_lexical(xsd::DATE, "2015-03-27"));
        assert!(is_valid_lexical(xsd::DATE, "2015-03-27Z"));
        assert!(is_valid_lexical(xsd::DATE, "2015-03-27+01:00"));
        assert!(is_valid_lexical(xsd::DATE, "-0044-03-15"));
        assert!(!is_valid_lexical(xsd::DATE, "2015-13-27"));
        assert!(!is_valid_lexical(xsd::DATE, "2015-3-27"));
        assert!(!is_valid_lexical(xsd::DATE, "27-03-2015"));
    }

    #[test]
    fn time_and_datetime_lexicals() {
        assert!(is_valid_lexical(xsd::TIME, "13:20:00"));
        assert!(is_valid_lexical(xsd::TIME, "13:20:00.5"));
        assert!(is_valid_lexical(xsd::TIME, "13:20:00Z"));
        assert!(!is_valid_lexical(xsd::TIME, "25:20:00"));
        assert!(is_valid_lexical(xsd::DATE_TIME, "2015-03-27T13:20:00"));
        assert!(is_valid_lexical(
            xsd::DATE_TIME,
            "2015-03-27T13:20:00-05:00"
        ));
        assert!(!is_valid_lexical(xsd::DATE_TIME, "2015-03-27 13:20:00"));
        assert!(!is_valid_lexical(xsd::DATE_TIME, "2015-03-27"));
    }

    #[test]
    fn g_year() {
        assert!(is_valid_lexical(xsd::G_YEAR, "2015"));
        assert!(is_valid_lexical(xsd::G_YEAR, "-0100"));
        assert!(!is_valid_lexical(xsd::G_YEAR, "15"));
    }

    #[test]
    fn unknown_datatype_is_permissive() {
        assert!(is_valid_lexical("http://example.org/mytype", "whatever"));
    }

    #[test]
    fn string_always_valid() {
        assert!(is_valid_lexical(xsd::STRING, ""));
        assert!(is_valid_lexical(xsd::STRING, "any\ntext"));
    }

    #[test]
    fn numeric_parse_and_compare_integers() {
        let a = Numeric::parse(xsd::INTEGER, "23").unwrap();
        let b = Numeric::parse(xsd::INTEGER, "34").unwrap();
        assert_eq!(a.compare(b), Some(Ordering::Less));
        assert_eq!(b.compare(a), Some(Ordering::Greater));
        assert_eq!(a.compare(a), Some(Ordering::Equal));
    }

    #[test]
    fn decimal_trailing_zero_equality() {
        let a = Numeric::parse(xsd::DECIMAL, "1.10").unwrap();
        let b = Numeric::parse(xsd::DECIMAL, "1.1").unwrap();
        assert_eq!(a.compare(b), Some(Ordering::Equal));
    }

    #[test]
    fn decimal_vs_integer_compare() {
        let a = Numeric::parse(xsd::DECIMAL, "2.5").unwrap();
        let b = Numeric::parse(xsd::INTEGER, "2").unwrap();
        let c = Numeric::parse(xsd::INTEGER, "3").unwrap();
        assert_eq!(a.compare(b), Some(Ordering::Greater));
        assert_eq!(a.compare(c), Some(Ordering::Less));
    }

    #[test]
    fn double_compares_with_decimal() {
        let a = Numeric::parse(xsd::DOUBLE, "2.5E0").unwrap();
        let b = Numeric::parse(xsd::DECIMAL, "2.5").unwrap();
        assert_eq!(a.compare(b), Some(Ordering::Equal));
    }

    #[test]
    fn nan_compares_as_none() {
        let a = Numeric::parse(xsd::DOUBLE, "NaN").unwrap();
        let b = Numeric::parse(xsd::INTEGER, "1").unwrap();
        assert_eq!(a.compare(b), None);
    }

    #[test]
    fn negative_decimal_parsing() {
        let a = Numeric::parse(xsd::DECIMAL, "-0.5").unwrap();
        let zero = Numeric::integer(0);
        assert_eq!(a.compare(zero), Some(Ordering::Less));
    }

    #[test]
    fn invalid_lexical_yields_no_numeric() {
        assert!(Numeric::parse(xsd::INTEGER, "1.5").is_none());
        assert!(Numeric::parse(xsd::STRING, "1").is_none());
    }

    #[test]
    fn huge_decimal_falls_back_to_double() {
        let big = "9".repeat(60);
        let n = Numeric::parse(xsd::DECIMAL, &big).unwrap();
        assert!(matches!(n, Numeric::Double(_)));
        let small = Numeric::integer(1);
        assert_eq!(n.compare(small), Some(Ordering::Greater));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Ordering;

    fn arb_decimal() -> impl Strategy<Value = Numeric> {
        (any::<i64>(), 0u32..6).prop_map(|(unscaled, scale)| Numeric::Decimal {
            unscaled: unscaled as i128,
            scale,
        })
    }

    proptest! {
        /// compare() is antisymmetric on exact decimals.
        #[test]
        fn compare_antisymmetric(a in arb_decimal(), b in arb_decimal()) {
            let ab = a.compare(b).unwrap();
            let ba = b.compare(a).unwrap();
            prop_assert_eq!(ab, ba.reverse());
        }

        /// compare() is transitive on exact decimals.
        #[test]
        fn compare_transitive(a in arb_decimal(), b in arb_decimal(), c in arb_decimal()) {
            if a.compare(b).unwrap() != Ordering::Greater
                && b.compare(c).unwrap() != Ordering::Greater
            {
                prop_assert_ne!(a.compare(c).unwrap(), Ordering::Greater);
            }
        }

        /// Parsing a rendered decimal compares equal to the original.
        #[test]
        fn parse_render_equivalence(unscaled in any::<i32>(), scale in 0u32..5) {
            let n = Numeric::Decimal { unscaled: unscaled as i128, scale };
            let lex = {
                let neg = unscaled < 0;
                let digits = (unscaled as i64).unsigned_abs().to_string();
                let scale = scale as usize;
                let (int, frac) = if digits.len() > scale {
                    let (i, f) = digits.split_at(digits.len() - scale);
                    (i.to_string(), f.to_string())
                } else {
                    ("0".to_string(), format!("{digits:0>scale$}"))
                };
                if scale == 0 {
                    format!("{}{int}", if neg { "-" } else { "" })
                } else {
                    format!("{}{int}.{frac}", if neg { "-" } else { "" })
                }
            };
            let reparsed = Numeric::parse(crate::vocab::xsd::DECIMAL, &lex)
                .unwrap_or_else(|| panic!("lexical {lex:?} must parse"));
            prop_assert_eq!(n.compare(reparsed), Some(Ordering::Equal), "lex {}", lex);
        }

        /// Lexical validity for integers matches a simple regex-free spec.
        #[test]
        fn integer_lexical_spec(s in "[+-]?[0-9a-z]{0,6}") {
            let expected = {
                let t = s.strip_prefix(['+', '-']).unwrap_or(&s);
                !t.is_empty() && t.bytes().all(|b| b.is_ascii_digit())
            };
            prop_assert_eq!(is_valid_lexical(crate::vocab::xsd::INTEGER, &s), expected);
        }
    }
}

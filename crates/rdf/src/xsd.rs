//! XSD datatype support: lexical-form validation and numeric value
//! comparison.
//!
//! The paper treats datatypes as value subsets of `L` ("we can consider
//! xsd:int and xsd:string as subsets of L", Example 6). Membership of a
//! literal in such a subset is decided here by checking (a) the declared
//! datatype IRI and (b) that the lexical form is valid for it. Numeric
//! values additionally support exact ordering for the ShEx numeric facets
//! (`MININCLUSIVE` etc.).

use crate::term::Literal;
use crate::vocab::{rdf, xsd};

/// Checks whether `lexical` is a valid lexical form for the datatype IRI.
/// Unknown datatypes are treated permissively (any lexical form is valid),
/// matching the open-world handling of user-defined datatypes.
pub fn is_valid_lexical(datatype: &str, lexical: &str) -> bool {
    match datatype {
        xsd::STRING | xsd::ANY_URI | rdf::LANG_STRING => true,
        xsd::BOOLEAN => matches!(lexical, "true" | "false" | "1" | "0"),
        xsd::INTEGER => is_integer(lexical),
        xsd::LONG => in_int_range(lexical, i64::MIN as i128, i64::MAX as i128),
        xsd::INT => in_int_range(lexical, i32::MIN as i128, i32::MAX as i128),
        xsd::SHORT => in_int_range(lexical, i16::MIN as i128, i16::MAX as i128),
        xsd::BYTE => in_int_range(lexical, i8::MIN as i128, i8::MAX as i128),
        xsd::NON_NEGATIVE_INTEGER => in_int_range(lexical, 0, i128::MAX),
        xsd::NON_POSITIVE_INTEGER => in_int_range(lexical, i128::MIN, 0),
        xsd::POSITIVE_INTEGER => in_int_range(lexical, 1, i128::MAX),
        xsd::NEGATIVE_INTEGER => in_int_range(lexical, i128::MIN, -1),
        xsd::UNSIGNED_LONG => in_int_range(lexical, 0, u64::MAX as i128),
        xsd::UNSIGNED_INT => in_int_range(lexical, 0, u32::MAX as i128),
        xsd::UNSIGNED_SHORT => in_int_range(lexical, 0, u16::MAX as i128),
        xsd::UNSIGNED_BYTE => in_int_range(lexical, 0, u8::MAX as i128),
        xsd::DECIMAL => is_decimal(lexical),
        xsd::DOUBLE | xsd::FLOAT => is_double(lexical),
        xsd::DATE => is_date(lexical),
        xsd::TIME => is_time(lexical),
        xsd::DATE_TIME => is_date_time(lexical),
        xsd::G_YEAR => is_g_year(lexical),
        _ => true,
    }
}

/// True if the datatype IRI denotes a numeric XSD type.
pub fn is_numeric_datatype(datatype: &str) -> bool {
    matches!(
        datatype,
        xsd::INTEGER
            | xsd::LONG
            | xsd::INT
            | xsd::SHORT
            | xsd::BYTE
            | xsd::NON_NEGATIVE_INTEGER
            | xsd::NON_POSITIVE_INTEGER
            | xsd::POSITIVE_INTEGER
            | xsd::NEGATIVE_INTEGER
            | xsd::UNSIGNED_LONG
            | xsd::UNSIGNED_INT
            | xsd::UNSIGNED_SHORT
            | xsd::UNSIGNED_BYTE
            | xsd::DECIMAL
            | xsd::DOUBLE
            | xsd::FLOAT
    )
}

/// A numeric value with exact integer/decimal comparison where possible.
///
/// Decimals are kept as `unscaled × 10⁻ˢᶜᵃˡᵉ` so that `1.10 = 1.1` compares
/// equal and facet bounds compare exactly; doubles fall back to `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Numeric {
    /// Integers and decimals that fit `i128 × 10⁻ˢᶜᵃˡᵉ`.
    Decimal {
        /// The unscaled integer value.
        unscaled: i128,
        /// Number of decimal digits after the point.
        scale: u32,
    },
    /// `xsd:double` / `xsd:float`, and overflow fallback.
    Double(f64),
}

impl Numeric {
    /// An exact integer value.
    pub fn integer(v: i128) -> Self {
        Numeric::Decimal {
            unscaled: v,
            scale: 0,
        }
    }

    /// Parses the lexical form of a numeric literal with the given datatype.
    /// Returns `None` when the form is invalid for the datatype.
    pub fn parse(datatype: &str, lexical: &str) -> Option<Numeric> {
        if !is_numeric_datatype(datatype) || !is_valid_lexical(datatype, lexical) {
            return None;
        }
        match datatype {
            xsd::DOUBLE | xsd::FLOAT => lexical_double(lexical).map(Numeric::Double),
            xsd::DECIMAL => parse_decimal(lexical),
            _ => parse_decimal(lexical), // integer types: scale 0 path
        }
    }

    /// Extracts the numeric value of a literal, if it is numerically typed
    /// and lexically valid.
    pub fn of_literal(lit: &Literal) -> Option<Numeric> {
        Numeric::parse(lit.datatype(), lit.lexical_form())
    }

    /// Comparison across representations. Decimal/decimal is always exact;
    /// decimal/double is exact (the double's value `m·2^e` is compared as a
    /// rational against `unscaled·10^-scale` with 256-bit widening) except
    /// for decimals carrying more than 38 fractional digits, which cannot
    /// carry 39 significant digits anyway and fall back to `f64`. `None`
    /// only for NaN.
    pub fn compare(self, other: Numeric) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        match (self, other) {
            (
                Numeric::Decimal {
                    unscaled: a,
                    scale: sa,
                },
                Numeric::Decimal {
                    unscaled: b,
                    scale: sb,
                },
            ) => Some(cmp_decimals(a, sa, b, sb)),
            (
                Numeric::Decimal {
                    unscaled: a,
                    scale: sa,
                },
                Numeric::Double(d),
            ) => cmp_decimal_double(a, sa, d),
            (
                Numeric::Double(d),
                Numeric::Decimal {
                    unscaled: a,
                    scale: sa,
                },
            ) => cmp_decimal_double(a, sa, d).map(Ordering::reverse),
            (Numeric::Double(x), Numeric::Double(y)) => x.partial_cmp(&y),
        }
    }
}

fn pow10(n: u32) -> Option<i128> {
    10i128.checked_pow(n)
}

/// `10^n` as `u128`; `Some` for all `n ≤ 38`.
fn pow10u(n: u32) -> Option<u128> {
    10u128.checked_pow(n)
}

/// Exact total order on `a·10^-sa` vs `b·10^-sb`.
fn cmp_decimals(a: i128, sa: u32, b: i128, sb: u32) -> std::cmp::Ordering {
    if sa == sb {
        return a.cmp(&b);
    }
    // Fast path: rescale the lower-scale operand up while it fits i128.
    if sa < sb {
        if let Some(aw) = pow10(sb - sa).and_then(|p| a.checked_mul(p)) {
            return aw.cmp(&b);
        }
    } else if let Some(bw) = pow10(sa - sb).and_then(|p| b.checked_mul(p)) {
        return a.cmp(&bw);
    }
    // Slow path (rescale overflowed, or scale gap > 38): compare signs,
    // then magnitudes via 256-bit cross-multiplication — never approximate.
    let (sga, sgb) = (a.signum(), b.signum());
    if sga != sgb {
        return sga.cmp(&sgb);
    }
    if sga == 0 {
        return std::cmp::Ordering::Equal;
    }
    let ord = cmp_dec_magnitudes(a.unsigned_abs(), sa, b.unsigned_abs(), sb);
    if sga < 0 {
        ord.reverse()
    } else {
        ord
    }
}

/// `a/10^sa` vs `b/10^sb` for positive magnitudes, exactly.
fn cmp_dec_magnitudes(a: u128, sa: u32, b: u128, sb: u32) -> std::cmp::Ordering {
    // Cross-multiply after cancelling the common power of ten:
    // a/10^sa ? b/10^sb  ⇔  a·10^(sb-m) ? b·10^(sa-m),  m = min(sa, sb).
    let m = sa.min(sb);
    let (ea, eb) = (sb - m, sa - m);
    // A 10^39 factor exceeds any i128 magnitude (< 1.8·10^38), so the
    // scaled-up side wins outright.
    if ea >= 39 {
        return std::cmp::Ordering::Greater;
    }
    if eb >= 39 {
        return std::cmp::Ordering::Less;
    }
    let lhs = wide_mul(a, pow10u(ea).expect("ea <= 38"));
    let rhs = wide_mul(b, pow10u(eb).expect("eb <= 38"));
    lhs.cmp(&rhs)
}

/// Exact decimal-vs-double comparison (decimal on the left). `None` only
/// for NaN.
fn cmp_decimal_double(unscaled: i128, scale: u32, d: f64) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    if d.is_nan() {
        return None;
    }
    if d.is_infinite() {
        return Some(if d > 0.0 {
            Ordering::Less
        } else {
            Ordering::Greater
        });
    }
    let sga = unscaled.signum() as i32;
    let sgd = if d > 0.0 {
        1
    } else if d < 0.0 {
        -1
    } else {
        0
    };
    if sga != sgd {
        return Some(sga.cmp(&sgd));
    }
    if sga == 0 {
        return Some(Ordering::Equal);
    }
    let ord = cmp_dec_f64_magnitudes(unscaled.unsigned_abs(), scale, d.abs());
    Some(if sga < 0 { ord.reverse() } else { ord })
}

/// `a/10^s` vs finite `d`, both strictly positive. Exact for `s ≤ 38`
/// (after stripping trailing zeros); beyond that the decimal has fewer
/// than one significant digit per fractional place and we approximate.
fn cmp_dec_f64_magnitudes(mut a: u128, mut s: u32, d: f64) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    while s > 0 && a.is_multiple_of(10) {
        a /= 10;
        s -= 1;
    }
    let Some(p10) = pow10u(s) else {
        // > 38 fractional digits on a nonzero unscaled value: only
        // reachable via forms like 0.00…01. Approximate via f64 — the
        // magnitudes involved are below 10^-38.
        let approx = a as f64 / 10f64.powi(s as i32);
        return approx.partial_cmp(&d).unwrap_or(Ordering::Equal);
    };
    // Decompose d = m·2^e exactly (m odd) from the IEEE-754 bits.
    let bits = d.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    let (m, e) = if biased == 0 {
        (frac as u128, -1074i64)
    } else {
        ((frac | (1 << 52)) as u128, biased - 1075)
    };
    let tz = m.trailing_zeros(); // m > 0 since d > 0
    let (m, e) = (m >> tz, e + tz as i64);
    if e >= 0 {
        // d is an exact integer m·2^e: compare a vs (m·2^e)·10^s.
        if e as u32 > m.leading_zeros() {
            return Ordering::Less; // d ≥ 2^128 > any i128 magnitude
        }
        match (m << e).checked_mul(p10) {
            Some(rhs) => a.cmp(&rhs),
            None => Ordering::Less,
        }
    } else {
        // d = m/2^k: compare a·2^k vs m·10^s in 256-bit space.
        let k = (-e) as u32;
        match wide_shl(a, k) {
            Some(lhs) => lhs.cmp(&wide_mul(m, p10)),
            // a·2^k ≥ 2^256 while m·10^s < 2^53·2^127 < 2^256.
            None => Ordering::Greater,
        }
    }
}

/// Full 256-bit product of two u128s as a `(hi, lo)` pair; tuple order is
/// numeric order.
fn wide_mul(x: u128, y: u128) -> (u128, u128) {
    const MASK: u128 = (1 << 64) - 1;
    let (x1, x0) = (x >> 64, x & MASK);
    let (y1, y0) = (y >> 64, y & MASK);
    let p00 = x0 * y0;
    let p01 = x0 * y1;
    let p10 = x1 * y0;
    let mid = (p00 >> 64) + (p01 & MASK) + (p10 & MASK);
    let lo = (p00 & MASK) | (mid << 64);
    let hi = x1 * y1 + (p01 >> 64) + (p10 >> 64) + (mid >> 64);
    (hi, lo)
}

/// `x·2^sh` as a 256-bit `(hi, lo)` pair, or `None` when it exceeds 2^256.
fn wide_shl(x: u128, sh: u32) -> Option<(u128, u128)> {
    if x == 0 {
        return Some((0, 0));
    }
    let bits = 128 - x.leading_zeros();
    if bits + sh > 256 {
        return None;
    }
    Some(if sh >= 128 {
        (x << (sh - 128), 0)
    } else if sh == 0 {
        (0, x)
    } else {
        (x >> (128 - sh), x << sh)
    })
}

fn parse_decimal(lexical: &str) -> Option<Numeric> {
    let s = lexical.strip_prefix('+').unwrap_or(lexical);
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let (int_part, frac_part) = match s.split_once('.') {
        Some((i, f)) => (i, f),
        None => (s, ""),
    };
    let frac_part = frac_part.trim_end_matches('0');
    let digits: String = [int_part, frac_part].concat();
    let digits = digits.trim_start_matches('0');
    let unscaled: i128 = if digits.is_empty() {
        0
    } else {
        match digits.parse() {
            Ok(v) => v,
            // Too large for i128: approximate via f64.
            Err(_) => return lexical_double(lexical).map(Numeric::Double),
        }
    };
    Some(Numeric::Decimal {
        unscaled: if neg { -unscaled } else { unscaled },
        scale: frac_part.len() as u32,
    })
}

fn lexical_double(lexical: &str) -> Option<f64> {
    match lexical {
        "INF" | "+INF" => Some(f64::INFINITY),
        "-INF" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => lexical.parse().ok(),
    }
}

fn is_integer(s: &str) -> bool {
    let s = s.strip_prefix(['+', '-']).unwrap_or(s);
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
}

fn in_int_range(s: &str, lo: i128, hi: i128) -> bool {
    if !is_integer(s) {
        return false;
    }
    match s.parse::<i128>() {
        Ok(v) => (lo..=hi).contains(&v),
        Err(_) => false, // beyond i128: out of range for all bounded types
    }
}

fn is_decimal(s: &str) -> bool {
    let s = s.strip_prefix(['+', '-']).unwrap_or(s);
    match s.split_once('.') {
        Some((i, f)) => {
            (!i.is_empty() || !f.is_empty())
                && i.bytes().all(|b| b.is_ascii_digit())
                && f.bytes().all(|b| b.is_ascii_digit())
        }
        None => !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()),
    }
}

fn is_double(s: &str) -> bool {
    if matches!(s, "INF" | "+INF" | "-INF" | "NaN") {
        return true;
    }
    let s = s.strip_prefix(['+', '-']).unwrap_or(s);
    let (mantissa, exponent) = match s.split_once(['e', 'E']) {
        Some((m, e)) => (m, Some(e)),
        None => (s, None),
    };
    if !is_decimal(mantissa) {
        return false;
    }
    match exponent {
        Some(e) => is_integer(e),
        None => true,
    }
}

fn all_digits(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
}

fn is_date_fields(y: &str, m: &str, d: &str) -> bool {
    let year_ok = {
        let y = y.strip_prefix('-').unwrap_or(y);
        y.len() >= 4 && all_digits(y)
    };
    year_ok
        && m.len() == 2
        && all_digits(m)
        && (1..=12).contains(&m.parse::<u8>().unwrap_or(0))
        && d.len() == 2
        && all_digits(d)
        && (1..=31).contains(&d.parse::<u8>().unwrap_or(0))
}

/// Strips an optional timezone suffix: `Z`, `+hh:mm`, `-hh:mm`.
fn strip_timezone(s: &str) -> &str {
    if let Some(rest) = s.strip_suffix('Z') {
        return rest;
    }
    if s.len() >= 6 {
        let (head, tz) = s.split_at(s.len() - 6);
        let b = tz.as_bytes();
        if (b[0] == b'+' || b[0] == b'-')
            && b[1].is_ascii_digit()
            && b[2].is_ascii_digit()
            && b[3] == b':'
            && b[4].is_ascii_digit()
            && b[5].is_ascii_digit()
        {
            return head;
        }
    }
    s
}

fn is_date(s: &str) -> bool {
    let s = strip_timezone(s);
    // [-]YYYY-MM-DD: split from the right so negative years survive.
    let mut parts = s.rsplitn(3, '-');
    let (Some(d), Some(m), Some(y)) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    is_date_fields(y, m, d)
}

fn is_time(s: &str) -> bool {
    let s = strip_timezone(s);
    let mut it = s.splitn(3, ':');
    let (Some(h), Some(m), Some(sec)) = (it.next(), it.next(), it.next()) else {
        return false;
    };
    let (sec_int, sec_frac) = match sec.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (sec, None),
    };
    h.len() == 2
        && all_digits(h)
        && h.parse::<u8>().unwrap_or(99) <= 24
        && m.len() == 2
        && all_digits(m)
        && m.parse::<u8>().unwrap_or(99) <= 59
        && sec_int.len() == 2
        && all_digits(sec_int)
        && sec_int.parse::<u8>().unwrap_or(99) <= 59
        && sec_frac.is_none_or(all_digits)
}

fn is_date_time(s: &str) -> bool {
    match s.split_once('T') {
        // Timezone belongs to the time part; the date half must not carry one.
        Some((d, t)) => is_date_plain(d) && is_time(t),
        None => false,
    }
}

fn is_date_plain(s: &str) -> bool {
    let mut parts = s.rsplitn(3, '-');
    let (Some(d), Some(m), Some(y)) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    is_date_fields(y, m, d)
}

fn is_g_year(s: &str) -> bool {
    let s = strip_timezone(s);
    let s = s.strip_prefix('-').unwrap_or(s);
    s.len() >= 4 && all_digits(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn integer_lexicals() {
        assert!(is_valid_lexical(xsd::INTEGER, "23"));
        assert!(is_valid_lexical(xsd::INTEGER, "-23"));
        assert!(is_valid_lexical(xsd::INTEGER, "+0023"));
        assert!(!is_valid_lexical(xsd::INTEGER, "23.0"));
        assert!(!is_valid_lexical(xsd::INTEGER, ""));
        assert!(!is_valid_lexical(xsd::INTEGER, "twenty"));
        assert!(!is_valid_lexical(xsd::INTEGER, "2 3"));
    }

    #[test]
    fn bounded_integer_ranges() {
        assert!(is_valid_lexical(xsd::BYTE, "127"));
        assert!(!is_valid_lexical(xsd::BYTE, "128"));
        assert!(is_valid_lexical(xsd::BYTE, "-128"));
        assert!(!is_valid_lexical(xsd::BYTE, "-129"));
        assert!(is_valid_lexical(xsd::UNSIGNED_BYTE, "255"));
        assert!(!is_valid_lexical(xsd::UNSIGNED_BYTE, "-1"));
        assert!(is_valid_lexical(xsd::NON_NEGATIVE_INTEGER, "0"));
        assert!(!is_valid_lexical(xsd::NEGATIVE_INTEGER, "0"));
        assert!(is_valid_lexical(xsd::POSITIVE_INTEGER, "1"));
    }

    #[test]
    fn decimal_lexicals() {
        assert!(is_valid_lexical(xsd::DECIMAL, "1.5"));
        assert!(is_valid_lexical(xsd::DECIMAL, ".5"));
        assert!(is_valid_lexical(xsd::DECIMAL, "5."));
        assert!(is_valid_lexical(xsd::DECIMAL, "-0.002"));
        assert!(is_valid_lexical(xsd::DECIMAL, "42"));
        assert!(!is_valid_lexical(xsd::DECIMAL, "."));
        assert!(!is_valid_lexical(xsd::DECIMAL, "1.5e3"));
        assert!(!is_valid_lexical(xsd::DECIMAL, "1,5"));
    }

    #[test]
    fn double_lexicals() {
        assert!(is_valid_lexical(xsd::DOUBLE, "1.5E3"));
        assert!(is_valid_lexical(xsd::DOUBLE, "-1.5e-3"));
        assert!(is_valid_lexical(xsd::DOUBLE, "INF"));
        assert!(is_valid_lexical(xsd::DOUBLE, "-INF"));
        assert!(is_valid_lexical(xsd::DOUBLE, "NaN"));
        assert!(is_valid_lexical(xsd::DOUBLE, "4.2"));
        assert!(!is_valid_lexical(xsd::DOUBLE, "1.5E"));
        assert!(!is_valid_lexical(xsd::DOUBLE, "E3"));
    }

    #[test]
    fn boolean_lexicals() {
        assert!(is_valid_lexical(xsd::BOOLEAN, "true"));
        assert!(is_valid_lexical(xsd::BOOLEAN, "0"));
        assert!(!is_valid_lexical(xsd::BOOLEAN, "True"));
        assert!(!is_valid_lexical(xsd::BOOLEAN, "yes"));
    }

    #[test]
    fn date_lexicals() {
        assert!(is_valid_lexical(xsd::DATE, "2015-03-27"));
        assert!(is_valid_lexical(xsd::DATE, "2015-03-27Z"));
        assert!(is_valid_lexical(xsd::DATE, "2015-03-27+01:00"));
        assert!(is_valid_lexical(xsd::DATE, "-0044-03-15"));
        assert!(!is_valid_lexical(xsd::DATE, "2015-13-27"));
        assert!(!is_valid_lexical(xsd::DATE, "2015-3-27"));
        assert!(!is_valid_lexical(xsd::DATE, "27-03-2015"));
    }

    #[test]
    fn time_and_datetime_lexicals() {
        assert!(is_valid_lexical(xsd::TIME, "13:20:00"));
        assert!(is_valid_lexical(xsd::TIME, "13:20:00.5"));
        assert!(is_valid_lexical(xsd::TIME, "13:20:00Z"));
        assert!(!is_valid_lexical(xsd::TIME, "25:20:00"));
        assert!(is_valid_lexical(xsd::DATE_TIME, "2015-03-27T13:20:00"));
        assert!(is_valid_lexical(
            xsd::DATE_TIME,
            "2015-03-27T13:20:00-05:00"
        ));
        assert!(!is_valid_lexical(xsd::DATE_TIME, "2015-03-27 13:20:00"));
        assert!(!is_valid_lexical(xsd::DATE_TIME, "2015-03-27"));
    }

    #[test]
    fn g_year() {
        assert!(is_valid_lexical(xsd::G_YEAR, "2015"));
        assert!(is_valid_lexical(xsd::G_YEAR, "-0100"));
        assert!(!is_valid_lexical(xsd::G_YEAR, "15"));
    }

    #[test]
    fn unknown_datatype_is_permissive() {
        assert!(is_valid_lexical("http://example.org/mytype", "whatever"));
    }

    #[test]
    fn string_always_valid() {
        assert!(is_valid_lexical(xsd::STRING, ""));
        assert!(is_valid_lexical(xsd::STRING, "any\ntext"));
    }

    #[test]
    fn numeric_parse_and_compare_integers() {
        let a = Numeric::parse(xsd::INTEGER, "23").unwrap();
        let b = Numeric::parse(xsd::INTEGER, "34").unwrap();
        assert_eq!(a.compare(b), Some(Ordering::Less));
        assert_eq!(b.compare(a), Some(Ordering::Greater));
        assert_eq!(a.compare(a), Some(Ordering::Equal));
    }

    #[test]
    fn decimal_trailing_zero_equality() {
        let a = Numeric::parse(xsd::DECIMAL, "1.10").unwrap();
        let b = Numeric::parse(xsd::DECIMAL, "1.1").unwrap();
        assert_eq!(a.compare(b), Some(Ordering::Equal));
    }

    #[test]
    fn decimal_vs_integer_compare() {
        let a = Numeric::parse(xsd::DECIMAL, "2.5").unwrap();
        let b = Numeric::parse(xsd::INTEGER, "2").unwrap();
        let c = Numeric::parse(xsd::INTEGER, "3").unwrap();
        assert_eq!(a.compare(b), Some(Ordering::Greater));
        assert_eq!(a.compare(c), Some(Ordering::Less));
    }

    #[test]
    fn double_compares_with_decimal() {
        let a = Numeric::parse(xsd::DOUBLE, "2.5E0").unwrap();
        let b = Numeric::parse(xsd::DECIMAL, "2.5").unwrap();
        assert_eq!(a.compare(b), Some(Ordering::Equal));
    }

    #[test]
    fn nan_compares_as_none() {
        let a = Numeric::parse(xsd::DOUBLE, "NaN").unwrap();
        let b = Numeric::parse(xsd::INTEGER, "1").unwrap();
        assert_eq!(a.compare(b), None);
    }

    #[test]
    fn negative_decimal_parsing() {
        let a = Numeric::parse(xsd::DECIMAL, "-0.5").unwrap();
        let zero = Numeric::integer(0);
        assert_eq!(a.compare(zero), Some(Ordering::Less));
    }

    #[test]
    fn invalid_lexical_yields_no_numeric() {
        assert!(Numeric::parse(xsd::INTEGER, "1.5").is_none());
        assert!(Numeric::parse(xsd::STRING, "1").is_none());
    }

    /// Regression: mixed decimal/double comparison used to round-trip the
    /// decimal through `i128 as f64`, collapsing everything beyond 2^53.
    /// 10000000000000001 vs 1.0e16 compared `Equal` pre-fix.
    #[test]
    fn decimal_double_exact_beyond_2_53() {
        let dec = Numeric::parse(xsd::DECIMAL, "10000000000000001").unwrap();
        let dbl = Numeric::parse(xsd::DOUBLE, "1.0e16").unwrap();
        assert_eq!(dec.compare(dbl), Some(Ordering::Greater));
        assert_eq!(dbl.compare(dec), Some(Ordering::Less));
    }

    /// The 2^53 boundary itself: equality only where the double's value
    /// really coincides, strict orderings one unit either side.
    #[test]
    fn decimal_double_2_53_boundary() {
        let two_53 = 1i128 << 53;
        let dbl = Numeric::Double(9007199254740992.0); // 2^53 exactly
        assert_eq!(Numeric::integer(two_53).compare(dbl), Some(Ordering::Equal));
        assert_eq!(
            Numeric::integer(two_53 + 1).compare(dbl),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Numeric::integer(two_53 - 1).compare(dbl),
            Some(Ordering::Less)
        );
    }

    /// Decimal-vs-double comparison is exact, not rounded: the double
    /// literal 0.1 is slightly above the decimal 0.1.
    #[test]
    fn decimal_double_tenth_is_not_equal() {
        let dec = Numeric::parse(xsd::DECIMAL, "0.1").unwrap();
        let dbl = Numeric::parse(xsd::DOUBLE, "0.1").unwrap();
        assert_eq!(dec.compare(dbl), Some(Ordering::Less));
        let dbl_quarter = Numeric::parse(xsd::DOUBLE, "0.25").unwrap();
        let dec_quarter = Numeric::parse(xsd::DECIMAL, "0.25").unwrap();
        assert_eq!(dec_quarter.compare(dbl_quarter), Some(Ordering::Equal));
    }

    /// Regression: a scale gap > 38 made `pow10` return `None`, which
    /// `compare` leaked as "incomparable" instead of falling back.
    #[test]
    fn decimal_scale_gap_over_38_is_comparable() {
        // 40 zeros then a 1: scale 41, unscaled 1.
        let lex = format!("0.{}1", "0".repeat(40));
        let tiny = Numeric::parse(xsd::DECIMAL, &lex).unwrap();
        assert_eq!(
            tiny,
            Numeric::Decimal {
                unscaled: 1,
                scale: 41
            }
        );
        let one = Numeric::parse(xsd::INTEGER, "1").unwrap();
        assert_eq!(one.compare(tiny), Some(Ordering::Greater));
        assert_eq!(tiny.compare(one), Some(Ordering::Less));
        assert_eq!(tiny.compare(tiny), Some(Ordering::Equal));
        let negative = Numeric::Decimal {
            unscaled: -1,
            scale: 41,
        };
        assert_eq!(negative.compare(tiny), Some(Ordering::Less));
    }

    /// Decimal/decimal rescale overflow takes the exact wide path, not an
    /// f64 approximation.
    #[test]
    fn decimal_rescale_overflow_stays_exact() {
        // a = i128::MAX at scale 0 vs b = i128::MAX·10^-1 + ε territory:
        // rescaling a by 10 overflows i128.
        let a = Numeric::Decimal {
            unscaled: i128::MAX,
            scale: 0,
        };
        let b = Numeric::Decimal {
            unscaled: i128::MAX,
            scale: 1,
        };
        assert_eq!(a.compare(b), Some(Ordering::Greater));
        assert_eq!(b.compare(a), Some(Ordering::Less));
        assert_eq!(a.compare(a), Some(Ordering::Equal));
    }

    #[test]
    fn infinities_compare_against_decimals() {
        let inf = Numeric::parse(xsd::DOUBLE, "INF").unwrap();
        let ninf = Numeric::parse(xsd::DOUBLE, "-INF").unwrap();
        let big = Numeric::Decimal {
            unscaled: i128::MAX,
            scale: 0,
        };
        assert_eq!(big.compare(inf), Some(Ordering::Less));
        assert_eq!(inf.compare(big), Some(Ordering::Greater));
        assert_eq!(big.compare(ninf), Some(Ordering::Greater));
        assert_eq!(ninf.compare(big), Some(Ordering::Less));
    }

    #[test]
    fn huge_decimal_falls_back_to_double() {
        let big = "9".repeat(60);
        let n = Numeric::parse(xsd::DECIMAL, &big).unwrap();
        assert!(matches!(n, Numeric::Double(_)));
        let small = Numeric::integer(1);
        assert_eq!(n.compare(small), Some(Ordering::Greater));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Ordering;

    fn arb_decimal() -> impl Strategy<Value = Numeric> {
        (any::<i64>(), 0u32..6).prop_map(|(unscaled, scale)| Numeric::Decimal {
            unscaled: unscaled as i128,
            scale,
        })
    }

    proptest! {
        /// compare() is antisymmetric on exact decimals.
        #[test]
        fn compare_antisymmetric(a in arb_decimal(), b in arb_decimal()) {
            let ab = a.compare(b).unwrap();
            let ba = b.compare(a).unwrap();
            prop_assert_eq!(ab, ba.reverse());
        }

        /// compare() is transitive on exact decimals.
        #[test]
        fn compare_transitive(a in arb_decimal(), b in arb_decimal(), c in arb_decimal()) {
            if a.compare(b).unwrap() != Ordering::Greater
                && b.compare(c).unwrap() != Ordering::Greater
            {
                prop_assert_ne!(a.compare(c).unwrap(), Ordering::Greater);
            }
        }

        /// Parsing a rendered decimal compares equal to the original.
        #[test]
        fn parse_render_equivalence(unscaled in any::<i32>(), scale in 0u32..5) {
            let n = Numeric::Decimal { unscaled: unscaled as i128, scale };
            let lex = {
                let neg = unscaled < 0;
                let digits = (unscaled as i64).unsigned_abs().to_string();
                let scale = scale as usize;
                let (int, frac) = if digits.len() > scale {
                    let (i, f) = digits.split_at(digits.len() - scale);
                    (i.to_string(), f.to_string())
                } else {
                    ("0".to_string(), format!("{digits:0>scale$}"))
                };
                if scale == 0 {
                    format!("{}{int}", if neg { "-" } else { "" })
                } else {
                    format!("{}{int}.{frac}", if neg { "-" } else { "" })
                }
            };
            let reparsed = Numeric::parse(crate::vocab::xsd::DECIMAL, &lex)
                .unwrap_or_else(|| panic!("lexical {lex:?} must parse"));
            prop_assert_eq!(n.compare(reparsed), Some(Ordering::Equal), "lex {}", lex);
        }

        /// Decimal↔double equality is exact wherever the f64 round-trip is
        /// lossless (|v| ≤ 2^53).
        #[test]
        fn decimal_double_small_int_equality(v in -(1i64 << 53)..=(1i64 << 53)) {
            let dec = Numeric::integer(v as i128);
            let dbl = Numeric::Double(v as f64);
            prop_assert_eq!(dec.compare(dbl), Some(Ordering::Equal));
        }

        /// compare() stays antisymmetric across representations.
        #[test]
        fn decimal_double_antisymmetric(a in arb_decimal(), mantissa in any::<i64>(), shift in 0u32..32) {
            let dbl = Numeric::Double(mantissa as f64 / (1u64 << shift) as f64);
            let ab = a.compare(dbl).unwrap();
            let ba = dbl.compare(a).unwrap();
            prop_assert_eq!(ab, ba.reverse());
        }

        /// Lexical validity for integers matches a simple regex-free spec.
        #[test]
        fn integer_lexical_spec(s in "[+-]?[0-9a-z]{0,6}") {
            let expected = {
                let t = s.strip_prefix(['+', '-']).unwrap_or(&s);
                !t.is_empty() && t.bytes().all(|b| b.is_ascii_digit())
            };
            prop_assert_eq!(is_valid_lexical(crate::vocab::xsd::INTEGER, &s), expected);
        }
    }
}

//! RDF terms: IRIs, blank nodes, and literals.
//!
//! Following the paper's preliminaries (§2): `Vs = I ∪ B`, `Vp = I`,
//! `Vo = I ∪ B ∪ L`. Terms are plain owned values here; the hot paths work
//! on interned [`TermId`](crate::pool::TermId)s instead.

use std::fmt;

use crate::vocab::xsd;

/// An IRI, stored in full (no namespace splitting).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Box<str>);

impl Iri {
    /// Creates an IRI from its textual form. No resolution is performed;
    /// relative IRIs are resolved by the parsers before reaching this type.
    pub fn new(iri: impl Into<Box<str>>) -> Self {
        Iri(iri.into())
    }

    /// The textual form of the IRI, without angle brackets.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Iri {
    /// Writes the IRI in N-Triples `<...>` syntax. Characters the IRIREF
    /// production forbids raw (controls, space, `<>"{}|^`\``, backslash) —
    /// which can only enter an [`Iri`] via `\u` escapes or programmatic
    /// construction — are written back as UCHAR escapes, so serializing and
    /// re-parsing round-trips instead of producing a rejected document.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for ch in self.0.chars() {
            match ch {
                '\u{00}'..='\u{20}' | '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\' => {
                    write!(f, "\\u{:04X}", ch as u32)?
                }
                c => write!(f, "{c}")?,
            }
        }
        write!(f, ">")
    }
}

impl From<&str> for Iri {
    fn from(s: &str) -> Self {
        Iri::new(s)
    }
}

impl From<String> for Iri {
    fn from(s: String) -> Self {
        Iri::new(s)
    }
}

/// A blank node, identified by its label (without the `_:` prefix).
///
/// Labels are significant within a single parsed document/graph; the
/// parsers rename anonymous nodes (`[]`) to fresh `genN` labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(Box<str>);

impl BlankNode {
    /// Creates a blank node from its label (no `_:` prefix).
    pub fn new(label: impl Into<Box<str>>) -> Self {
        BlankNode(label.into())
    }

    /// The label, without the `_:` prefix.
    pub fn label(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF literal: a lexical form plus either a datatype IRI or a language
/// tag (in which case the datatype is `rdf:langString`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Box<str>,
    /// Datatype IRI. `xsd:string` for plain literals,
    /// `rdf:langString` when `lang` is set.
    datatype: Box<str>,
    lang: Option<Box<str>>,
}

impl Literal {
    /// A plain string literal (`xsd:string`).
    pub fn string(lexical: impl Into<Box<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: xsd::STRING.into(),
            lang: None,
        }
    }

    /// A literal with an explicit datatype IRI.
    pub fn typed(lexical: impl Into<Box<str>>, datatype: impl Into<Box<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: datatype.into(),
            lang: None,
        }
    }

    /// A language-tagged string (`rdf:langString`). The tag is lowercased,
    /// as language tags are case-insensitive (BCP 47).
    pub fn lang_string(lexical: impl Into<Box<str>>, lang: &str) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: crate::vocab::rdf::LANG_STRING.into(),
            lang: Some(lang.to_ascii_lowercase().into()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), xsd::INTEGER)
    }

    /// An `xsd:decimal` literal.
    pub fn decimal(lexical: impl Into<Box<str>>) -> Self {
        Literal::typed(lexical, xsd::DECIMAL)
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Literal::typed(format!("{value:E}"), xsd::DOUBLE)
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal::typed(if value { "true" } else { "false" }, xsd::BOOLEAN)
    }

    /// The lexical form of the literal.
    pub fn lexical_form(&self) -> &str {
        &self.lexical
    }

    /// The datatype IRI.
    pub fn datatype(&self) -> &str {
        &self.datatype
    }

    /// The language tag, for `rdf:langString` literals.
    pub fn language(&self) -> Option<&str> {
        self.lang.as_deref()
    }
}

impl fmt::Display for Literal {
    /// Writes the literal in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"")?;
        for ch in self.lexical.chars() {
            match ch {
                '"' => write!(f, "\\\"")?,
                '\\' => write!(f, "\\\\")?,
                '\n' => write!(f, "\\n")?,
                '\r' => write!(f, "\\r")?,
                '\t' => write!(f, "\\t")?,
                c => write!(f, "{c}")?,
            }
        }
        write!(f, "\"")?;
        if let Some(lang) = &self.lang {
            write!(f, "@{lang}")
        } else if &*self.datatype != xsd::STRING {
            write!(f, "^^<{}>", self.datatype)
        } else {
            Ok(())
        }
    }
}

/// Any RDF term. The paper's vocabularies map as:
/// subjects ∈ {Iri, BlankNode}, predicates ∈ {Iri}, objects ∈ any.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI.
    Iri(Iri),
    /// A blank node.
    BlankNode(BlankNode),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Shorthand for an IRI term.
    pub fn iri(iri: impl Into<Box<str>>) -> Self {
        Term::Iri(Iri::new(iri))
    }

    /// Shorthand for a blank-node term.
    pub fn blank(label: impl Into<Box<str>>) -> Self {
        Term::BlankNode(BlankNode::new(label))
    }

    /// True for IRI terms.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True for blank-node terms.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// True for literal terms.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The IRI, when this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// The literal, when this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// True if this term may appear in subject position (`Vs = I ∪ B`).
    pub fn is_valid_subject(&self) -> bool {
        !self.is_literal()
    }

    /// True if this term may appear in predicate position (`Vp = I`).
    pub fn is_valid_predicate(&self) -> bool {
        self.is_iri()
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => i.fmt(f),
            Term::BlankNode(b) => b.fmt(f),
            Term::Literal(l) => l.fmt(f),
        }
    }
}

impl From<Iri> for Term {
    fn from(i: Iri) -> Self {
        Term::Iri(i)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Self {
        Term::BlankNode(b)
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_display_wraps_angle_brackets() {
        let iri = Iri::new("http://example.org/a");
        assert_eq!(iri.to_string(), "<http://example.org/a>");
        assert_eq!(iri.as_str(), "http://example.org/a");
    }

    #[test]
    fn blank_node_display() {
        assert_eq!(BlankNode::new("b0").to_string(), "_:b0");
    }

    #[test]
    fn string_literal_display_omits_datatype() {
        assert_eq!(Literal::string("John").to_string(), "\"John\"");
    }

    #[test]
    fn typed_literal_display() {
        let l = Literal::integer(23);
        assert_eq!(
            l.to_string(),
            "\"23\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn lang_literal_display_and_lowercase_tag() {
        let l = Literal::lang_string("Hallo", "DE");
        assert_eq!(l.language(), Some("de"));
        assert_eq!(l.to_string(), "\"Hallo\"@de");
    }

    #[test]
    fn literal_escapes_in_display() {
        let l = Literal::string("a\"b\\c\nd");
        assert_eq!(l.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn term_position_validity() {
        assert!(Term::iri("http://e/x").is_valid_subject());
        assert!(Term::blank("b").is_valid_subject());
        assert!(!Term::Literal(Literal::string("x")).is_valid_subject());
        assert!(Term::iri("http://e/x").is_valid_predicate());
        assert!(!Term::blank("b").is_valid_predicate());
    }

    #[test]
    fn boolean_literal() {
        assert_eq!(Literal::boolean(true).lexical_form(), "true");
        assert_eq!(
            Literal::boolean(false).datatype(),
            "http://www.w3.org/2001/XMLSchema#boolean"
        );
    }

    #[test]
    fn term_ordering_is_total() {
        let mut v = [
            Term::Literal(Literal::string("z")),
            Term::blank("a"),
            Term::iri("http://e/a"),
        ];
        v.sort();
        assert!(v[0].is_iri());
    }
}

//! RDF graph isomorphism: equality up to blank-node renaming.
//!
//! Two RDF graphs are isomorphic when some bijection between their blank
//! nodes maps one triple set onto the other (RDF 1.1 Semantics §1.4 —
//! blank-node identity is scoped to a graph, so set equality is the wrong
//! notion whenever blank nodes occur). Serialisation round-trip tests and
//! any cache keyed on graph content need this.
//!
//! The implementation uses signature-based candidate pruning (a round of
//! colour refinement over ground context) followed by backtracking search;
//! exact and complete, intended for the document-sized graphs validation
//! deals in, not for adversarial million-blank-node inputs.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::graph::Graph;
use crate::pool::TermPool;
use crate::term::Term;

/// A triple with blank nodes abstracted to per-graph indexes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    Ground(String),
    Blank(usize),
}

type AbstractTriple = (Key, Key, Key);

struct Abstracted {
    triples: Vec<AbstractTriple>,
    blank_count: usize,
    /// Signature per blank index, for pruning.
    signatures: Vec<Vec<String>>,
}

fn abstract_graph(graph: &Graph, pool: &TermPool) -> Abstracted {
    let mut blanks: BTreeMap<String, usize> = BTreeMap::new();
    let key = |term: &Term, blanks: &mut BTreeMap<String, usize>| match term {
        Term::BlankNode(b) => {
            let next = blanks.len();
            Key::Blank(*blanks.entry(b.label().to_string()).or_insert(next))
        }
        other => Key::Ground(other.to_string()),
    };
    let mut triples: Vec<AbstractTriple> = graph
        .triples()
        .map(|t| {
            (
                key(pool.term(t.subject), &mut blanks),
                key(pool.term(t.predicate), &mut blanks),
                key(pool.term(t.object), &mut blanks),
            )
        })
        .collect();
    triples.sort();
    // Signature: sorted ground-context strings of every triple the blank
    // participates in, with the blank's own positions masked.
    let mut signatures = vec![Vec::new(); blanks.len()];
    for (s, p, o) in &triples {
        let positions = [(s, "S"), (p, "P"), (o, "O")];
        for (k, pos) in positions {
            if let Key::Blank(i) = k {
                let render = |x: &Key| match x {
                    Key::Ground(g) => g.clone(),
                    Key::Blank(j) if j == i => "•".to_string(),
                    Key::Blank(_) => "_".to_string(),
                };
                signatures[*i].push(format!("{pos}:{} {} {}", render(s), render(p), render(o)));
            }
        }
    }
    for sig in &mut signatures {
        sig.sort();
    }
    Abstracted {
        triples,
        blank_count: blanks.len(),
        signatures,
    }
}

/// Tests whether two graphs are isomorphic (equal up to consistent
/// blank-node renaming).
pub fn are_isomorphic(g1: &Graph, p1: &TermPool, g2: &Graph, p2: &TermPool) -> bool {
    if g1.len() != g2.len() {
        return false;
    }
    let a = abstract_graph(g1, p1);
    let b = abstract_graph(g2, p2);
    if a.blank_count != b.blank_count {
        return false;
    }
    if a.blank_count == 0 {
        return a.triples == b.triples;
    }
    // Ground triples (no blanks at all) must coincide exactly.
    let ground = |t: &&AbstractTriple| {
        !matches!(t.0, Key::Blank(_))
            && !matches!(t.1, Key::Blank(_))
            && !matches!(t.2, Key::Blank(_))
    };
    let ga: HashSet<_> = a.triples.iter().filter(ground).collect();
    let gb: HashSet<_> = b.triples.iter().filter(ground).collect();
    if ga != gb {
        return false;
    }
    // Candidates per blank in `a`: blanks in `b` with identical signature.
    let candidates: Vec<Vec<usize>> = (0..a.blank_count)
        .map(|i| {
            (0..b.blank_count)
                .filter(|&j| a.signatures[i] == b.signatures[j])
                .collect()
        })
        .collect();
    if candidates.iter().any(Vec::is_empty) {
        return false;
    }
    let b_set: HashSet<&AbstractTriple> = b.triples.iter().collect();
    // Assign blanks in ascending candidate-count order (most constrained
    // first).
    let mut order: Vec<usize> = (0..a.blank_count).collect();
    order.sort_by_key(|&i| candidates[i].len());
    let mut mapping: HashMap<usize, usize> = HashMap::new();
    let mut used: HashSet<usize> = HashSet::new();
    search(&a, &b_set, &candidates, &order, 0, &mut mapping, &mut used)
}

fn search(
    a: &Abstracted,
    b_set: &HashSet<&AbstractTriple>,
    candidates: &[Vec<usize>],
    order: &[usize],
    depth: usize,
    mapping: &mut HashMap<usize, usize>,
    used: &mut HashSet<usize>,
) -> bool {
    if depth == order.len() {
        // Full mapping: verify every triple of `a` maps into `b`.
        return a.triples.iter().all(|t| {
            let mapped = map_triple(t, mapping);
            b_set.contains(&mapped)
        });
    }
    let i = order[depth];
    for &j in &candidates[i] {
        if used.contains(&j) {
            continue;
        }
        mapping.insert(i, j);
        used.insert(j);
        // Early pruning: triples fully mapped so far must be present.
        let consistent = a.triples.iter().all(|t| {
            match try_map_triple(t, mapping) {
                Some(mapped) => b_set.contains(&mapped),
                None => true, // not fully mapped yet
            }
        });
        if consistent && search(a, b_set, candidates, order, depth + 1, mapping, used) {
            return true;
        }
        mapping.remove(&i);
        used.remove(&j);
    }
    false
}

fn map_key(k: &Key, mapping: &HashMap<usize, usize>) -> Key {
    match k {
        Key::Blank(i) => Key::Blank(mapping[i]),
        g => g.clone(),
    }
}

fn map_triple(t: &AbstractTriple, mapping: &HashMap<usize, usize>) -> AbstractTriple {
    (
        map_key(&t.0, mapping),
        map_key(&t.1, mapping),
        map_key(&t.2, mapping),
    )
}

/// Maps a triple if all its blanks are assigned; `None` otherwise.
fn try_map_triple(t: &AbstractTriple, mapping: &HashMap<usize, usize>) -> Option<AbstractTriple> {
    let try_key = |k: &Key| match k {
        Key::Blank(i) => mapping.get(i).map(|&j| Key::Blank(j)),
        g => Some(g.clone()),
    };
    Some((try_key(&t.0)?, try_key(&t.1)?, try_key(&t.2)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle;

    fn iso(src1: &str, src2: &str) -> bool {
        let a = turtle::parse(src1).unwrap();
        let b = turtle::parse(src2).unwrap();
        are_isomorphic(&a.graph, &a.pool, &b.graph, &b.pool)
    }

    #[test]
    fn ground_graphs_compare_by_set() {
        let x = "@prefix e: <http://e/> . e:a e:p e:b . e:c e:p e:d .";
        let y = "@prefix e: <http://e/> . e:c e:p e:d . e:a e:p e:b .";
        assert!(iso(x, y));
        let z = "@prefix e: <http://e/> . e:a e:p e:b .";
        assert!(!iso(x, z));
    }

    #[test]
    fn blank_renaming_is_isomorphic() {
        assert!(iso(
            "@prefix e: <http://e/> . _:x e:p e:o . _:x e:q 1 .",
            "@prefix e: <http://e/> . _:y e:p e:o . _:y e:q 1 .",
        ));
    }

    #[test]
    fn blank_swap_is_isomorphic() {
        assert!(iso(
            "@prefix e: <http://e/> . _:a e:p _:b . _:b e:p _:a .",
            "@prefix e: <http://e/> . _:u e:p _:v . _:v e:p _:u .",
        ));
    }

    #[test]
    fn different_blank_structure_is_not() {
        // One shared blank vs two distinct blanks.
        assert!(!iso(
            "@prefix e: <http://e/> . _:a e:p 1 . _:a e:q 2 .",
            "@prefix e: <http://e/> . _:a e:p 1 . _:b e:q 2 .",
        ));
    }

    #[test]
    fn self_loop_vs_two_cycle() {
        assert!(!iso(
            "@prefix e: <http://e/> . _:a e:p _:a .",
            "@prefix e: <http://e/> . _:a e:p _:b .",
        ));
        assert!(!iso(
            // 2 triples each, same degrees, different shape
            "@prefix e: <http://e/> . _:a e:p _:a . _:b e:p _:b .",
            "@prefix e: <http://e/> . _:a e:p _:b . _:b e:p _:a .",
        ));
    }

    #[test]
    fn anonymous_nodes_from_parser() {
        assert!(iso(
            "@prefix e: <http://e/> . e:x e:p [ e:q 1 ] .",
            "@prefix e: <http://e/> . e:x e:p _:whatever . _:whatever e:q 1 .",
        ));
    }

    #[test]
    fn ground_mismatch_with_blanks_present() {
        assert!(!iso(
            "@prefix e: <http://e/> . _:a e:p 1 . e:x e:y e:z .",
            "@prefix e: <http://e/> . _:a e:p 1 . e:x e:y e:w .",
        ));
    }

    #[test]
    fn larger_symmetric_case() {
        // A 3-cycle of blanks matches any rotation/relabelling.
        let cycle = |names: [&str; 3]| {
            format!(
                "@prefix e: <http://e/> . _:{0} e:n _:{1} . _:{1} e:n _:{2} . _:{2} e:n _:{0} .",
                names[0], names[1], names[2]
            )
        };
        assert!(iso(&cycle(["a", "b", "c"]), &cycle(["p", "q", "r"])));
        // But a 3-cycle is not a 3-chain.
        let chain = "@prefix e: <http://e/> . _:a e:n _:b . _:b e:n _:c . _:c e:n _:d .";
        assert!(!iso(&cycle(["a", "b", "c"]), chain));
    }

    #[test]
    fn collections_isomorphic_regardless_of_gen_labels() {
        let a = turtle::parse("@prefix e: <http://e/> . e:x e:p (1 2 3) .").unwrap();
        let b = turtle::parse("@prefix e: <http://e/> . e:x e:p (1 2 3) .").unwrap();
        assert!(are_isomorphic(&a.graph, &a.pool, &b.graph, &b.pool));
        let c = turtle::parse("@prefix e: <http://e/> . e:x e:p (1 3 2) .").unwrap();
        assert!(!are_isomorphic(&a.graph, &a.pool, &c.graph, &c.pool));
    }
}

//! N-Triples parser: one triple per line, full IRIs only, no abbreviations.
//! Strict subset of Turtle, but implemented as its own line-oriented parser
//! because N-Triples rejects Turtle-only syntax (prefixed names, `a`, ...).

use crate::graph::Dataset;
use crate::parser::{decode_string_escape, decode_unicode_escape, Cursor, ParseError};
use crate::term::{Literal, Term};

/// Parses an N-Triples document into a fresh [`Dataset`].
pub fn parse(input: &str) -> Result<Dataset, ParseError> {
    let mut ds = Dataset::new();
    parse_into(input, &mut ds)?;
    Ok(ds)
}

/// Parses an N-Triples document into an existing dataset.
pub fn parse_into(input: &str, dataset: &mut Dataset) -> Result<(), ParseError> {
    let mut cur = Cursor::new(input);
    loop {
        cur.skip_ws_and_comments();
        if cur.at_end() {
            return Ok(());
        }
        let subject = parse_term(&mut cur)?;
        if !subject.is_valid_subject() {
            return Err(cur.error("subject must be an IRI or blank node"));
        }
        cur.skip_ws_and_comments();
        let predicate = parse_term(&mut cur)?;
        if !predicate.is_valid_predicate() {
            return Err(cur.error("predicate must be an IRI"));
        }
        cur.skip_ws_and_comments();
        let object = parse_term(&mut cur)?;
        cur.skip_ws_and_comments();
        if !cur.eat('.') {
            return Err(cur.error("expected '.' terminating triple"));
        }
        dataset.insert(subject, predicate, object);
    }
}

fn parse_term(cur: &mut Cursor<'_>) -> Result<Term, ParseError> {
    match cur.peek() {
        Some('<') => parse_iri(cur).map(Term::iri),
        Some('_') => parse_blank(cur),
        Some('"') => parse_literal(cur),
        Some(c) => Err(cur.error(format!("unexpected character '{c}'"))),
        None => Err(cur.error("unexpected end of input")),
    }
}

fn parse_iri(cur: &mut Cursor<'_>) -> Result<String, ParseError> {
    cur.bump(); // '<'
    let mut iri = String::new();
    loop {
        let c = cur.bump().ok_or_else(|| cur.error("unterminated IRI"))?;
        match c {
            '>' => return Ok(iri),
            '\\' => match cur.bump() {
                Some('u') => iri.push(decode_unicode_escape(cur, 4)?),
                Some('U') => iri.push(decode_unicode_escape(cur, 8)?),
                _ => return Err(cur.error("invalid escape in IRI")),
            },
            c if c.is_whitespace() => return Err(cur.error("whitespace in IRI")),
            c => iri.push(c),
        }
    }
}

fn parse_blank(cur: &mut Cursor<'_>) -> Result<Term, ParseError> {
    if !cur.eat_str("_:") {
        return Err(cur.error("expected '_:'"));
    }
    let mut label = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' || c == '-' {
            label.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if label.is_empty() {
        return Err(cur.error("empty blank node label"));
    }
    Ok(Term::blank(label))
}

fn parse_literal(cur: &mut Cursor<'_>) -> Result<Term, ParseError> {
    cur.bump(); // '"'
    let mut lexical = String::new();
    loop {
        let c = cur
            .bump()
            .ok_or_else(|| cur.error("unterminated string literal"))?;
        match c {
            '"' => break,
            '\\' => lexical.push(decode_string_escape(cur)?),
            '\n' => return Err(cur.error("newline in string literal")),
            c => lexical.push(c),
        }
    }
    if cur.eat('@') {
        let mut lang = String::new();
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == '-' {
                lang.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        if lang.is_empty() {
            return Err(cur.error("empty language tag"));
        }
        return Ok(Term::Literal(Literal::lang_string(lexical, &lang)));
    }
    if cur.eat_str("^^") {
        let dt = parse_iri(cur)?;
        return Ok(Term::Literal(Literal::typed(lexical, dt)));
    }
    Ok(Term::Literal(Literal::string(lexical)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::xsd;

    #[test]
    fn basic_triples() {
        let src = "<http://e/a> <http://e/p> <http://e/b> .\n\
                   <http://e/a> <http://e/p> \"lit\" .\n";
        let ds = parse(src).unwrap();
        assert_eq!(ds.graph.len(), 2);
    }

    #[test]
    fn typed_and_tagged_literals() {
        let src = concat!(
            "<http://e/a> <http://e/p> \"23\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
            "<http://e/a> <http://e/q> \"hi\"@en .\n"
        );
        let ds = parse(src).unwrap();
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::typed("23", xsd::INTEGER)))
            .is_some());
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::lang_string("hi", "en")))
            .is_some());
    }

    #[test]
    fn blank_nodes() {
        let src = "_:a <http://e/p> _:b .";
        let ds = parse(src).unwrap();
        assert_eq!(ds.graph.len(), 1);
        assert!(ds.pool.get(&Term::blank("a")).is_some());
    }

    #[test]
    fn escapes_in_literals() {
        let src = r#"<http://e/a> <http://e/p> "line\nbreak \"q\" A" ."#;
        let ds = parse(src).unwrap();
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::string("line\nbreak \"q\" A")))
            .is_some());
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "# comment\n\n<http://e/a> <http://e/p> <http://e/b> . # trailing\n";
        assert_eq!(parse(src).unwrap().graph.len(), 1);
    }

    #[test]
    fn rejects_turtle_abbreviations() {
        assert!(parse("ex:a ex:p ex:b .").is_err());
        assert!(parse("<http://e/a> a <http://e/B> .").is_err());
        assert!(parse("<http://e/a> <http://e/p> 42 .").is_err());
    }

    #[test]
    fn rejects_literal_subject() {
        assert!(parse("\"lit\" <http://e/p> <http://e/b> .").is_err());
    }

    #[test]
    fn rejects_blank_predicate() {
        assert!(parse("<http://e/a> _:p <http://e/b> .").is_err());
    }

    #[test]
    fn missing_dot_is_error() {
        assert!(parse("<http://e/a> <http://e/p> <http://e/b>").is_err());
    }
}

//! N-Triples parser: one triple per line, full IRIs only, no abbreviations.
//!
//! Strict subset of Turtle, but implemented as its own parser because
//! N-Triples rejects Turtle-only syntax (prefixed names, `a`, multi-line
//! statements, ...). Per the W3C grammar the format is *strictly
//! line-oriented*: a triple may not span lines, comments are only allowed
//! on otherwise-empty lines or after the terminating `.`, and every error
//! is reported with the 1-based line it occurred on.
//!
//! Line-orientation is also what makes dumps parallelizable:
//! [`parse_par`] splits the input at line boundaries into byte ranges,
//! parses the chunks on scoped worker threads with chunk-local term
//! interning, then merges them deterministically into one shared pool —
//! producing a [`Dataset`] *byte-identical* to sequential [`parse`] (same
//! `TermId` assignment, same adjacency order, same first error).

use crate::graph::{Dataset, Triple};
use crate::parser::{decode_string_escape, decode_unicode_escape, Cursor, ParseError};
use crate::pool::{TermId, TermPool};
use crate::term::{Literal, Term};

/// Parses an N-Triples document into a fresh [`Dataset`].
///
/// The result is compacted ([`Dataset::compact`]) — bulk loads are the one
/// place the whole graph is in hand and cold.
pub fn parse(input: &str) -> Result<Dataset, ParseError> {
    let mut ds = Dataset::new();
    ds.graph.reserve(count_newlines(input) + 1);
    parse_into(input, &mut ds)?;
    ds.compact();
    Ok(ds)
}

/// Parses an N-Triples document into an existing dataset. Strictly
/// line-oriented; does not compact (the caller owns the layout decision).
pub fn parse_into(input: &str, dataset: &mut Dataset) -> Result<(), ParseError> {
    parse_lines(input, 1, &mut |s, p, o| {
        dataset.insert(s, p, o);
    })
}

/// Default minimum chunk size for [`parse_par`]: inputs smaller than this
/// per worker aren't worth a thread.
pub const MIN_CHUNK_BYTES: usize = 1 << 16;

/// Parses an N-Triples document on up to `jobs` worker threads.
///
/// The input is split at line boundaries into byte ranges; each worker
/// parses its range into a chunk-local [`TermPool`] and triple list; the
/// merge phase then re-interns each chunk's terms into the shared pool *in
/// chunk order* and replays the triples through it. Because chunk-local
/// interning order is first-occurrence order within the chunk, and
/// interning is idempotent, the merged pool assigns every term exactly the
/// id sequential [`parse`] would — the result is byte-identical, including
/// the first error (workers surface chunk-relative errors; the merge maps
/// the earliest one back to its document line).
pub fn parse_par(input: &str, jobs: usize) -> Result<Dataset, ParseError> {
    parse_par_min_chunk(input, jobs, MIN_CHUNK_BYTES)
}

/// [`parse_par`] with a caller-chosen minimum chunk size. Small documents
/// fall back to sequential parsing under the default threshold; the
/// differential tests pass `min_chunk = 1` so tiny inputs still exercise
/// the chunked path (including torn-seam error handling).
pub fn parse_par_min_chunk(
    input: &str,
    jobs: usize,
    min_chunk: usize,
) -> Result<Dataset, ParseError> {
    let jobs = jobs.max(1);
    let effective = jobs.min(input.len() / min_chunk.max(1) + 1);
    if effective <= 1 {
        return parse(input);
    }

    // Chunk at line boundaries: each boundary is advanced to just past the
    // next '\n', so every chunk holds complete lines. Byte search keeps the
    // seam scan UTF-8-safe ('\n' never occurs inside a multi-byte char).
    let bytes = input.as_bytes();
    let approx = input.len() / effective;
    let mut chunks: Vec<&str> = Vec::with_capacity(effective);
    let mut start = 0usize;
    while start < input.len() {
        let mut end = (start + approx.max(1)).min(input.len());
        if chunks.len() + 1 == effective {
            end = input.len();
        } else {
            match bytes[end..].iter().position(|&b| b == b'\n') {
                Some(i) => end += i + 1,
                None => end = input.len(),
            }
        }
        chunks.push(&input[start..end]);
        start = end;
    }

    struct ChunkParse {
        pool: TermPool,
        triples: Vec<(TermId, TermId, TermId)>,
        newlines: usize,
        error: Option<ParseError>,
    }

    fn parse_chunk(chunk: &str) -> ChunkParse {
        let newlines = count_newlines(chunk);
        let mut pool = TermPool::new();
        let mut triples = Vec::new();
        let error = parse_lines(chunk, 1, &mut |s, p, o| {
            triples.push((pool.intern(s), pool.intern(p), pool.intern(o)));
        })
        .err();
        ChunkParse {
            pool,
            triples,
            newlines,
            error,
        }
    }

    let parsed: Vec<ChunkParse> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| s.spawn(move || parse_chunk(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("N-Triples worker panicked"))
            .collect()
    });

    // Surface the earliest error exactly as sequential parsing would:
    // chunk-relative line plus the line count of every earlier chunk.
    let mut line_offset = 0usize;
    for chunk in &parsed {
        if let Some(err) = &chunk.error {
            let mut err = err.clone();
            err.line += line_offset;
            return Err(err);
        }
        line_offset += chunk.newlines;
    }

    // Deterministic merge. Re-interning chunk pools in chunk order
    // reproduces sequential id assignment by induction: a chunk's local
    // pool lists terms in first-occurrence order, so the subset not yet
    // seen globally is interned in exactly the order sequential parsing
    // would first meet it.
    let mut ds = Dataset::new();
    ds.pool.reserve(parsed.iter().map(|c| c.pool.len()).sum());
    ds.graph
        .reserve(parsed.iter().map(|c| c.triples.len()).sum());
    for chunk in parsed {
        let remap: Vec<TermId> = chunk
            .pool
            .into_terms()
            .into_iter()
            .map(|t| ds.pool.intern(t))
            .collect();
        for (s, p, o) in chunk.triples {
            ds.graph.insert(Triple::new(
                remap[s.index()],
                remap[p.index()],
                remap[o.index()],
            ));
        }
    }
    ds.compact();
    Ok(ds)
}

fn count_newlines(s: &str) -> usize {
    s.as_bytes().iter().filter(|&&b| b == b'\n').count()
}

/// Parses `input` line by line, feeding each triple's terms to `sink`.
/// `first_line` seeds error line numbering (chunk workers pass 1 and the
/// merge phase offsets). One trailing `'\r'` per line is stripped, so both
/// LF and CRLF documents parse; a `'\r'` anywhere else is an error like any
/// other control character.
fn parse_lines(
    input: &str,
    first_line: usize,
    sink: &mut impl FnMut(Term, Term, Term),
) -> Result<(), ParseError> {
    for (i, raw) in input.split('\n').enumerate() {
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        let mut cur = Cursor::new_at_line(line, first_line + i);
        skip_inline_ws(&mut cur);
        if matches!(cur.peek(), None | Some('#')) {
            continue; // empty or comment-only line
        }
        let subject = match cur.peek() {
            Some('<') => parse_iri(&mut cur).map(Term::iri)?,
            Some('_') => parse_blank(&mut cur)?,
            Some('"') => return Err(cur.error("subject must be an IRI or blank node")),
            Some(c) => return Err(cur.error(format!("expected subject, got '{c}'"))),
            None => unreachable!("empty line handled above"),
        };
        skip_inline_ws(&mut cur);
        let predicate = match cur.peek() {
            Some('<') => parse_iri(&mut cur).map(Term::iri)?,
            Some(c) => return Err(cur.error(format!("predicate must be an IRI, got '{c}'"))),
            None => return Err(cur.error("expected predicate before end of line")),
        };
        skip_inline_ws(&mut cur);
        let object = match cur.peek() {
            Some('<') => parse_iri(&mut cur).map(Term::iri)?,
            Some('_') => parse_blank(&mut cur)?,
            Some('"') => parse_literal(&mut cur)?,
            Some(c) => return Err(cur.error(format!("expected object, got '{c}'"))),
            None => return Err(cur.error("expected object before end of line")),
        };
        skip_inline_ws(&mut cur);
        if !cur.eat('.') {
            return Err(match cur.peek() {
                Some(c) => cur.error(format!("expected '.' terminating triple, got '{c}'")),
                None => cur.error("expected '.' terminating triple before end of line"),
            });
        }
        skip_inline_ws(&mut cur);
        match cur.peek() {
            None | Some('#') => {}
            Some(c) => {
                return Err(cur.error(format!(
                    "unexpected '{c}' after triple (one triple per line)"
                )))
            }
        }
        sink(subject, predicate, object);
    }
    Ok(())
}

/// Skips the whitespace the grammar allows between terms: space and tab.
/// (Line breaks never reach here — lines are pre-split.)
fn skip_inline_ws(cur: &mut Cursor<'_>) {
    while matches!(cur.peek(), Some(' ') | Some('\t')) {
        cur.bump();
    }
}

fn parse_iri(cur: &mut Cursor<'_>) -> Result<String, ParseError> {
    cur.bump(); // '<'
    let mut iri = String::new();
    loop {
        let c = cur.bump().ok_or_else(|| cur.error("unterminated IRI"))?;
        match c {
            '>' => return Ok(iri),
            '\\' => match cur.bump() {
                Some('u') => iri.push(decode_unicode_escape(cur, 4)?),
                Some('U') => iri.push(decode_unicode_escape(cur, 8)?),
                _ => return Err(cur.error("invalid escape in IRI (only \\u/\\U allowed)")),
            },
            // IRIREF forbids controls, space, and <"{}|^` raw — they must
            // be \u-escaped (the grammar's UCHAR production).
            '\u{00}'..='\u{20}' | '<' | '"' | '{' | '}' | '|' | '^' | '`' => {
                return Err(cur.error(format!(
                    "character U+{:04X} not allowed in IRI (use \\u escape)",
                    c as u32
                )))
            }
            c => iri.push(c),
        }
    }
}

fn parse_blank(cur: &mut Cursor<'_>) -> Result<Term, ParseError> {
    if !cur.eat_str("_:") {
        return Err(cur.error("expected '_:'"));
    }
    let mut label = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' || c == '-' {
            label.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if label.is_empty() {
        return Err(cur.error("empty blank node label"));
    }
    Ok(Term::blank(label))
}

fn parse_literal(cur: &mut Cursor<'_>) -> Result<Term, ParseError> {
    cur.bump(); // '"'
    let mut lexical = String::new();
    loop {
        let c = cur
            .bump()
            .ok_or_else(|| cur.error("unterminated string literal"))?;
        match c {
            '"' => break,
            '\\' => lexical.push(decode_string_escape(cur)?),
            // Raw newlines can't reach here (lines are pre-split); a raw
            // carriage return mid-line is just as forbidden.
            '\r' => return Err(cur.error("carriage return in string literal (use \\r)")),
            c => lexical.push(c),
        }
    }
    if cur.eat('@') {
        // LANGTAG ::= [a-zA-Z]+ ('-' [a-zA-Z0-9]+)*
        let mut lang = String::new();
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphabetic() {
                lang.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        if lang.is_empty() {
            return Err(cur.error("language tag must start with a letter"));
        }
        while cur.peek() == Some('-') {
            cur.bump();
            lang.push('-');
            let before = lang.len();
            while let Some(c) = cur.peek() {
                if c.is_ascii_alphanumeric() {
                    lang.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            if lang.len() == before {
                return Err(cur.error("empty language subtag"));
            }
        }
        return Ok(Term::Literal(Literal::lang_string(lexical, &lang)));
    }
    if cur.eat_str("^^") {
        if cur.peek() != Some('<') {
            return Err(cur.error("datatype must be an IRI"));
        }
        let dt = parse_iri(cur)?;
        return Ok(Term::Literal(Literal::typed(lexical, dt)));
    }
    Ok(Term::Literal(Literal::string(lexical)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::xsd;
    use crate::writer;

    #[test]
    fn basic_triples() {
        let src = "<http://e/a> <http://e/p> <http://e/b> .\n\
                   <http://e/a> <http://e/p> \"lit\" .\n";
        let ds = parse(src).unwrap();
        assert_eq!(ds.graph.len(), 2);
    }

    #[test]
    fn typed_and_tagged_literals() {
        let src = concat!(
            "<http://e/a> <http://e/p> \"23\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
            "<http://e/a> <http://e/q> \"hi\"@en .\n"
        );
        let ds = parse(src).unwrap();
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::typed("23", xsd::INTEGER)))
            .is_some());
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::lang_string("hi", "en")))
            .is_some());
    }

    #[test]
    fn blank_nodes() {
        let src = "_:a <http://e/p> _:b .";
        let ds = parse(src).unwrap();
        assert_eq!(ds.graph.len(), 1);
        assert!(ds.pool.get(&Term::blank("a")).is_some());
    }

    #[test]
    fn escapes_in_literals() {
        let src = r#"<http://e/a> <http://e/p> "line\nbreak \"q\" A" ."#;
        let ds = parse(src).unwrap();
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::string("line\nbreak \"q\" A")))
            .is_some());
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "# comment\n\n<http://e/a> <http://e/p> <http://e/b> . # trailing\n";
        assert_eq!(parse(src).unwrap().graph.len(), 1);
    }

    #[test]
    fn crlf_line_endings() {
        let src = "<http://e/a> <http://e/p> <http://e/b> .\r\n# c\r\n<http://e/a> <http://e/p> <http://e/c> .\r\n";
        assert_eq!(parse(src).unwrap().graph.len(), 2);
    }

    #[test]
    fn rejects_turtle_abbreviations() {
        assert!(parse("ex:a ex:p ex:b .").is_err());
        assert!(parse("<http://e/a> a <http://e/B> .").is_err());
        assert!(parse("<http://e/a> <http://e/p> 42 .").is_err());
    }

    #[test]
    fn rejects_literal_subject() {
        let err = parse("\"lit\" <http://e/p> <http://e/b> .").unwrap_err();
        assert!(err.message.contains("subject"), "{}", err.message);
    }

    #[test]
    fn rejects_blank_predicate() {
        assert!(parse("<http://e/a> _:p <http://e/b> .").is_err());
    }

    #[test]
    fn rejects_literal_datatype() {
        assert!(parse("<http://e/a> <http://e/p> \"x\"^^\"y\" .").is_err());
    }

    #[test]
    fn missing_dot_is_error() {
        assert!(parse("<http://e/a> <http://e/p> <http://e/b>").is_err());
    }

    #[test]
    fn rejects_triple_spanning_lines() {
        // Fail-pre-fix: the old parser skipped arbitrary whitespace
        // (including newlines) between terms, accepting multi-line triples
        // the N-Triples grammar forbids.
        let err = parse("<http://e/a>\n<http://e/p> <http://e/b> .\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("predicate"), "{}", err.message);
    }

    #[test]
    fn rejects_comment_mid_triple() {
        // Fail-pre-fix: comments were skipped *between terms*; the grammar
        // only allows them on empty lines or after the terminating '.'.
        let err = parse("<http://e/a> # oops\n<http://e/p> <http://e/b> .\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_two_triples_on_one_line() {
        let src =
            "<http://e/a> <http://e/p> <http://e/b> . <http://e/a> <http://e/p> <http://e/c> .";
        let err = parse(src).unwrap_err();
        assert!(
            err.message.contains("one triple per line"),
            "{}",
            err.message
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        // Fail-pre-fix (for the multi-line acceptance): errors now name the
        // exact offending line of the document.
        let src = "<http://e/a> <http://e/p> <http://e/b> .\n\
                   \n\
                   <http://e/a> <http://e/p> .\n";
        let err = parse(src).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn rejects_forbidden_chars_in_iri() {
        // Fail-pre-fix: only whitespace was rejected inside <...>; the
        // IRIREF production also forbids <, ", {, }, |, ^, `, and controls.
        for bad in [
            "<http://e/a b>",
            "<http://e/a<b>",
            "<http://e/a\"b>",
            "<http://e/a{b>",
            "<http://e/a|b>",
            "<http://e/a^b>",
            "<http://e/a`b>",
            "<http://e/a\u{7}b>",
        ] {
            let src = format!("{bad} <http://e/p> <http://e/o> .");
            let err = parse(&src).unwrap_err();
            assert_eq!(err.line, 1, "{bad}");
            assert!(err.message.contains("IRI"), "{bad}: {}", err.message);
        }
    }

    #[test]
    fn iri_escape_round_trip() {
        // A \u-escaped forbidden character parses, serializes back as an
        // escape, and re-parses to the same term.
        let src = "<http://e/a\\u0020b> <http://e/p> <http://e/o> .\n";
        let ds = parse(src).unwrap();
        assert!(ds.pool.get(&Term::iri("http://e/a b")).is_some());
        let out = writer::to_ntriples(&ds.graph, &ds.pool);
        assert!(out.contains("<http://e/a\\u0020b>"), "{out}");
        let ds2 = parse(&out).unwrap();
        assert!(ds2.pool.get(&Term::iri("http://e/a b")).is_some());
    }

    #[test]
    fn rejects_raw_carriage_return_in_literal() {
        let src = "<http://e/a> <http://e/p> \"a\rb\" .";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("carriage return"), "{}", err.message);
    }

    #[test]
    fn lang_tag_grammar() {
        assert!(parse("<http://e/a> <http://e/p> \"x\"@en .").is_ok());
        assert!(parse("<http://e/a> <http://e/p> \"x\"@en-US .").is_ok());
        assert!(parse("<http://e/a> <http://e/p> \"x\"@en-US-2 .").is_ok());
        // Fail-pre-fix: the old tag scanner took any [a-zA-Z0-9-]+.
        assert!(parse("<http://e/a> <http://e/p> \"x\"@1 .").is_err());
        assert!(parse("<http://e/a> <http://e/p> \"x\"@-en .").is_err());
        assert!(parse("<http://e/a> <http://e/p> \"x\"@en- .").is_err());
    }

    fn sample_doc(lines: usize) -> String {
        let mut doc = String::new();
        for i in 0..lines {
            // Recurring terms across the whole doc force cross-chunk
            // interning overlap; per-line terms force fresh ids.
            doc.push_str(&format!(
                "<http://e/s{}> <http://e/p{}> \"v{i}\"@en .\n",
                i % 97,
                i % 7
            ));
            if i % 13 == 0 {
                doc.push_str("# comment\n\n");
            }
        }
        doc
    }

    fn assert_identical(a: &Dataset, b: &Dataset) {
        assert_eq!(a.pool.len(), b.pool.len());
        for ((ia, ta), (ib, tb)) in a.pool.iter().zip(b.pool.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(ta, tb);
        }
        assert_eq!(a.graph.triples_sorted(), b.graph.triples_sorted());
        assert_eq!(
            a.graph.subjects().collect::<Vec<_>>(),
            b.graph.subjects().collect::<Vec<_>>()
        );
        for (id, _) in a.pool.iter() {
            assert_eq!(a.graph.neighbourhood(id), b.graph.neighbourhood(id));
            assert_eq!(a.graph.incoming(id), b.graph.incoming(id));
        }
    }

    #[test]
    fn parallel_parse_is_byte_identical() {
        let doc = sample_doc(500);
        let seq = parse(&doc).unwrap();
        for jobs in [2, 3, 4, 7] {
            let par = parse_par_min_chunk(&doc, jobs, 1).unwrap();
            assert_identical(&seq, &par);
        }
    }

    #[test]
    fn parallel_parse_falls_back_sequential_below_threshold() {
        let doc = sample_doc(10);
        let seq = parse(&doc).unwrap();
        let par = parse_par(&doc, 8).unwrap(); // tiny doc: one chunk
        assert_identical(&seq, &par);
    }

    #[test]
    fn parallel_parse_reports_same_error_at_same_line() {
        let mut doc = sample_doc(200);
        doc.push_str("<http://e/bad> <http://e/p> .\n"); // missing object
        doc.push_str(&sample_doc(50));
        let seq_err = parse(&doc).unwrap_err();
        for jobs in [2, 4, 9] {
            let par_err = parse_par_min_chunk(&doc, jobs, 1).unwrap_err();
            assert_eq!(seq_err, par_err, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_parse_reports_earliest_error() {
        // Errors in two different chunks: the merge must surface the first.
        let mut doc = String::new();
        doc.push_str("<http://e/a> <http://e/p> <http://e/b> .\n");
        doc.push_str("broken line one\n");
        doc.push_str(&sample_doc(100));
        doc.push_str("broken line two\n");
        let seq_err = parse(&doc).unwrap_err();
        assert_eq!(seq_err.line, 2);
        let par_err = parse_par_min_chunk(&doc, 6, 1).unwrap_err();
        assert_eq!(seq_err, par_err);
    }

    #[test]
    fn parallel_parse_handles_crlf_and_no_trailing_newline() {
        let doc = sample_doc(120).replace('\n', "\r\n");
        let trimmed = doc.trim_end().to_string(); // no trailing newline
        let seq = parse(&trimmed).unwrap();
        let par = parse_par_min_chunk(&trimmed, 5, 1).unwrap();
        assert_identical(&seq, &par);
    }
}

//! The in-memory graph store.
//!
//! A graph `Σ` is a *set* of triples `⟨s, p, o⟩` (paper §2). The store keeps
//! a deduplicating triple set plus adjacency indexes; the operation the
//! validator lives on is [`Graph::neighbourhood`], the paper's `Σg_n` — all
//! triples with subject `n` — served as a slice borrow. An object-side
//! index supports the paper's §10 "inverse arcs" extension.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use crate::delta::{AppliedDelta, DeltaApplyError, GraphDelta};
use crate::pool::{TermId, TermPool};
use crate::term::Term;

/// A triple of interned term ids: subject, predicate, object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject term id.
    pub subject: TermId,
    /// Predicate term id.
    pub predicate: TermId,
    /// Object term id.
    pub object: TermId,
}

impl Triple {
    /// Builds a triple from interned ids.
    pub fn new(subject: TermId, predicate: TermId, object: TermId) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }
}

/// An outgoing arc `(predicate, object)` in some node's neighbourhood.
pub type Arc = (TermId, TermId);

/// An in-memory RDF graph over a shared [`TermPool`].
#[derive(Debug, Default)]
pub struct Graph {
    triples: HashSet<Triple>,
    /// subject → sorted-by-insertion list of (predicate, object)
    outgoing: HashMap<TermId, Vec<Arc>>,
    /// object → list of (subject, predicate); for inverse arcs
    incoming: HashMap<TermId, Vec<(TermId, TermId)>>,
    /// insertion-ordered subjects, for deterministic iteration
    subject_order: Vec<TermId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Inserts a triple. Returns `true` if it was not already present
    /// (graphs are sets; duplicate inserts are no-ops).
    pub fn insert(&mut self, triple: Triple) -> bool {
        if !self.triples.insert(triple) {
            return false;
        }
        match self.outgoing.entry(triple.subject) {
            Entry::Occupied(mut e) => e.get_mut().push((triple.predicate, triple.object)),
            Entry::Vacant(e) => {
                self.subject_order.push(triple.subject);
                e.insert(vec![(triple.predicate, triple.object)]);
            }
        }
        self.incoming
            .entry(triple.object)
            .or_default()
            .push((triple.subject, triple.predicate));
        true
    }

    /// Removes a triple. Returns `true` if it was present. Subject order
    /// is preserved; a subject whose last triple is removed keeps its
    /// position internally (it disappears from [`Graph::subjects`] while
    /// its neighbourhood is empty, and reappears at the same position if a
    /// triple is re-inserted for it).
    pub fn remove(&mut self, triple: &Triple) -> bool {
        if !self.triples.remove(triple) {
            return false;
        }
        if let Some(arcs) = self.outgoing.get_mut(&triple.subject) {
            arcs.retain(|&(p, o)| (p, o) != (triple.predicate, triple.object));
        }
        if let Some(arcs) = self.incoming.get_mut(&triple.object) {
            arcs.retain(|&(s, p)| (s, p) != (triple.subject, triple.predicate));
        }
        true
    }

    /// Convenience: interns three terms into `pool` and inserts the triple.
    pub fn insert_terms(
        &mut self,
        pool: &mut TermPool,
        subject: Term,
        predicate: Term,
        object: Term,
    ) -> Triple {
        debug_assert!(subject.is_valid_subject(), "literal in subject position");
        debug_assert!(predicate.is_valid_predicate(), "non-IRI predicate");
        let t = Triple::new(
            pool.intern(subject),
            pool.intern(predicate),
            pool.intern(object),
        );
        self.insert(t);
        t
    }

    /// Membership test.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.triples.contains(triple)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// The paper's `Σg_n`: all `(predicate, object)` arcs leaving `n`,
    /// in insertion order. Empty slice when `n` has no outgoing triples.
    pub fn neighbourhood(&self, n: TermId) -> &[Arc] {
        self.outgoing.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Incoming arcs `(subject, predicate)` arriving at `n`
    /// (the §10 inverse-arc extension's data source).
    pub fn incoming(&self, n: TermId) -> &[(TermId, TermId)] {
        self.incoming.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Distinct subjects with at least one outgoing triple, in insertion
    /// order. Subjects whose every triple has been removed are skipped, so
    /// a mutated graph iterates identically to a freshly built one with
    /// the same triples.
    pub fn subjects(&self) -> impl Iterator<Item = TermId> + '_ {
        self.subject_order
            .iter()
            .copied()
            .filter(|&s| !self.neighbourhood(s).is_empty())
    }

    /// Applies a [`GraphDelta`]: removals first, then additions. Removing
    /// an absent triple or adding a present one is a no-op. Returns an
    /// [`AppliedDelta`] recording the operations that took effect and the
    /// adjacency positions vacated by removals, which
    /// [`Graph::revert_delta`] consumes to restore the graph exactly.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> AppliedDelta {
        self.try_apply_delta(delta)
            .expect("delta application cannot fail without fault injection")
    }

    /// [`Graph::apply_delta`] with an error channel, and **all-or-nothing**
    /// semantics: if an operation fails mid-delta (today that only happens
    /// through the `delta-apply` failpoint, modelling an I/O error in a
    /// persistent backend), every operation already performed is reverted
    /// and the graph is returned to a state *structurally identical* to its
    /// pre-delta one — same adjacency order, same subject iteration order —
    /// before the error is surfaced. A caller observing
    /// [`Err`] may therefore keep serving from the graph as if the delta
    /// had never been attempted.
    pub fn try_apply_delta(&mut self, delta: &GraphDelta) -> Result<AppliedDelta, DeltaApplyError> {
        let mut applied = AppliedDelta::default();
        let mut op = 0usize;
        let total = delta.removed.len() + delta.added.len();
        let fail = |applied: &AppliedDelta, graph: &mut Graph, op: usize| {
            crate::failpoint::check("delta-apply").map(|message| {
                graph.revert_delta(applied);
                DeltaApplyError {
                    op_index: op,
                    operations: total,
                    message,
                }
            })
        };
        for &t in &delta.removed {
            if let Some(e) = fail(&applied, self, op) {
                return Err(e);
            }
            op += 1;
            if !self.triples.remove(&t) {
                continue;
            }
            let out = self
                .outgoing
                .get_mut(&t.subject)
                .expect("triple present but subject unindexed");
            let oi = out
                .iter()
                .position(|&(p, o)| (p, o) == (t.predicate, t.object))
                .expect("triple present but arc unindexed");
            out.remove(oi);
            let inc = self
                .incoming
                .get_mut(&t.object)
                .expect("triple present but object unindexed");
            let ii = inc
                .iter()
                .position(|&(s, p)| (s, p) == (t.subject, t.predicate))
                .expect("triple present but incoming arc unindexed");
            inc.remove(ii);
            applied.removed.push((t, oi, ii));
        }
        for &t in &delta.added {
            if let Some(e) = fail(&applied, self, op) {
                return Err(e);
            }
            op += 1;
            if self.insert(t) {
                applied.added.push(t);
            }
        }
        Ok(applied)
    }

    /// Undoes an [`apply_delta`](Graph::apply_delta): removes the triples
    /// it added and re-inserts the triples it removed at their original
    /// adjacency positions. After the call the graph is structurally
    /// identical to its pre-apply state — same neighbourhood order, same
    /// [`Graph::subjects`] order — so downstream results (reports, stats)
    /// are byte-identical, not merely set-equal.
    pub fn revert_delta(&mut self, applied: &AppliedDelta) {
        for t in applied.added.iter().rev() {
            self.remove(t);
        }
        for &(t, oi, ii) in applied.removed.iter().rev() {
            if !self.triples.insert(t) {
                continue;
            }
            match self.outgoing.entry(t.subject) {
                Entry::Occupied(mut e) => e.get_mut().insert(oi, (t.predicate, t.object)),
                Entry::Vacant(e) => {
                    self.subject_order.push(t.subject);
                    e.insert(vec![(t.predicate, t.object)]);
                }
            }
            self.incoming
                .entry(t.object)
                .or_default()
                .insert(ii, (t.subject, t.predicate));
        }
    }

    /// All triples (arbitrary order).
    pub fn triples(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// All triples sorted by (subject, predicate, object) id — deterministic
    /// order for serialization and tests.
    pub fn triples_sorted(&self) -> Vec<Triple> {
        let mut v: Vec<_> = self.triples.iter().copied().collect();
        v.sort();
        v
    }

    /// Iterates over triples matching a pattern of optional positions —
    /// the classic triple-store lookup API. Uses the subject index when
    /// the subject is bound, the object index when only the object is,
    /// and scans otherwise.
    ///
    /// ```
    /// use shapex_rdf::turtle;
    /// let ds = turtle::parse(
    ///     "@prefix e: <http://e/> . e:a e:p 1 . e:a e:q 2 . e:b e:p 1 ."
    /// ).unwrap();
    /// let a = ds.iri("http://e/a").unwrap();
    /// let p = ds.iri("http://e/p").unwrap();
    /// assert_eq!(ds.graph.match_pattern(Some(a), None, None).count(), 2);
    /// assert_eq!(ds.graph.match_pattern(None, Some(p), None).count(), 2);
    /// assert_eq!(ds.graph.match_pattern(Some(a), Some(p), None).count(), 1);
    /// ```
    pub fn match_pattern(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> Box<dyn Iterator<Item = Triple> + '_> {
        let post = move |t: &Triple| {
            predicate.is_none_or(|p| p == t.predicate) && object.is_none_or(|o| o == t.object)
        };
        match (subject, object) {
            (Some(s), _) => Box::new(
                self.neighbourhood(s)
                    .iter()
                    .map(move |&(p, o)| Triple::new(s, p, o))
                    .filter(move |t| post(t)),
            ),
            (None, Some(o)) => Box::new(
                self.incoming(o)
                    .iter()
                    .map(move |&(s, p)| Triple::new(s, p, o))
                    .filter(move |t| post(t)),
            ),
            (None, None) => Box::new(self.triples.iter().copied().filter(move |t| post(t))),
        }
    }

    /// Objects of triples `(s, p, ·)`.
    pub fn objects(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.neighbourhood(s)
            .iter()
            .filter(move |(pred, _)| *pred == p)
            .map(|(_, o)| *o)
    }
}

/// A graph bundled with the pool it interns into. Most user-facing entry
/// points (parsers, workload generators) produce this.
#[derive(Debug, Default)]
pub struct Dataset {
    /// The term interner backing the graph.
    pub pool: TermPool,
    /// The triple store.
    pub graph: Graph,
}

impl Dataset {
    /// Creates an empty dataset with a fresh pool.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Inserts a triple of owned terms.
    pub fn insert(&mut self, subject: Term, predicate: Term, object: Term) -> Triple {
        self.graph
            .insert_terms(&mut self.pool, subject, predicate, object)
    }

    /// Looks up the id of a node term, if it occurs in the pool.
    pub fn node(&self, term: &Term) -> Option<TermId> {
        self.pool.get(term)
    }

    /// Looks up the id of an IRI node.
    pub fn iri(&self, iri: &str) -> Option<TermId> {
        self.pool.get(&Term::iri(iri))
    }

    /// [`Graph::apply_delta`] on the bundled graph.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> AppliedDelta {
        self.graph.apply_delta(delta)
    }

    /// [`Graph::try_apply_delta`] on the bundled graph: all-or-nothing
    /// application with an error channel for injected mid-delta failures.
    pub fn try_apply_delta(&mut self, delta: &GraphDelta) -> Result<AppliedDelta, DeltaApplyError> {
        self.graph.try_apply_delta(delta)
    }

    /// [`Graph::revert_delta`] on the bundled graph.
    pub fn revert_delta(&mut self, applied: &AppliedDelta) {
        self.graph.revert_delta(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn abc(pool: &mut TermPool) -> (TermId, TermId, TermId) {
        (
            pool.intern_iri("http://e/a"),
            pool.intern_iri("http://e/b"),
            pool.intern_iri("http://e/c"),
        )
    }

    #[test]
    fn insert_dedups() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        assert!(g.insert(Triple::new(a, b, c)));
        assert!(!g.insert(Triple::new(a, b, c)));
        assert_eq!(g.len(), 1);
        assert_eq!(g.neighbourhood(a).len(), 1);
    }

    #[test]
    fn neighbourhood_collects_all_subject_arcs() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let d = pool.intern_iri("http://e/d");
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, b, d));
        g.insert(Triple::new(a, d, c));
        g.insert(Triple::new(d, b, c)); // different subject
        assert_eq!(g.neighbourhood(a).len(), 3);
        assert_eq!(g.neighbourhood(d).len(), 1);
        assert_eq!(g.neighbourhood(c).len(), 0);
    }

    #[test]
    fn incoming_index_tracks_objects() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(c, b, a));
        assert_eq!(g.incoming(c), &[(a, b)]);
        assert_eq!(g.incoming(a), &[(c, b)]);
        assert_eq!(g.incoming(b), &[]);
    }

    #[test]
    fn subjects_in_insertion_order() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        g.insert(Triple::new(c, b, a));
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(c, a, b));
        let subs: Vec<_> = g.subjects().collect();
        assert_eq!(subs, vec![c, a]);
    }

    #[test]
    fn objects_filters_by_predicate() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let d = pool.intern_iri("http://e/d");
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, b, d));
        g.insert(Triple::new(a, d, d));
        let objs: Vec<_> = g.objects(a, b).collect();
        assert_eq!(objs, vec![c, d]);
    }

    #[test]
    fn dataset_insert_and_lookup() {
        let mut ds = Dataset::new();
        ds.insert(
            Term::iri("http://e/john"),
            Term::iri(crate::vocab::foaf::AGE),
            Term::Literal(Literal::integer(23)),
        );
        let john = ds.iri("http://e/john").unwrap();
        assert_eq!(ds.graph.neighbourhood(john).len(), 1);
        assert!(ds.iri("http://e/nobody").is_none());
    }

    #[test]
    fn match_pattern_uses_all_index_paths() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let d = pool.intern_iri("http://e/d");
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, d, c));
        g.insert(Triple::new(d, b, c));
        g.insert(Triple::new(d, b, a));
        // subject-bound
        assert_eq!(g.match_pattern(Some(a), None, None).count(), 2);
        // object-bound
        assert_eq!(g.match_pattern(None, None, Some(c)).count(), 3);
        // predicate-only scan
        assert_eq!(g.match_pattern(None, Some(b), None).count(), 3);
        // fully bound
        assert_eq!(g.match_pattern(Some(d), Some(b), Some(a)).count(), 1);
        assert_eq!(g.match_pattern(Some(c), None, None).count(), 0);
        // unconstrained = all triples
        assert_eq!(g.match_pattern(None, None, None).count(), 4);
    }

    #[test]
    fn remove_updates_indexes() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, b, a));
        assert!(g.remove(&Triple::new(a, b, c)));
        assert!(!g.remove(&Triple::new(a, b, c))); // already gone
        assert_eq!(g.len(), 1);
        assert_eq!(g.neighbourhood(a), &[(b, a)]);
        assert_eq!(g.incoming(c), &[]);
        assert!(!g.contains(&Triple::new(a, b, c)));
        // Remove the last triple: neighbourhood empties, no panic.
        assert!(g.remove(&Triple::new(a, b, a)));
        assert!(g.is_empty());
        assert_eq!(g.neighbourhood(a), &[]);
    }

    #[test]
    fn subjects_skip_emptied_entries() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(c, b, a));
        g.remove(&Triple::new(a, b, c));
        assert_eq!(g.subjects().collect::<Vec<_>>(), vec![c]);
        // Re-inserting restores the subject at its original position.
        g.insert(Triple::new(a, b, b));
        assert_eq!(g.subjects().collect::<Vec<_>>(), vec![a, c]);
    }

    #[test]
    fn delta_apply_then_revert_is_structural_identity() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let d = pool.intern_iri("http://e/d");
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, b, d));
        g.insert(Triple::new(a, d, c));
        g.insert(Triple::new(c, b, a));
        let before_out: Vec<_> = g.neighbourhood(a).to_vec();
        let before_in: Vec<_> = g.incoming(c).to_vec();
        let before_subs: Vec<_> = g.subjects().collect();

        let delta = GraphDelta {
            // a b c sits at outgoing index 0 — removal shifts the rest.
            removed: vec![Triple::new(a, b, c), Triple::new(c, b, a)],
            added: vec![Triple::new(d, b, a), Triple::new(a, b, c)],
        };
        let applied = g.apply_delta(&delta);
        assert_eq!(applied.removed_count(), 2);
        assert_eq!(applied.added_count(), 2);
        assert!(g.contains(&Triple::new(d, b, a)));
        assert!(!g.contains(&Triple::new(c, b, a)));
        // Removed-then-re-added triple is present, now at the tail.
        assert_eq!(g.neighbourhood(a).last(), Some(&(b, c)));

        g.revert_delta(&applied);
        assert_eq!(g.neighbourhood(a), before_out.as_slice());
        assert_eq!(g.incoming(c), before_in.as_slice());
        assert_eq!(g.subjects().collect::<Vec<_>>(), before_subs);
        assert_eq!(g.len(), 4);
        assert!(!g.contains(&Triple::new(d, b, a)));
    }

    #[test]
    fn delta_noop_operations_are_skipped() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        let delta = GraphDelta {
            removed: vec![Triple::new(c, b, a)], // absent
            added: vec![Triple::new(a, b, c)],   // already present
        };
        let applied = g.apply_delta(&delta);
        assert!(applied.is_noop());
        g.revert_delta(&applied);
        assert_eq!(g.len(), 1);
        assert_eq!(g.neighbourhood(a), &[(b, c)]);
    }

    #[test]
    fn triples_sorted_is_deterministic() {
        let mut ds = Dataset::new();
        ds.insert(
            Term::iri("http://e/b"),
            Term::iri("http://e/p"),
            Term::iri("http://e/o"),
        );
        ds.insert(
            Term::iri("http://e/a"),
            Term::iri("http://e/p"),
            Term::iri("http://e/o"),
        );
        let s1 = ds.graph.triples_sorted();
        let s2 = ds.graph.triples_sorted();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 2);
    }

    #[cfg(feature = "fail-inject")]
    #[test]
    fn injected_mid_delta_failure_rolls_back_exactly() {
        use crate::failpoint::{self, Action};
        use crate::{delta, turtle, writer};

        let mut ds = turtle::parse(
            "@prefix e: <http://e/> .\n\
             e:a e:p e:b, e:c .\n\
             e:b e:p e:d .\n",
        )
        .unwrap();
        let d = delta::parse(
            "@prefix e: <http://e/> .\n\
             - e:a e:p e:b .\n\
             - e:b e:p e:d .\n\
             + e:a e:q e:z .\n\
             + e:b e:q e:z .\n",
            &mut ds.pool,
        )
        .unwrap();
        let before = writer::to_ntriples(&ds.graph, &ds.pool);

        // Fail on the third of four operations: both removals land, then
        // the first addition trips — a genuinely half-applied delta that
        // must be rolled back to a byte-identical graph.
        failpoint::set_after("delta-apply", Action::Error("disk full".into()), 2, Some(1));
        let err = ds.try_apply_delta(&d).unwrap_err();
        assert_eq!(err.op_index, 2);
        assert_eq!(err.operations, 4);
        assert!(err.message.contains("disk full"), "{}", err.message);
        assert_eq!(writer::to_ntriples(&ds.graph, &ds.pool), before);

        // The times budget is spent, so the same delta now applies fully —
        // and a revert restores the original serialization again.
        let applied = ds.try_apply_delta(&d).unwrap();
        assert_eq!(applied.removed_count(), 2);
        assert_eq!(applied.added_count(), 2);
        ds.revert_delta(&applied);
        assert_eq!(writer::to_ntriples(&ds.graph, &ds.pool), before);
        failpoint::reset();
    }
}

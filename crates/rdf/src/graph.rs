//! The in-memory graph store.
//!
//! A graph `Σ` is a *set* of triples `⟨s, p, o⟩` (paper §2). The store keeps
//! a deduplicating triple set plus adjacency indexes; the operation the
//! validator lives on is [`Graph::neighbourhood`], the paper's `Σg_n` — all
//! triples with subject `n` — served as a slice borrow. An object-side
//! index supports the paper's §10 "inverse arcs" extension.
//!
//! ## Memory layout
//!
//! Adjacency is a struct-of-arrays design built for million-triple graphs:
//! [`TermId`]s are dense, so per-node arc lists are addressed by a plain
//! `Vec` of spans indexed by the id — no hashing on the `neighbourhood`
//! hot path. A span is either *frozen* (a `(start, len)` window into one
//! shared contiguous arc arena, CSR-style) or *owned* (a private `Vec` for
//! nodes still being built or mutated by deltas). Bulk loads finish with
//! [`Graph::compact`], which folds every owned list into the arena so a
//! full-typing run scans contiguous memory; a later
//! [`Graph::apply_delta`] thaws only the nodes it actually touches.
//! Neither representation is observable through the API: `neighbourhood`
//! and `incoming` return the same slices, in the same insertion order,
//! frozen or owned.

use rustc_hash::{FxHashMap, FxHashSet};

use crate::delta::{AppliedDelta, DeltaApplyError, GraphDelta};
use crate::pool::{TermId, TermPool};
use crate::term::Term;

/// A triple of interned term ids: subject, predicate, object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject term id.
    pub subject: TermId,
    /// Predicate term id.
    pub predicate: TermId,
    /// Object term id.
    pub object: TermId,
}

impl Triple {
    /// Builds a triple from interned ids.
    pub fn new(subject: TermId, predicate: TermId, object: TermId) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }
}

/// An outgoing arc `(predicate, object)` in some node's neighbourhood.
pub type Arc = (TermId, TermId);

/// One node's adjacency entry: never used, a frozen window into the shared
/// arena, or a privately owned list (building / post-mutation).
///
/// `Unused` vs an *emptied* list is a real distinction: a subject whose
/// every triple was removed keeps its (empty) entry, and with it its
/// position in the subject iteration order — see [`Graph::remove`].
#[derive(Debug, Default)]
enum Span {
    /// No entry was ever created for this node.
    #[default]
    Unused,
    /// `arena[start .. start + len]`.
    Frozen {
        /// First arc in the arena.
        start: u32,
        /// Number of arcs.
        len: u32,
    },
    /// A mutable per-node list.
    Owned(Vec<Arc>),
}

/// One direction's adjacency: per-node spans over a shared arc arena,
/// indexed directly by the dense [`TermId`].
#[derive(Debug, Default)]
struct Adjacency {
    arena: Vec<Arc>,
    spans: Vec<Span>,
}

impl Adjacency {
    fn entries(&self, n: TermId) -> &[Arc] {
        match self.spans.get(n.index()) {
            Some(&Span::Frozen { start, len }) => {
                &self.arena[start as usize..start as usize + len as usize]
            }
            Some(Span::Owned(v)) => v,
            _ => &[],
        }
    }

    /// Has this node ever had an entry (even one since emptied)?
    fn is_used(&self, n: TermId) -> bool {
        !matches!(self.spans.get(n.index()), None | Some(Span::Unused))
    }

    fn ensure(&mut self, n: TermId) {
        if self.spans.len() <= n.index() {
            self.spans.resize_with(n.index() + 1, Span::default);
        }
    }

    /// The node's mutable list, thawing a frozen span (one copy of its
    /// arena window; the window becomes dead arena space until the next
    /// [`Adjacency::compact`]).
    fn list_mut(&mut self, n: TermId) -> &mut Vec<Arc> {
        self.ensure(n);
        let slot = &mut self.spans[n.index()];
        if let Span::Frozen { start, len } = *slot {
            let window = &self.arena[start as usize..start as usize + len as usize];
            *slot = Span::Owned(window.to_vec());
        } else if matches!(slot, Span::Unused) {
            *slot = Span::Owned(Vec::new());
        }
        match &mut self.spans[n.index()] {
            Span::Owned(v) => v,
            _ => unreachable!("slot was just thawed"),
        }
    }

    /// Appends an arc; returns `true` when this created the node's entry.
    fn push(&mut self, n: TermId, arc: Arc) -> bool {
        self.ensure(n);
        let fresh = matches!(self.spans[n.index()], Span::Unused);
        self.list_mut(n).push(arc);
        fresh
    }

    /// Removes the entries at `positions` (ascending indices into the
    /// node's current list) in one compaction sweep — O(d), not
    /// O(d · |positions|).
    fn remove_positions(&mut self, n: TermId, positions: &[u32]) {
        let v = self.list_mut(n);
        let mut keep = 0usize;
        let mut pi = 0usize;
        for i in 0..v.len() {
            if pi < positions.len() && positions[pi] as usize == i {
                pi += 1;
                continue;
            }
            v[keep] = v[i];
            keep += 1;
        }
        v.truncate(keep);
    }

    /// Re-inserts arcs at their recorded positions (ascending, positions
    /// relative to the *restored* list) in one merge sweep.
    fn restore_positions(&mut self, n: TermId, inserts: &[(u32, Arc)]) {
        let v = self.list_mut(n);
        let final_len = v.len() + inserts.len();
        let mut merged = Vec::with_capacity(final_len);
        let mut vi = 0usize;
        let mut ii = 0usize;
        for pos in 0..final_len {
            if ii < inserts.len() && (inserts[ii].0 as usize <= pos || vi >= v.len()) {
                merged.push(inserts[ii].1);
                ii += 1;
            } else {
                merged.push(v[vi]);
                vi += 1;
            }
        }
        *v = merged;
    }

    /// Folds every span into one freshly packed contiguous arena (node-id
    /// order), turning all owned lists and stale frozen windows into dense
    /// CSR storage.
    fn compact(&mut self) {
        let total: usize = self
            .spans
            .iter()
            .map(|s| match s {
                Span::Unused => 0,
                Span::Frozen { len, .. } => *len as usize,
                Span::Owned(v) => v.len(),
            })
            .sum();
        u32::try_from(total).expect("adjacency arena overflow");
        let old = std::mem::take(&mut self.arena);
        let mut arena = Vec::with_capacity(total);
        for slot in &mut self.spans {
            let start = arena.len() as u32;
            match slot {
                Span::Unused => continue,
                Span::Frozen { start: s, len } => {
                    arena.extend_from_slice(&old[*s as usize..*s as usize + *len as usize]);
                }
                Span::Owned(v) => arena.extend_from_slice(v),
            }
            let len = arena.len() as u32 - start;
            *slot = Span::Frozen { start, len };
        }
        self.arena = arena;
    }
}

/// An in-memory RDF graph over a shared [`TermPool`].
#[derive(Debug, Default)]
pub struct Graph {
    triples: FxHashSet<Triple>,
    /// subject → insertion-ordered (predicate, object) arcs
    outgoing: Adjacency,
    /// object → insertion-ordered (subject, predicate) arcs; inverse arcs
    incoming: Adjacency,
    /// insertion-ordered subjects, for deterministic iteration
    subject_order: Vec<TermId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Pre-sizes the triple set for a bulk load of `additional` triples.
    pub fn reserve(&mut self, additional: usize) {
        self.triples.reserve(additional);
    }

    /// Inserts a triple. Returns `true` if it was not already present
    /// (graphs are sets; duplicate inserts are no-ops).
    pub fn insert(&mut self, triple: Triple) -> bool {
        if !self.triples.insert(triple) {
            return false;
        }
        if self
            .outgoing
            .push(triple.subject, (triple.predicate, triple.object))
        {
            self.subject_order.push(triple.subject);
        }
        self.incoming
            .push(triple.object, (triple.subject, triple.predicate));
        true
    }

    /// Removes a triple. Returns `true` if it was present. Subject order
    /// is preserved; a subject whose last triple is removed keeps its
    /// position internally (it disappears from [`Graph::subjects`] while
    /// its neighbourhood is empty, and reappears at the same position if a
    /// triple is re-inserted for it).
    pub fn remove(&mut self, triple: &Triple) -> bool {
        if !self.triples.remove(triple) {
            return false;
        }
        self.outgoing
            .list_mut(triple.subject)
            .retain(|&(p, o)| (p, o) != (triple.predicate, triple.object));
        self.incoming
            .list_mut(triple.object)
            .retain(|&(s, p)| (s, p) != (triple.subject, triple.predicate));
        true
    }

    /// Packs all adjacency lists into contiguous arena storage (and trims
    /// the triple set) — call once after a bulk load. Purely a memory-
    /// layout operation: every observable order and slice is unchanged,
    /// and later mutations transparently thaw the nodes they touch.
    pub fn compact(&mut self) {
        self.outgoing.compact();
        self.incoming.compact();
        self.triples.shrink_to_fit();
        self.subject_order.shrink_to_fit();
    }

    /// Convenience: interns three terms into `pool` and inserts the triple.
    pub fn insert_terms(
        &mut self,
        pool: &mut TermPool,
        subject: Term,
        predicate: Term,
        object: Term,
    ) -> Triple {
        debug_assert!(subject.is_valid_subject(), "literal in subject position");
        debug_assert!(predicate.is_valid_predicate(), "non-IRI predicate");
        let t = Triple::new(
            pool.intern(subject),
            pool.intern(predicate),
            pool.intern(object),
        );
        self.insert(t);
        t
    }

    /// Membership test.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.triples.contains(triple)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// The paper's `Σg_n`: all `(predicate, object)` arcs leaving `n`,
    /// in insertion order. Empty slice when `n` has no outgoing triples.
    pub fn neighbourhood(&self, n: TermId) -> &[Arc] {
        self.outgoing.entries(n)
    }

    /// Incoming arcs `(subject, predicate)` arriving at `n`
    /// (the §10 inverse-arc extension's data source).
    pub fn incoming(&self, n: TermId) -> &[(TermId, TermId)] {
        self.incoming.entries(n)
    }

    /// Distinct subjects with at least one outgoing triple, in insertion
    /// order. Subjects whose every triple has been removed are skipped, so
    /// a mutated graph iterates identically to a freshly built one with
    /// the same triples.
    pub fn subjects(&self) -> impl Iterator<Item = TermId> + '_ {
        self.subject_order
            .iter()
            .copied()
            .filter(|&s| !self.neighbourhood(s).is_empty())
    }

    /// Applies a [`GraphDelta`]: removals first, then additions. Removing
    /// an absent triple or adding a present one is a no-op. Returns an
    /// [`AppliedDelta`] recording the operations that took effect and the
    /// pre-delta adjacency positions of the removals, which
    /// [`Graph::revert_delta`] consumes to restore the graph exactly.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> AppliedDelta {
        self.try_apply_delta(delta)
            .expect("delta application cannot fail without fault injection")
    }

    /// [`Graph::apply_delta`] with an error channel, and **all-or-nothing**
    /// semantics: if an operation fails mid-delta (today that only happens
    /// through the `delta-apply` failpoint, modelling an I/O error in a
    /// persistent backend), every operation already performed is reverted
    /// and the graph is returned to a state *structurally identical* to its
    /// pre-delta one — same adjacency order, same subject iteration order —
    /// before the error is surfaced. A caller observing
    /// [`Err`] may therefore keep serving from the graph as if the delta
    /// had never been attempted.
    ///
    /// Removals are accounted per operation but applied physically in one
    /// batched compaction sweep per touched node: positions are resolved
    /// against a per-node index of the pre-delta list, so a k-triple burst
    /// on a d-arc node costs O(d + k log k) rather than the O(k·d)
    /// scan-and-splice a per-triple `Vec::remove` would pay.
    pub fn try_apply_delta(&mut self, delta: &GraphDelta) -> Result<AppliedDelta, DeltaApplyError> {
        let mut applied = AppliedDelta::default();
        let total = delta.removed.len() + delta.added.len();

        // Removal phase. (p, o) is unique within a subject's list (the
        // graph is a set), so a lazily built pair → position index over the
        // pre-delta list resolves each removal exactly; nothing moves
        // physically until every removal op is accounted.
        let mut out_index: FxHashMap<TermId, FxHashMap<Arc, u32>> = FxHashMap::default();
        let mut inc_index: FxHashMap<TermId, FxHashMap<Arc, u32>> = FxHashMap::default();
        let mut out_removed: FxHashMap<TermId, Vec<u32>> = FxHashMap::default();
        let mut inc_removed: FxHashMap<TermId, Vec<u32>> = FxHashMap::default();
        let index_of = |arcs: &[Arc]| -> FxHashMap<Arc, u32> {
            arcs.iter()
                .enumerate()
                .map(|(i, &a)| (a, i as u32))
                .collect()
        };
        for (op, &t) in delta.removed.iter().enumerate() {
            if let Some(message) = crate::failpoint::check("delta-apply") {
                // Nothing has physically moved yet: only the triple set
                // shrank. Restore it and the graph is byte-identical.
                for &(r, _, _) in &applied.removed {
                    self.triples.insert(r);
                }
                return Err(DeltaApplyError {
                    op_index: op,
                    operations: total,
                    message,
                });
            }
            if !self.triples.remove(&t) {
                continue;
            }
            let oi = *out_index
                .entry(t.subject)
                .or_insert_with(|| index_of(self.outgoing.entries(t.subject)))
                .get(&(t.predicate, t.object))
                .expect("triple present but arc unindexed");
            let ii = *inc_index
                .entry(t.object)
                .or_insert_with(|| index_of(self.incoming.entries(t.object)))
                .get(&(t.subject, t.predicate))
                .expect("triple present but incoming arc unindexed");
            out_removed.entry(t.subject).or_default().push(oi);
            inc_removed.entry(t.object).or_default().push(ii);
            applied.removed.push((t, oi as usize, ii as usize));
        }
        for (n, mut positions) in out_removed {
            positions.sort_unstable();
            self.outgoing.remove_positions(n, &positions);
        }
        for (n, mut positions) in inc_removed {
            positions.sort_unstable();
            self.incoming.remove_positions(n, &positions);
        }

        // Addition phase.
        for (k, &t) in delta.added.iter().enumerate() {
            if let Some(message) = crate::failpoint::check("delta-apply") {
                // Removals are physical by now; the generic revert undoes
                // both phases exactly.
                self.revert_delta(&applied);
                return Err(DeltaApplyError {
                    op_index: delta.removed.len() + k,
                    operations: total,
                    message,
                });
            }
            if self.insert(t) {
                applied.added.push(t);
            }
        }
        Ok(applied)
    }

    /// Undoes an [`apply_delta`](Graph::apply_delta): removes the triples
    /// it added and re-inserts the triples it removed at their original
    /// adjacency positions. After the call the graph is structurally
    /// identical to its pre-apply state — same neighbourhood order, same
    /// [`Graph::subjects`] order — so downstream results (reports, stats)
    /// are byte-identical, not merely set-equal.
    ///
    /// Like [`Graph::try_apply_delta`], the work is batched per touched
    /// node: one retain sweep to drop the added arcs, one merge sweep to
    /// re-seat the removed ones, keeping large-delta revert (quarantine
    /// rebuilds, bench restores) linear in the touched neighbourhoods.
    pub fn revert_delta(&mut self, applied: &AppliedDelta) {
        // Drop the added triples.
        let mut out_gone: FxHashMap<TermId, FxHashSet<Arc>> = FxHashMap::default();
        let mut inc_gone: FxHashMap<TermId, FxHashSet<Arc>> = FxHashMap::default();
        for t in applied.added.iter().rev() {
            if !self.triples.remove(t) {
                continue;
            }
            out_gone
                .entry(t.subject)
                .or_default()
                .insert((t.predicate, t.object));
            inc_gone
                .entry(t.object)
                .or_default()
                .insert((t.subject, t.predicate));
        }
        for (n, gone) in out_gone {
            self.outgoing.list_mut(n).retain(|a| !gone.contains(a));
        }
        for (n, gone) in inc_gone {
            self.incoming.list_mut(n).retain(|a| !gone.contains(a));
        }

        // Re-seat the removed triples at their pre-delta positions.
        let mut out_back: FxHashMap<TermId, Vec<(u32, Arc)>> = FxHashMap::default();
        let mut inc_back: FxHashMap<TermId, Vec<(u32, Arc)>> = FxHashMap::default();
        for &(t, oi, ii) in &applied.removed {
            if !self.triples.insert(t) {
                continue;
            }
            out_back
                .entry(t.subject)
                .or_default()
                .push((oi as u32, (t.predicate, t.object)));
            inc_back
                .entry(t.object)
                .or_default()
                .push((ii as u32, (t.subject, t.predicate)));
        }
        for (n, mut inserts) in out_back {
            inserts.sort_unstable_by_key(|&(pos, _)| pos);
            let fresh = !self.outgoing.is_used(n);
            self.outgoing.restore_positions(n, &inserts);
            if fresh {
                self.subject_order.push(n);
            }
        }
        for (n, mut inserts) in inc_back {
            inserts.sort_unstable_by_key(|&(pos, _)| pos);
            self.incoming.restore_positions(n, &inserts);
        }
    }

    /// All triples (arbitrary order).
    pub fn triples(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// All triples sorted by (subject, predicate, object) id — deterministic
    /// order for serialization and tests.
    pub fn triples_sorted(&self) -> Vec<Triple> {
        let mut v: Vec<_> = self.triples.iter().copied().collect();
        v.sort();
        v
    }

    /// Iterates over triples matching a pattern of optional positions —
    /// the classic triple-store lookup API. Uses the subject index when
    /// the subject is bound, the object index when only the object is,
    /// and scans otherwise.
    ///
    /// ```
    /// use shapex_rdf::turtle;
    /// let ds = turtle::parse(
    ///     "@prefix e: <http://e/> . e:a e:p 1 . e:a e:q 2 . e:b e:p 1 ."
    /// ).unwrap();
    /// let a = ds.iri("http://e/a").unwrap();
    /// let p = ds.iri("http://e/p").unwrap();
    /// assert_eq!(ds.graph.match_pattern(Some(a), None, None).count(), 2);
    /// assert_eq!(ds.graph.match_pattern(None, Some(p), None).count(), 2);
    /// assert_eq!(ds.graph.match_pattern(Some(a), Some(p), None).count(), 1);
    /// ```
    pub fn match_pattern(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> Box<dyn Iterator<Item = Triple> + '_> {
        let post = move |t: &Triple| {
            predicate.is_none_or(|p| p == t.predicate) && object.is_none_or(|o| o == t.object)
        };
        match (subject, object) {
            (Some(s), _) => Box::new(
                self.neighbourhood(s)
                    .iter()
                    .map(move |&(p, o)| Triple::new(s, p, o))
                    .filter(move |t| post(t)),
            ),
            (None, Some(o)) => Box::new(
                self.incoming(o)
                    .iter()
                    .map(move |&(s, p)| Triple::new(s, p, o))
                    .filter(move |t| post(t)),
            ),
            (None, None) => Box::new(self.triples.iter().copied().filter(move |t| post(t))),
        }
    }

    /// Objects of triples `(s, p, ·)`.
    pub fn objects(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.neighbourhood(s)
            .iter()
            .filter(move |(pred, _)| *pred == p)
            .map(|(_, o)| *o)
    }
}

/// A graph bundled with the pool it interns into. Most user-facing entry
/// points (parsers, workload generators) produce this.
#[derive(Debug, Default)]
pub struct Dataset {
    /// The term interner backing the graph.
    pub pool: TermPool,
    /// The triple store.
    pub graph: Graph,
}

impl Dataset {
    /// Creates an empty dataset with a fresh pool.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Inserts a triple of owned terms.
    pub fn insert(&mut self, subject: Term, predicate: Term, object: Term) -> Triple {
        self.graph
            .insert_terms(&mut self.pool, subject, predicate, object)
    }

    /// Looks up the id of a node term, if it occurs in the pool.
    pub fn node(&self, term: &Term) -> Option<TermId> {
        self.pool.get(term)
    }

    /// Looks up the id of an IRI node.
    pub fn iri(&self, iri: &str) -> Option<TermId> {
        self.pool.get(&Term::iri(iri))
    }

    /// [`Graph::compact`] on the bundled graph.
    pub fn compact(&mut self) {
        self.graph.compact();
    }

    /// [`Graph::apply_delta`] on the bundled graph.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> AppliedDelta {
        self.graph.apply_delta(delta)
    }

    /// [`Graph::try_apply_delta`] on the bundled graph: all-or-nothing
    /// application with an error channel for injected mid-delta failures.
    pub fn try_apply_delta(&mut self, delta: &GraphDelta) -> Result<AppliedDelta, DeltaApplyError> {
        self.graph.try_apply_delta(delta)
    }

    /// [`Graph::revert_delta`] on the bundled graph.
    pub fn revert_delta(&mut self, applied: &AppliedDelta) {
        self.graph.revert_delta(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn abc(pool: &mut TermPool) -> (TermId, TermId, TermId) {
        (
            pool.intern_iri("http://e/a"),
            pool.intern_iri("http://e/b"),
            pool.intern_iri("http://e/c"),
        )
    }

    #[test]
    fn insert_dedups() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        assert!(g.insert(Triple::new(a, b, c)));
        assert!(!g.insert(Triple::new(a, b, c)));
        assert_eq!(g.len(), 1);
        assert_eq!(g.neighbourhood(a).len(), 1);
    }

    #[test]
    fn neighbourhood_collects_all_subject_arcs() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let d = pool.intern_iri("http://e/d");
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, b, d));
        g.insert(Triple::new(a, d, c));
        g.insert(Triple::new(d, b, c)); // different subject
        assert_eq!(g.neighbourhood(a).len(), 3);
        assert_eq!(g.neighbourhood(d).len(), 1);
        assert_eq!(g.neighbourhood(c).len(), 0);
    }

    #[test]
    fn incoming_index_tracks_objects() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(c, b, a));
        assert_eq!(g.incoming(c), &[(a, b)]);
        assert_eq!(g.incoming(a), &[(c, b)]);
        assert_eq!(g.incoming(b), &[]);
    }

    #[test]
    fn subjects_in_insertion_order() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        g.insert(Triple::new(c, b, a));
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(c, a, b));
        let subs: Vec<_> = g.subjects().collect();
        assert_eq!(subs, vec![c, a]);
    }

    #[test]
    fn objects_filters_by_predicate() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let d = pool.intern_iri("http://e/d");
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, b, d));
        g.insert(Triple::new(a, d, d));
        let objs: Vec<_> = g.objects(a, b).collect();
        assert_eq!(objs, vec![c, d]);
    }

    #[test]
    fn dataset_insert_and_lookup() {
        let mut ds = Dataset::new();
        ds.insert(
            Term::iri("http://e/john"),
            Term::iri(crate::vocab::foaf::AGE),
            Term::Literal(Literal::integer(23)),
        );
        let john = ds.iri("http://e/john").unwrap();
        assert_eq!(ds.graph.neighbourhood(john).len(), 1);
        assert!(ds.iri("http://e/nobody").is_none());
    }

    #[test]
    fn match_pattern_uses_all_index_paths() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let d = pool.intern_iri("http://e/d");
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, d, c));
        g.insert(Triple::new(d, b, c));
        g.insert(Triple::new(d, b, a));
        // subject-bound
        assert_eq!(g.match_pattern(Some(a), None, None).count(), 2);
        // object-bound
        assert_eq!(g.match_pattern(None, None, Some(c)).count(), 3);
        // predicate-only scan
        assert_eq!(g.match_pattern(None, Some(b), None).count(), 3);
        // fully bound
        assert_eq!(g.match_pattern(Some(d), Some(b), Some(a)).count(), 1);
        assert_eq!(g.match_pattern(Some(c), None, None).count(), 0);
        // unconstrained = all triples
        assert_eq!(g.match_pattern(None, None, None).count(), 4);
    }

    #[test]
    fn remove_updates_indexes() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, b, a));
        assert!(g.remove(&Triple::new(a, b, c)));
        assert!(!g.remove(&Triple::new(a, b, c))); // already gone
        assert_eq!(g.len(), 1);
        assert_eq!(g.neighbourhood(a), &[(b, a)]);
        assert_eq!(g.incoming(c), &[]);
        assert!(!g.contains(&Triple::new(a, b, c)));
        // Remove the last triple: neighbourhood empties, no panic.
        assert!(g.remove(&Triple::new(a, b, a)));
        assert!(g.is_empty());
        assert_eq!(g.neighbourhood(a), &[]);
    }

    #[test]
    fn subjects_skip_emptied_entries() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(c, b, a));
        g.remove(&Triple::new(a, b, c));
        assert_eq!(g.subjects().collect::<Vec<_>>(), vec![c]);
        // Re-inserting restores the subject at its original position.
        g.insert(Triple::new(a, b, b));
        assert_eq!(g.subjects().collect::<Vec<_>>(), vec![a, c]);
    }

    /// Snapshot of every observable order the byte-identity discipline
    /// cares about.
    fn structure(g: &Graph, pool: &TermPool) -> (Vec<TermId>, Vec<Vec<Arc>>, Vec<Vec<Arc>>) {
        let all: Vec<TermId> = pool.iter().map(|(id, _)| id).collect();
        (
            g.subjects().collect(),
            all.iter().map(|&n| g.neighbourhood(n).to_vec()).collect(),
            all.iter().map(|&n| g.incoming(n).to_vec()).collect(),
        )
    }

    #[test]
    fn compact_is_structurally_invisible() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let d = pool.intern_iri("http://e/d");
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, d, c));
        g.insert(Triple::new(c, b, a));
        g.insert(Triple::new(d, b, c));
        g.remove(&Triple::new(a, d, c));
        let before = structure(&g, &pool);
        g.compact();
        assert_eq!(structure(&g, &pool), before);
        assert_eq!(g.len(), 3);
        // Mutation after compaction thaws transparently.
        g.insert(Triple::new(a, d, d));
        assert_eq!(g.neighbourhood(a), &[(b, c), (d, d)]);
        g.remove(&Triple::new(a, d, d));
        assert_eq!(structure(&g, &pool), before);
        // Compacting twice is idempotent.
        g.compact();
        g.compact();
        assert_eq!(structure(&g, &pool), before);
    }

    #[test]
    fn delta_apply_then_revert_is_structural_identity() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let d = pool.intern_iri("http://e/d");
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, b, d));
        g.insert(Triple::new(a, d, c));
        g.insert(Triple::new(c, b, a));
        let before_out: Vec<_> = g.neighbourhood(a).to_vec();
        let before_in: Vec<_> = g.incoming(c).to_vec();
        let before_subs: Vec<_> = g.subjects().collect();

        let delta = GraphDelta {
            // a b c sits at outgoing index 0 — removal shifts the rest.
            removed: vec![Triple::new(a, b, c), Triple::new(c, b, a)],
            added: vec![Triple::new(d, b, a), Triple::new(a, b, c)],
        };
        let applied = g.apply_delta(&delta);
        assert_eq!(applied.removed_count(), 2);
        assert_eq!(applied.added_count(), 2);
        assert!(g.contains(&Triple::new(d, b, a)));
        assert!(!g.contains(&Triple::new(c, b, a)));
        // Removed-then-re-added triple is present, now at the tail.
        assert_eq!(g.neighbourhood(a).last(), Some(&(b, c)));

        g.revert_delta(&applied);
        assert_eq!(g.neighbourhood(a), before_out.as_slice());
        assert_eq!(g.incoming(c), before_in.as_slice());
        assert_eq!(g.subjects().collect::<Vec<_>>(), before_subs);
        assert_eq!(g.len(), 4);
        assert!(!g.contains(&Triple::new(d, b, a)));
    }

    #[test]
    fn delta_round_trip_on_compacted_graph() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let d = pool.intern_iri("http://e/d");
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        g.insert(Triple::new(a, b, d));
        g.insert(Triple::new(c, b, a));
        g.compact();
        let before = structure(&g, &pool);
        let delta = GraphDelta {
            removed: vec![Triple::new(a, b, c)],
            added: vec![Triple::new(d, d, d), Triple::new(a, c, c)],
        };
        let applied = g.apply_delta(&delta);
        assert_eq!(g.neighbourhood(a), &[(b, d), (c, c)]);
        assert_eq!(g.subjects().collect::<Vec<_>>(), vec![a, c, d]);
        g.revert_delta(&applied);
        assert_eq!(structure(&g, &pool), before);
    }

    #[test]
    fn large_delta_on_high_fanout_node_round_trips_exactly() {
        // Regression (fail-pre-fix): per-triple `iter().position()` +
        // `Vec::remove` made large-delta apply/revert O(n·d); besides the
        // speed, this pins exact structural identity under a delta that
        // removes every other arc of a 100k-arc node and re-adds a block.
        let mut pool = TermPool::new();
        let hub = pool.intern_iri("http://e/hub");
        let p = pool.intern_iri("http://e/p");
        let mut g = Graph::new();
        let objs: Vec<TermId> = (0..100_000)
            .map(|i| pool.intern_iri(format!("http://e/o{i}").as_str()))
            .collect();
        for &o in &objs {
            g.insert(Triple::new(hub, p, o));
        }
        g.compact();
        let before = structure(&g, &pool);
        let delta = GraphDelta {
            removed: objs
                .iter()
                .step_by(2)
                .map(|&o| Triple::new(hub, p, o))
                .collect(),
            added: (0..1000).map(|i| Triple::new(objs[i], p, hub)).collect(),
        };
        let applied = g.apply_delta(&delta);
        assert_eq!(applied.removed_count(), 50_000);
        assert_eq!(applied.added_count(), 1000);
        assert_eq!(g.neighbourhood(hub).len(), 50_000);
        // Surviving arcs keep their relative order: the odd-indexed objects.
        assert_eq!(g.neighbourhood(hub)[0], (p, objs[1]));
        assert_eq!(g.neighbourhood(hub)[1], (p, objs[3]));
        g.revert_delta(&applied);
        assert_eq!(structure(&g, &pool), before);
        assert_eq!(g.len(), 100_000);
    }

    #[test]
    fn delta_noop_operations_are_skipped() {
        let mut pool = TermPool::new();
        let (a, b, c) = abc(&mut pool);
        let mut g = Graph::new();
        g.insert(Triple::new(a, b, c));
        let delta = GraphDelta {
            removed: vec![Triple::new(c, b, a)], // absent
            added: vec![Triple::new(a, b, c)],   // already present
        };
        let applied = g.apply_delta(&delta);
        assert!(applied.is_noop());
        g.revert_delta(&applied);
        assert_eq!(g.len(), 1);
        assert_eq!(g.neighbourhood(a), &[(b, c)]);
    }

    #[test]
    fn triples_sorted_is_deterministic() {
        let mut ds = Dataset::new();
        ds.insert(
            Term::iri("http://e/b"),
            Term::iri("http://e/p"),
            Term::iri("http://e/o"),
        );
        ds.insert(
            Term::iri("http://e/a"),
            Term::iri("http://e/p"),
            Term::iri("http://e/o"),
        );
        let s1 = ds.graph.triples_sorted();
        let s2 = ds.graph.triples_sorted();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 2);
    }

    #[cfg(feature = "fail-inject")]
    #[test]
    fn injected_mid_delta_failure_rolls_back_exactly() {
        use crate::failpoint::{self, Action};
        use crate::{delta, turtle, writer};

        let mut ds = turtle::parse(
            "@prefix e: <http://e/> .\n\
             e:a e:p e:b, e:c .\n\
             e:b e:p e:d .\n",
        )
        .unwrap();
        let d = delta::parse(
            "@prefix e: <http://e/> .\n\
             - e:a e:p e:b .\n\
             - e:b e:p e:d .\n\
             + e:a e:q e:z .\n\
             + e:b e:q e:z .\n",
            &mut ds.pool,
        )
        .unwrap();
        let before = writer::to_ntriples(&ds.graph, &ds.pool);

        // Fail on the third of four operations: both removals land, then
        // the first addition trips — a genuinely half-applied delta that
        // must be rolled back to a byte-identical graph.
        failpoint::set_after("delta-apply", Action::Error("disk full".into()), 2, Some(1));
        let err = ds.try_apply_delta(&d).unwrap_err();
        assert_eq!(err.op_index, 2);
        assert_eq!(err.operations, 4);
        assert!(err.message.contains("disk full"), "{}", err.message);
        assert_eq!(writer::to_ntriples(&ds.graph, &ds.pool), before);

        // The times budget is spent, so the same delta now applies fully —
        // and a revert restores the original serialization again.
        let applied = ds.try_apply_delta(&d).unwrap();
        assert_eq!(applied.removed_count(), 2);
        assert_eq!(applied.added_count(), 2);
        ds.revert_delta(&applied);
        assert_eq!(writer::to_ntriples(&ds.graph, &ds.pool), before);
        failpoint::reset();
    }

    #[cfg(feature = "fail-inject")]
    #[test]
    fn injected_mid_removal_failure_rolls_back_exactly() {
        // Fail during the *removal* phase (op 1 of 2): the first removal
        // has been accounted but nothing has physically moved — rollback
        // must restore the triple set without disturbing adjacency order.
        use crate::failpoint::{self, Action};
        use crate::{delta, turtle, writer};

        let mut ds = turtle::parse("@prefix e: <http://e/> .\ne:a e:p e:b, e:c, e:d .\n").unwrap();
        let d = delta::parse(
            "@prefix e: <http://e/> .\n- e:a e:p e:b .\n- e:a e:p e:d .\n",
            &mut ds.pool,
        )
        .unwrap();
        let before = writer::to_ntriples(&ds.graph, &ds.pool);
        let a = ds.iri("http://e/a").unwrap();
        let before_arcs = ds.graph.neighbourhood(a).to_vec();

        failpoint::set_after("delta-apply", Action::Error("disk full".into()), 1, Some(1));
        let err = ds.try_apply_delta(&d).unwrap_err();
        assert_eq!(err.op_index, 1);
        assert_eq!(writer::to_ntriples(&ds.graph, &ds.pool), before);
        assert_eq!(ds.graph.neighbourhood(a), before_arcs.as_slice());
        failpoint::reset();
    }
}

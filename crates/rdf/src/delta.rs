//! Graph deltas: batches of triple removals and additions.
//!
//! A [`GraphDelta`] describes a mutation of a [`Graph`](crate::graph::Graph)
//! as two sets of triples over pool-stable
//! [`TermId`](crate::pool::TermId)s: triples to remove
//! and triples to add. Applying a delta (see
//! [`Graph::apply_delta`](crate::graph::Graph::apply_delta)) performs the
//! removals first, then the additions, and returns an [`AppliedDelta`]
//! recording exactly which operations took effect — and *where* each
//! removed arc sat in its adjacency lists — so that
//! [`Graph::revert_delta`](crate::graph::Graph::revert_delta) can restore
//! the graph to a structurally identical state (same neighbourhood order,
//! same subject iteration order). That structural round-trip is what lets
//! the incremental-revalidation tests demand byte-identical reports after
//! `apply(δ); revert(δ)`.
//!
//! ## Delta file format
//!
//! [`parse`] reads a line-oriented text format built on Turtle:
//!
//! ```text
//! @prefix foaf: <http://xmlns.com/foaf/0.1/> .
//! @prefix : <http://example.org/> .
//! - :mary foaf:age 65 .
//! + :mary foaf:name "Mary" .
//! ```
//!
//! `@prefix` lines accumulate and scope over all subsequent operation
//! lines. Each remaining non-empty, non-comment line must start with `+`
//! (add) or `-` (remove) followed by a complete Turtle statement; a
//! statement may expand to several triples (e.g. via `;`/`,` lists), all
//! of which get the line's polarity.

use std::mem;

use crate::graph::{Dataset, Triple};
use crate::pool::TermPool;
use crate::turtle;

/// A batch graph mutation: triples to remove and triples to add.
///
/// Application order is removals first, then additions, so a triple listed
/// in both ends up present. Term ids must come from the same
/// [`TermPool`] as the graph the delta is applied to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Triples removed by this delta (applied first).
    pub removed: Vec<Triple>,
    /// Triples added by this delta (applied after the removals).
    pub added: Vec<Triple>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// True when the delta contains no operations.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }

    /// Total number of operations (removals plus additions).
    pub fn len(&self) -> usize {
        self.removed.len() + self.added.len()
    }

    /// The logical inverse: additions become removals and vice versa.
    ///
    /// Applying `delta` and then `delta.inverse()` restores the graph's
    /// *triple set*; to also restore adjacency order (needed for
    /// byte-identical reports) use
    /// [`Graph::revert_delta`](crate::graph::Graph::revert_delta) with the
    /// [`AppliedDelta`] instead.
    pub fn inverse(&self) -> GraphDelta {
        GraphDelta {
            removed: self.added.clone(),
            added: self.removed.clone(),
        }
    }
}

/// The effective result of applying a [`GraphDelta`] to a graph.
///
/// Records only the operations that actually changed the graph (removing
/// an absent triple or adding a present one is a no-op), plus the adjacency
/// positions each removed triple vacated, so
/// [`Graph::revert_delta`](crate::graph::Graph::revert_delta) can put
/// everything back exactly where it was.
#[derive(Debug, Clone, Default)]
pub struct AppliedDelta {
    /// Each effective removal with the outgoing- and incoming-list indexes
    /// it occupied in the *pre-delta* adjacency lists. Positions are
    /// resolved against the untouched lists (removals are batched and
    /// applied physically once per node), so revert can re-seat all of a
    /// node's arcs in a single merge pass.
    pub(crate) removed: Vec<(Triple, usize, usize)>,
    /// Each effective addition, in application order.
    pub(crate) added: Vec<Triple>,
}

impl AppliedDelta {
    /// Number of triples actually removed.
    pub fn removed_count(&self) -> usize {
        self.removed.len()
    }

    /// Number of triples actually added.
    pub fn added_count(&self) -> usize {
        self.added.len()
    }

    /// The triples actually removed, in application order.
    pub fn removed_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.removed.iter().map(|&(t, _, _)| t)
    }

    /// The triples actually added, in application order.
    pub fn added_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.added.iter().copied()
    }

    /// True when the delta changed nothing.
    pub fn is_noop(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

/// A syntax error in a delta file, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delta line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DeltaError {}

/// A failure while *applying* a delta to a graph (see
/// [`Graph::try_apply_delta`](crate::graph::Graph::try_apply_delta)).
/// By the time this error is observable the graph has already been rolled
/// back to its pre-delta state — the failed application is a no-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaApplyError {
    /// 0-based index of the operation (removals first, then additions)
    /// that failed.
    pub op_index: usize,
    /// Total operations in the delta.
    pub operations: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DeltaApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "delta apply failed at operation {}/{} (graph rolled back): {}",
            self.op_index + 1,
            self.operations,
            self.message
        )
    }
}

impl std::error::Error for DeltaApplyError {}

/// Parses the line-oriented delta format (see the [module docs](self))
/// into a [`GraphDelta`], interning all terms into `pool`.
///
/// ```
/// use shapex_rdf::{delta, pool::TermPool};
/// let mut pool = TermPool::new();
/// let d = delta::parse(
///     "@prefix e: <http://e/> .\n- e:a e:p 1 .\n+ e:a e:p 2 .\n",
///     &mut pool,
/// ).unwrap();
/// assert_eq!(d.removed.len(), 1);
/// assert_eq!(d.added.len(), 1);
/// ```
pub fn parse(input: &str, pool: &mut TermPool) -> Result<GraphDelta, DeltaError> {
    let mut prefixes = String::new();
    let mut delta = GraphDelta::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with("@prefix") {
            // Validate the directive *now*, against the prefixes already in
            // scope, so a malformed one is reported with its own line
            // number instead of poisoning (or silently never reaching) a
            // later operation line.
            let candidate = format!("{prefixes}{line}\n");
            let mut scratch = Dataset {
                pool: mem::take(pool),
                graph: Default::default(),
            };
            let outcome = turtle::parse_into(&candidate, &mut scratch);
            *pool = scratch.pool;
            if let Err(e) = outcome {
                return Err(DeltaError {
                    line: lineno,
                    message: format!("malformed @prefix directive: {e}"),
                });
            }
            prefixes.push_str(line);
            prefixes.push('\n');
            continue;
        }
        // `strip_prefix`, not `split_at(1)`: a line opening with a
        // multi-byte character must produce a line-numbered error, not a
        // char-boundary panic.
        let (op, stmt) = if let Some(rest) = line.strip_prefix('+') {
            (true, rest.trim_start())
        } else if let Some(rest) = line.strip_prefix('-') {
            (false, rest.trim_start())
        } else {
            return Err(DeltaError {
                line: lineno,
                message: format!("expected '+', '-', '@prefix', or comment, got: {line}"),
            });
        };
        // Parse the statement with the accumulated prefixes in scope,
        // interning directly into the caller's pool (taken for the
        // duration of the parse, then restored).
        let mut scratch = Dataset {
            pool: mem::take(pool),
            graph: Default::default(),
        };
        let source = format!("{prefixes}{stmt}");
        let outcome = turtle::parse_into(&source, &mut scratch);
        *pool = scratch.pool;
        if let Err(e) = outcome {
            return Err(DeltaError {
                line: lineno,
                message: e.to_string(),
            });
        }
        let triples = scratch.graph.triples_sorted();
        if triples.is_empty() {
            return Err(DeltaError {
                line: lineno,
                message: "operation line contains no triple".into(),
            });
        }
        if op {
            delta.added.extend(triples);
        } else {
            delta.removed.extend(triples);
        }
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn parse_basic_delta() {
        let mut pool = TermPool::new();
        let d = parse(
            "# comment\n@prefix e: <http://e/> .\n\n- e:a e:p e:b .\n+ e:a e:q 1, 2 .\n",
            &mut pool,
        )
        .unwrap();
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.added.len(), 2);
        // Terms landed in the caller's pool.
        assert!(pool.get(&Term::iri("http://e/a")).is_some());
        assert!(pool.get(&Term::iri("http://e/q")).is_some());
    }

    #[test]
    fn parse_rejects_bad_lines() {
        let mut pool = TermPool::new();
        let err = parse("e:a e:p e:b .\n", &mut pool).unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse("@prefix e: <http://e/> .\n+ e:a e:p .\n", &mut pool).unwrap_err();
        assert_eq!(err.line, 2);
        // The pool survives a failed parse.
        pool.intern_iri("http://e/after");
    }

    #[test]
    fn parse_rejects_multibyte_junk_line_without_panicking() {
        // Fail-pre-fix: `split_at(1)` panicked on a line whose first
        // character is multi-byte ("byte index 1 is not a char boundary")
        // instead of reporting a syntax error.
        let mut pool = TermPool::new();
        for junk in ["± e:a e:p e:b .", "→ oops", "é"] {
            let input = format!("@prefix e: <http://e/> .\n{junk}\n");
            let err = parse(&input, &mut pool).unwrap_err();
            assert_eq!(err.line, 2, "{junk}");
            assert!(err.message.contains("expected"), "{}", err.message);
        }
    }

    #[test]
    fn parse_reports_malformed_prefix_on_its_own_line() {
        // Fail-pre-fix: malformed @prefix directives were accumulated
        // unvalidated — the error surfaced (if at all) on a later
        // operation line with that line's number, or was silently
        // swallowed when no operation line followed.
        let mut pool = TermPool::new();
        let err = parse("# header\n@prefix broken <http://e/> .\n", &mut pool).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("@prefix"), "{}", err.message);

        // Still line 2 when an operation line follows.
        let err = parse(
            "@prefix e: <http://e/> .\n@prefix broken\n+ e:a e:p e:b .\n",
            &mut pool,
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn parse_accepts_operator_without_space() {
        let mut pool = TermPool::new();
        let d = parse("@prefix e: <http://e/> .\n+e:a e:p e:b .\n", &mut pool).unwrap();
        assert_eq!(d.added.len(), 1);
    }

    #[test]
    fn inverse_swaps_polarity() {
        let mut pool = TermPool::new();
        let d = parse(
            "@prefix e: <http://e/> .\n- e:a e:p e:b .\n+ e:c e:p e:d .\n",
            &mut pool,
        )
        .unwrap();
        let inv = d.inverse();
        assert_eq!(inv.removed, d.added);
        assert_eq!(inv.added, d.removed);
        assert!(!d.is_empty());
        assert_eq!(d.len(), 2);
        assert!(GraphDelta::new().is_empty());
    }
}

//! Graph deltas: batches of triple removals and additions.
//!
//! A [`GraphDelta`] describes a mutation of a [`Graph`](crate::graph::Graph)
//! as two sets of triples over pool-stable
//! [`TermId`](crate::pool::TermId)s: triples to remove
//! and triples to add. Applying a delta (see
//! [`Graph::apply_delta`](crate::graph::Graph::apply_delta)) performs the
//! removals first, then the additions, and returns an [`AppliedDelta`]
//! recording exactly which operations took effect — and *where* each
//! removed arc sat in its adjacency lists — so that
//! [`Graph::revert_delta`](crate::graph::Graph::revert_delta) can restore
//! the graph to a structurally identical state (same neighbourhood order,
//! same subject iteration order). That structural round-trip is what lets
//! the incremental-revalidation tests demand byte-identical reports after
//! `apply(δ); revert(δ)`.
//!
//! ## Delta file format
//!
//! [`parse`] reads a line-oriented text format built on Turtle:
//!
//! ```text
//! @prefix foaf: <http://xmlns.com/foaf/0.1/> .
//! @prefix : <http://example.org/> .
//! - :mary foaf:age 65 .
//! + :mary foaf:name "Mary" .
//! ```
//!
//! `@prefix` lines accumulate and scope over all subsequent operation
//! lines. Each remaining non-empty, non-comment line must start with `+`
//! (add) or `-` (remove) followed by a complete Turtle statement; a
//! statement may expand to several triples (e.g. via `;`/`,` lists), all
//! of which get the line's polarity.

use std::mem;

use crate::graph::{Dataset, Triple};
use crate::pool::TermPool;
use crate::turtle;

/// A batch graph mutation: triples to remove and triples to add.
///
/// Application order is removals first, then additions, so a triple listed
/// in both ends up present. Term ids must come from the same
/// [`TermPool`] as the graph the delta is applied to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Triples removed by this delta (applied first).
    pub removed: Vec<Triple>,
    /// Triples added by this delta (applied after the removals).
    pub added: Vec<Triple>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// True when the delta contains no operations.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }

    /// Total number of operations (removals plus additions).
    pub fn len(&self) -> usize {
        self.removed.len() + self.added.len()
    }

    /// The logical inverse: additions become removals and vice versa.
    ///
    /// Applying `delta` and then `delta.inverse()` restores the graph's
    /// *triple set*; to also restore adjacency order (needed for
    /// byte-identical reports) use
    /// [`Graph::revert_delta`](crate::graph::Graph::revert_delta) with the
    /// [`AppliedDelta`] instead.
    pub fn inverse(&self) -> GraphDelta {
        GraphDelta {
            removed: self.added.clone(),
            added: self.removed.clone(),
        }
    }
}

/// The effective result of applying a [`GraphDelta`] to a graph.
///
/// Records only the operations that actually changed the graph (removing
/// an absent triple or adding a present one is a no-op), plus the adjacency
/// positions each removed triple vacated, so
/// [`Graph::revert_delta`](crate::graph::Graph::revert_delta) can put
/// everything back exactly where it was.
#[derive(Debug, Clone, Default)]
pub struct AppliedDelta {
    /// Each effective removal with the outgoing- and incoming-list indexes
    /// it occupied at removal time.
    pub(crate) removed: Vec<(Triple, usize, usize)>,
    /// Each effective addition, in application order.
    pub(crate) added: Vec<Triple>,
}

impl AppliedDelta {
    /// Number of triples actually removed.
    pub fn removed_count(&self) -> usize {
        self.removed.len()
    }

    /// Number of triples actually added.
    pub fn added_count(&self) -> usize {
        self.added.len()
    }

    /// The triples actually removed, in application order.
    pub fn removed_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.removed.iter().map(|&(t, _, _)| t)
    }

    /// The triples actually added, in application order.
    pub fn added_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.added.iter().copied()
    }

    /// True when the delta changed nothing.
    pub fn is_noop(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

/// A syntax error in a delta file, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delta line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DeltaError {}

/// Parses the line-oriented delta format (see the [module docs](self))
/// into a [`GraphDelta`], interning all terms into `pool`.
///
/// ```
/// use shapex_rdf::{delta, pool::TermPool};
/// let mut pool = TermPool::new();
/// let d = delta::parse(
///     "@prefix e: <http://e/> .\n- e:a e:p 1 .\n+ e:a e:p 2 .\n",
///     &mut pool,
/// ).unwrap();
/// assert_eq!(d.removed.len(), 1);
/// assert_eq!(d.added.len(), 1);
/// ```
pub fn parse(input: &str, pool: &mut TermPool) -> Result<GraphDelta, DeltaError> {
    let mut prefixes = String::new();
    let mut delta = GraphDelta::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with("@prefix") {
            prefixes.push_str(line);
            prefixes.push('\n');
            continue;
        }
        let (op, stmt) = match line.split_at(1) {
            ("+", rest) => (true, rest.trim_start()),
            ("-", rest) => (false, rest.trim_start()),
            _ => {
                return Err(DeltaError {
                    line: lineno,
                    message: format!("expected '+', '-', '@prefix', or comment, got: {line}"),
                })
            }
        };
        // Parse the statement with the accumulated prefixes in scope,
        // interning directly into the caller's pool (taken for the
        // duration of the parse, then restored).
        let mut scratch = Dataset {
            pool: mem::take(pool),
            graph: Default::default(),
        };
        let source = format!("{prefixes}{stmt}");
        let outcome = turtle::parse_into(&source, &mut scratch);
        *pool = scratch.pool;
        if let Err(e) = outcome {
            return Err(DeltaError {
                line: lineno,
                message: e.to_string(),
            });
        }
        let triples = scratch.graph.triples_sorted();
        if triples.is_empty() {
            return Err(DeltaError {
                line: lineno,
                message: "operation line contains no triple".into(),
            });
        }
        if op {
            delta.added.extend(triples);
        } else {
            delta.removed.extend(triples);
        }
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn parse_basic_delta() {
        let mut pool = TermPool::new();
        let d = parse(
            "# comment\n@prefix e: <http://e/> .\n\n- e:a e:p e:b .\n+ e:a e:q 1, 2 .\n",
            &mut pool,
        )
        .unwrap();
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.added.len(), 2);
        // Terms landed in the caller's pool.
        assert!(pool.get(&Term::iri("http://e/a")).is_some());
        assert!(pool.get(&Term::iri("http://e/q")).is_some());
    }

    #[test]
    fn parse_rejects_bad_lines() {
        let mut pool = TermPool::new();
        let err = parse("e:a e:p e:b .\n", &mut pool).unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse("@prefix e: <http://e/> .\n+ e:a e:p .\n", &mut pool).unwrap_err();
        assert_eq!(err.line, 2);
        // The pool survives a failed parse.
        pool.intern_iri("http://e/after");
    }

    #[test]
    fn inverse_swaps_polarity() {
        let mut pool = TermPool::new();
        let d = parse(
            "@prefix e: <http://e/> .\n- e:a e:p e:b .\n+ e:c e:p e:d .\n",
            &mut pool,
        )
        .unwrap();
        let inv = d.inverse();
        assert_eq!(inv.removed, d.added);
        assert_eq!(inv.added, d.removed);
        assert!(!d.is_empty());
        assert_eq!(d.len(), 2);
        assert!(GraphDelta::new().is_empty());
    }
}

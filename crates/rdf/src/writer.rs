//! Serializers: canonical N-Triples and a compact Turtle writer with
//! prefix abbreviation and subject grouping.

use std::fmt::Write as _;

use crate::graph::{Graph, Triple};
use crate::pool::{TermId, TermPool};
use crate::term::Term;
use crate::vocab::rdf;

/// Serializes a graph as N-Triples, one triple per line, sorted lexically —
/// a canonical form independent of interner state (so two datasets with the
/// same triples serialize identically).
pub fn to_ntriples(graph: &Graph, pool: &TermPool) -> String {
    let mut lines: Vec<String> = graph.triples().map(|t| triple_line(t, pool)).collect();
    lines.sort();
    lines.concat()
}

fn triple_line(t: &Triple, pool: &TermPool) -> String {
    format!(
        "{} {} {} .\n",
        pool.term(t.subject),
        pool.term(t.predicate),
        pool.term(t.object)
    )
}

/// Serializes a graph as Turtle using the given `(prefix, namespace)` table,
/// grouping triples by subject with `;`/`,` abbreviations and emitting `a`
/// for `rdf:type`.
pub fn to_turtle(graph: &Graph, pool: &TermPool, prefixes: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (name, ns) in prefixes {
        let _ = writeln!(out, "@prefix {name}: <{ns}> .");
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }

    let render = |id: TermId| render_term(pool.term(id), prefixes);

    let mut subjects: Vec<TermId> = graph.subjects().collect();
    subjects.sort_by_key(|s| pool.term(*s).clone());
    for s in subjects {
        let mut arcs: Vec<_> = graph.neighbourhood(s).to_vec();
        arcs.sort_by_key(|(p, o)| (pool.term(*p).clone(), pool.term(*o).clone()));
        let _ = write!(out, "{}", render(s));
        let mut first_pred = true;
        let mut i = 0;
        while i < arcs.len() {
            let (p, _) = arcs[i];
            let sep = if first_pred { " " } else { ";\n    " };
            first_pred = false;
            let pred_str = if pool.term(p) == &Term::iri(rdf::TYPE) {
                "a".to_string()
            } else {
                render(p)
            };
            let _ = write!(out, "{sep}{pred_str} ");
            let mut first_obj = true;
            while i < arcs.len() && arcs[i].0 == p {
                if !first_obj {
                    let _ = write!(out, ", ");
                }
                first_obj = false;
                let _ = write!(out, "{}", render(arcs[i].1));
                i += 1;
            }
        }
        let _ = writeln!(out, " .");
    }
    out
}

fn render_term(term: &Term, prefixes: &[(&str, &str)]) -> String {
    if let Term::Iri(iri) = term {
        for (name, ns) in prefixes {
            if let Some(local) = iri.as_str().strip_prefix(ns) {
                if is_safe_local(local) {
                    return format!("{name}:{local}");
                }
            }
        }
    }
    term.to_string()
}

/// Only abbreviate locals that re-parse unambiguously (conservative set).
fn is_safe_local(local: &str) -> bool {
    !local.is_empty()
        && !local.starts_with('.')
        && !local.ends_with('.')
        && local
            .chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dataset;
    use crate::term::Literal;
    use crate::turtle;
    use crate::vocab::foaf;

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        ds.insert(
            Term::iri("http://example.org/john"),
            Term::iri(foaf::AGE),
            Term::Literal(Literal::integer(23)),
        );
        ds.insert(
            Term::iri("http://example.org/john"),
            Term::iri(foaf::NAME),
            Term::Literal(Literal::string("John")),
        );
        ds.insert(
            Term::iri("http://example.org/john"),
            Term::iri(foaf::KNOWS),
            Term::iri("http://example.org/bob"),
        );
        ds
    }

    #[test]
    fn ntriples_roundtrip() {
        let ds = sample();
        let nt = to_ntriples(&ds.graph, &ds.pool);
        let re = crate::ntriples::parse(&nt).unwrap();
        assert_eq!(re.graph.len(), ds.graph.len());
        // Every original triple survives re-parsing.
        assert_eq!(to_ntriples(&re.graph, &re.pool), nt);
    }

    #[test]
    fn ntriples_is_sorted_and_terminated() {
        let ds = sample();
        let nt = to_ntriples(&ds.graph, &ds.pool);
        for line in nt.lines() {
            assert!(line.ends_with(" ."), "line missing terminator: {line}");
        }
        let lines: Vec<_> = nt.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        // Triple-id sort order and lexical order differ in general, but each
        // run must be self-consistent:
        assert_eq!(nt, to_ntriples(&ds.graph, &ds.pool));
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn turtle_uses_prefixes_and_groups_subjects() {
        let ds = sample();
        let ttl = to_turtle(
            &ds.graph,
            &ds.pool,
            &[("foaf", foaf::NS), ("ex", "http://example.org/")],
        );
        assert!(ttl.contains("@prefix foaf:"));
        assert!(ttl.contains("ex:john"));
        assert!(ttl.contains("foaf:age"));
        // One subject block only.
        assert_eq!(ttl.matches("ex:john").count(), 1);
    }

    #[test]
    fn turtle_roundtrips_through_parser() {
        let ds = sample();
        let ttl = to_turtle(
            &ds.graph,
            &ds.pool,
            &[("foaf", foaf::NS), ("ex", "http://example.org/")],
        );
        let re = turtle::parse(&ttl).unwrap();
        assert_eq!(re.graph.len(), ds.graph.len());
        assert_eq!(
            to_ntriples(&re.graph, &re.pool),
            to_ntriples(&ds.graph, &ds.pool)
        );
    }

    #[test]
    fn turtle_emits_a_for_rdf_type() {
        let mut ds = Dataset::new();
        ds.insert(
            Term::iri("http://e/x"),
            Term::iri(rdf::TYPE),
            Term::iri(foaf::PERSON),
        );
        let ttl = to_turtle(&ds.graph, &ds.pool, &[("foaf", foaf::NS)]);
        assert!(ttl.contains(" a foaf:Person"), "{ttl}");
    }

    #[test]
    fn unsafe_locals_stay_angle_bracketed() {
        let mut ds = Dataset::new();
        ds.insert(
            Term::iri("http://e/with space?no"),
            Term::iri("http://e/p"),
            Term::iri("http://e/o"),
        );
        let ttl = to_turtle(&ds.graph, &ds.pool, &[("ex", "http://e/")]);
        // The raw space is forbidden inside <...> by the IRIREF production,
        // so the writer emits it \u-escaped — and the output re-parses.
        assert!(ttl.contains("<http://e/with\\u0020space?no>"), "{ttl}");
        let re = turtle::parse(&ttl).unwrap();
        assert!(re.pool.get(&Term::iri("http://e/with space?no")).is_some());
    }
}

//! Term interning.
//!
//! Validation touches the same IRIs and literals over and over; interning
//! them to dense `u32` ids makes triples 12 bytes, makes term equality an
//! integer compare, and lets downstream code use ids as indexes into dense
//! side tables (the derivative engine's memo tables rely on this).

use rustc_hash::FxHashMap;

use crate::term::{Literal, Term};

/// A dense id for an interned [`Term`]. Ids are only meaningful relative to
/// the [`TermPool`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// The raw index, usable for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interner mapping [`Term`]s to dense [`TermId`]s and back.
///
/// One pool is shared between a graph and everything that needs to talk
/// about its nodes (schemas compiled for validation, query engines, ...).
#[derive(Debug, Default)]
pub struct TermPool {
    terms: Vec<Term>,
    ids: FxHashMap<Term, TermId>,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        TermPool::default()
    }

    /// Interns a term, returning its id. Idempotent.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term pool overflow"));
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    /// Interns an IRI given as a string.
    pub fn intern_iri(&mut self, iri: &str) -> TermId {
        self.intern(Term::iri(iri))
    }

    /// Interns a blank node given its label.
    pub fn intern_blank(&mut self, label: &str) -> TermId {
        self.intern(Term::blank(label))
    }

    /// Interns a literal.
    pub fn intern_literal(&mut self, lit: Literal) -> TermId {
        self.intern(Term::Literal(lit))
    }

    /// Looks up an already-interned term without interning it.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolves an id back to its term.
    ///
    /// # Panics
    /// Panics if the id comes from a different pool (index out of range).
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Pre-sizes both sides of the interner for `additional` more terms.
    pub fn reserve(&mut self, additional: usize) {
        self.terms.reserve(additional);
        self.ids.reserve(additional);
    }

    /// Iterates over all `(id, term)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }

    /// Consumes the pool, yielding its terms in interning order — id `i`'s
    /// term is element `i`. Used by the parallel parser's merge phase to
    /// re-intern chunk-local pools into the shared one without cloning
    /// every term.
    pub fn into_terms(self) -> Vec<Term> {
        self.terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = TermPool::new();
        let a = pool.intern_iri("http://e/a");
        let b = pool.intern_iri("http://e/a");
        assert_eq!(a, b);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut pool = TermPool::new();
        let a = pool.intern_iri("http://e/a");
        let b = pool.intern_iri("http://e/b");
        let c = pool.intern_blank("a");
        let d = pool.intern_literal(Literal::string("a"));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(c, d);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn same_lexical_different_kind_are_distinct() {
        let mut pool = TermPool::new();
        let iri = pool.intern_iri("x");
        let blank = pool.intern_blank("x");
        let lit = pool.intern_literal(Literal::string("x"));
        assert_ne!(iri, blank);
        assert_ne!(blank, lit);
    }

    #[test]
    fn literal_datatype_distinguishes() {
        let mut pool = TermPool::new();
        let s = pool.intern_literal(Literal::string("1"));
        let i = pool.intern_literal(Literal::integer(1));
        assert_ne!(s, i);
    }

    #[test]
    fn roundtrip_term_lookup() {
        let mut pool = TermPool::new();
        let t = Term::iri("http://e/a");
        let id = pool.intern(t.clone());
        assert_eq!(pool.term(id), &t);
        assert_eq!(pool.get(&t), Some(id));
        assert_eq!(pool.get(&Term::iri("http://e/zzz")), None);
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut pool = TermPool::new();
        pool.intern_iri("http://e/1");
        pool.intern_iri("http://e/2");
        let terms: Vec<_> = pool.iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(terms[0], Term::iri("http://e/1"));
        assert_eq!(terms[1], Term::iri("http://e/2"));
    }
}

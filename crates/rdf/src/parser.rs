//! Shared parsing infrastructure: a character cursor with line/column
//! tracking and the escape decoders common to Turtle and N-Triples.

use std::fmt;

/// A parse error with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Builds an error at a position.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A peekable character cursor over the input, tracking line/column.
///
/// Public so the ShExC and SPARQL parsers in sibling crates can share it.
pub struct Cursor<'a> {
    input: &'a str,
    /// Byte offset of the next unread char.
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Cursor<'a> {
    /// Starts a cursor at the beginning of `input`.
    pub fn new(input: &'a str) -> Self {
        Cursor::new_at_line(input, 1)
    }

    /// Starts a cursor whose position reporting begins at `line` — for
    /// line-oriented parsers that hand one extracted line at a time to the
    /// cursor but want errors numbered against the whole document.
    pub fn new_at_line(input: &'a str, line: usize) -> Self {
        Cursor {
            input,
            pos: 0,
            line,
            column: 1,
        }
    }

    /// The next unread character, if any.
    pub fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    /// The character after the next one.
    pub fn peek2(&self) -> Option<char> {
        let mut it = self.input[self.pos..].chars();
        it.next();
        it.next()
    }

    /// Remaining unread input (for keyword lookahead).
    pub fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    /// Consumes and returns the next character.
    pub fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos += ch.len_utf8();
        if ch == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(ch)
    }

    /// Consumes `ch` if it is next; returns whether it did.
    pub fn eat(&mut self, ch: char) -> bool {
        if self.peek() == Some(ch) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes the exact string `s` if the input starts with it.
    pub fn eat_str(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Case-insensitive variant of [`Cursor::eat_str`] for SPARQL-style
    /// `PREFIX` / `BASE` keywords.
    pub fn eat_str_ci(&mut self, s: &str) -> bool {
        if self.starts_with_ci(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Does the remaining input start with `s`, ASCII-case-insensitively?
    /// Safe on any input: a non-char-boundary prefix simply doesn't match.
    pub fn starts_with_ci(&self, s: &str) -> bool {
        self.rest()
            .get(..s.len())
            .is_some_and(|head| head.eq_ignore_ascii_case(s))
    }

    /// [`Cursor::starts_with_ci`] plus a word-boundary check: the keyword
    /// must not be followed by an identifier character.
    pub fn starts_with_keyword_ci(&self, kw: &str) -> bool {
        self.starts_with_ci(kw)
            && self.rest()[kw.len()..]
                .chars()
                .next()
                .is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
    }

    /// True when all input has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Builds a [`ParseError`] at the current position.
    pub fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.column, message)
    }

    /// Skips whitespace and `#`-to-end-of-line comments.
    pub fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }
}

/// Decodes a `\uXXXX` (4 hex digits) or `\UXXXXXXXX` (8 hex digits) escape
/// body already positioned after the backslash and size char.
pub fn decode_unicode_escape(cur: &mut Cursor<'_>, digits: usize) -> Result<char, ParseError> {
    let mut value: u32 = 0;
    for _ in 0..digits {
        let c = cur
            .bump()
            .ok_or_else(|| cur.error("unterminated unicode escape"))?;
        let d = c
            .to_digit(16)
            .ok_or_else(|| cur.error(format!("invalid hex digit '{c}' in unicode escape")))?;
        value = value * 16 + d;
    }
    char::from_u32(value).ok_or_else(|| cur.error(format!("invalid code point U+{value:X}")))
}

/// Decodes one string escape following a backslash (the backslash itself is
/// already consumed).
pub fn decode_string_escape(cur: &mut Cursor<'_>) -> Result<char, ParseError> {
    let c = cur
        .bump()
        .ok_or_else(|| cur.error("unterminated escape sequence"))?;
    Ok(match c {
        't' => '\t',
        'b' => '\u{8}',
        'n' => '\n',
        'r' => '\r',
        'f' => '\u{c}',
        '"' => '"',
        '\'' => '\'',
        '\\' => '\\',
        'u' => decode_unicode_escape(cur, 4)?,
        'U' => decode_unicode_escape(cur, 8)?,
        other => return Err(cur.error(format!("invalid escape sequence '\\{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_tracks_lines_and_columns() {
        let mut c = Cursor::new("ab\ncd");
        assert_eq!(c.bump(), Some('a'));
        assert_eq!(c.bump(), Some('b'));
        assert_eq!(c.bump(), Some('\n'));
        let err = c.error("x");
        assert_eq!((err.line, err.column), (2, 1));
        assert_eq!(c.bump(), Some('c'));
        let err = c.error("x");
        assert_eq!((err.line, err.column), (2, 2));
    }

    #[test]
    fn skip_ws_and_comments_skips_both() {
        let mut c = Cursor::new("  # comment\n\t x");
        c.skip_ws_and_comments();
        assert_eq!(c.peek(), Some('x'));
    }

    #[test]
    fn eat_str_ci_matches_any_case() {
        let mut c = Cursor::new("PrEfIx foo");
        assert!(c.eat_str_ci("prefix"));
        assert_eq!(c.peek(), Some(' '));
    }

    #[test]
    fn unicode_escape_decoding() {
        let mut c = Cursor::new("0041");
        assert_eq!(decode_unicode_escape(&mut c, 4).unwrap(), 'A');
        let mut c = Cursor::new("0001F600");
        assert_eq!(decode_unicode_escape(&mut c, 8).unwrap(), '😀');
        let mut c = Cursor::new("zzzz");
        assert!(decode_unicode_escape(&mut c, 4).is_err());
    }

    #[test]
    fn string_escape_decoding() {
        for (src, want) in [("n", '\n'), ("t", '\t'), ("\\", '\\'), ("\"", '"')] {
            let mut c = Cursor::new(src);
            assert_eq!(decode_string_escape(&mut c).unwrap(), want);
        }
        let mut c = Cursor::new("q");
        assert!(decode_string_escape(&mut c).is_err());
    }

    #[test]
    fn error_display_includes_position() {
        let e = ParseError::new(3, 7, "boom");
        assert_eq!(e.to_string(), "3:7: boom");
    }
}

//! A Turtle parser covering the language subset real-world shape data uses:
//! prefixes and base (both `@` and SPARQL styles), IRIs with unicode
//! escapes, prefixed names with local escapes, the `a` keyword, predicate
//! (`;`) and object (`,`) lists, all literal forms (short/long,
//! single/double quoted, language tags, datatypes, numeric and boolean
//! shorthand), blank node labels, anonymous blank nodes / property lists
//! (`[...]`), and RDF collections `( ... )`.

use std::collections::HashMap;

use crate::graph::Dataset;
use crate::parser::{decode_string_escape, decode_unicode_escape, Cursor, ParseError};
use crate::term::{Literal, Term};
use crate::vocab::{rdf, xsd};

/// Parses a Turtle document into a fresh [`Dataset`].
pub fn parse(input: &str) -> Result<Dataset, ParseError> {
    let mut ds = Dataset::new();
    parse_into(input, &mut ds)?;
    Ok(ds)
}

/// Parses a Turtle document, adding its triples into an existing dataset
/// (terms are interned into the dataset's pool).
pub fn parse_into(input: &str, dataset: &mut Dataset) -> Result<(), ParseError> {
    if let Some(msg) = crate::failpoint::check("turtle-parse") {
        return Err(ParseError::new(1, 1, format!("injected failure: {msg}")));
    }
    TurtleParser::new(input, dataset).run()
}

/// Best-effort parse of a possibly-corrupt Turtle document: statements that
/// fail to parse are skipped — recovering at the next statement-terminating
/// `.` — and reported alongside whatever parsed cleanly.
///
/// Recovery is per *statement*, so one corrupt line does not poison the
/// rest of the document; prefix/base directives seen before the corruption
/// still apply after it. Triples emitted by the salvageable head of a
/// corrupt statement (e.g. the first objects of a `;`/`,` list) are kept.
pub fn parse_lenient(input: &str) -> (Dataset, Vec<ParseError>) {
    let mut ds = Dataset::new();
    let errors = parse_lenient_into(input, &mut ds);
    (ds, errors)
}

/// [`parse_lenient`] into an existing dataset; returns the skipped
/// statements' errors (empty when the document is clean).
pub fn parse_lenient_into(input: &str, dataset: &mut Dataset) -> Vec<ParseError> {
    let mut parser = TurtleParser::new(input, dataset);
    let mut errors = Vec::new();
    loop {
        parser.cur.skip_ws_and_comments();
        if parser.cur.at_end() {
            return errors;
        }
        if let Err(e) = parser.statement() {
            errors.push(e);
            parser.recover_to_statement_boundary();
        }
    }
}

struct TurtleParser<'a, 'd> {
    cur: Cursor<'a>,
    ds: &'d mut Dataset,
    prefixes: HashMap<String, String>,
    base: Option<String>,
    next_anon: usize,
    /// How many `[`/`(` groups are open at the current position. Only
    /// consulted by lenient recovery: an error inside a property list or
    /// collection must not treat a `.` inside the still-open group as the
    /// enclosing statement's terminator.
    depth: i32,
}

impl<'a, 'd> TurtleParser<'a, 'd> {
    fn new(input: &'a str, ds: &'d mut Dataset) -> Self {
        TurtleParser {
            cur: Cursor::new(input),
            ds,
            prefixes: HashMap::new(),
            base: None,
            next_anon: 0,
            depth: 0,
        }
    }

    fn run(&mut self) -> Result<(), ParseError> {
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.at_end() {
                return Ok(());
            }
            self.statement()?;
        }
    }

    fn statement(&mut self) -> Result<(), ParseError> {
        if self.cur.eat_str("@prefix") {
            self.prefix_directive()?;
            self.expect('.')?;
            return Ok(());
        }
        if self.cur.eat_str("@base") {
            self.base_directive()?;
            self.expect('.')?;
            return Ok(());
        }
        // SPARQL-style directives: keyword must be followed by whitespace so
        // that prefixed names like `prefix:x` are not swallowed.
        if self.peek_keyword_ci("PREFIX") {
            self.cur.eat_str_ci("PREFIX");
            self.prefix_directive()?;
            return Ok(());
        }
        if self.peek_keyword_ci("BASE") {
            self.cur.eat_str_ci("BASE");
            self.base_directive()?;
            return Ok(());
        }
        self.triples()?;
        self.expect('.')
    }

    /// Skips forward to just past the next statement-terminating `.` — a
    /// dot followed by whitespace, a comment, or end of input — stepping
    /// over string literals, IRIs, and comments so a `.` inside them does
    /// not end recovery early. Bracket-aware: when the error struck inside
    /// a `[...]` property list or `(...)` collection, a `.` inside the
    /// still-open group belongs to the corrupt statement, so recovery only
    /// accepts a terminator once every open group has been closed again —
    /// otherwise the tail of the group would be replayed as phantom
    /// statements.
    fn recover_to_statement_boundary(&mut self) {
        let mut depth = self.depth;
        self.depth = 0;
        while let Some(c) = self.cur.peek() {
            match c {
                '.' => {
                    self.cur.bump();
                    if depth <= 0
                        && self
                            .cur
                            .peek()
                            .is_none_or(|n| n.is_whitespace() || n == '#')
                    {
                        return;
                    }
                }
                '[' | '(' => {
                    depth += 1;
                    self.cur.bump();
                }
                ']' | ')' => {
                    depth -= 1;
                    self.cur.bump();
                }
                '#' => {
                    while let Some(c) = self.cur.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                '"' | '\'' => self.skip_string_tolerant(c),
                '<' => {
                    self.cur.bump();
                    while let Some(c) = self.cur.bump() {
                        // An IRI never spans lines; give up at one so an
                        // unterminated `<` cannot swallow the document.
                        if c == '>' || c == '\n' {
                            break;
                        }
                    }
                }
                _ => {
                    self.cur.bump();
                }
            }
        }
    }

    /// Skips a (possibly long-form, possibly unterminated) string literal
    /// during recovery. Unterminated short strings stop at the line end.
    fn skip_string_tolerant(&mut self, quote: char) {
        let delim3: String = std::iter::repeat_n(quote, 3).collect();
        if self.cur.rest().starts_with(&delim3) {
            for _ in 0..3 {
                self.cur.bump();
            }
            while !self.cur.at_end() {
                if self.cur.rest().starts_with(&delim3) {
                    for _ in 0..3 {
                        self.cur.bump();
                    }
                    return;
                }
                if self.cur.peek() == Some('\\') {
                    self.cur.bump();
                }
                self.cur.bump();
            }
            return;
        }
        self.cur.bump();
        while let Some(c) = self.cur.bump() {
            match c {
                '\\' => {
                    self.cur.bump();
                }
                '\n' => return,
                c if c == quote => return,
                _ => {}
            }
        }
    }

    fn peek_keyword_ci(&self, kw: &str) -> bool {
        self.cur.starts_with_ci(kw)
            && self.cur.rest()[kw.len()..]
                .chars()
                .next()
                .is_some_and(char::is_whitespace)
    }

    fn prefix_directive(&mut self) -> Result<(), ParseError> {
        self.cur.skip_ws_and_comments();
        let name = self.pname_ns()?;
        self.cur.skip_ws_and_comments();
        let iri = self.iriref()?;
        self.prefixes.insert(name, iri);
        self.cur.skip_ws_and_comments();
        Ok(())
    }

    fn base_directive(&mut self) -> Result<(), ParseError> {
        self.cur.skip_ws_and_comments();
        let iri = self.iriref()?;
        self.base = Some(iri);
        self.cur.skip_ws_and_comments();
        Ok(())
    }

    /// `PNAME_NS`: the `name:` before a prefix IRI (name may be empty).
    fn pname_ns(&mut self) -> Result<String, ParseError> {
        let mut name = String::new();
        while let Some(c) = self.cur.peek() {
            if c == ':' {
                self.cur.bump();
                return Ok(name);
            }
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                name.push(c);
                self.cur.bump();
            } else {
                break;
            }
        }
        Err(self.cur.error("expected ':' terminating prefix name"))
    }

    fn triples(&mut self) -> Result<(), ParseError> {
        self.cur.skip_ws_and_comments();
        let subject = if self.cur.peek() == Some('[') {
            let node = self.blank_node_property_list()?;
            self.cur.skip_ws_and_comments();
            // `[ ... ] .` is a valid statement on its own.
            if self.cur.peek() == Some('.') {
                return Ok(());
            }
            node
        } else if self.cur.peek() == Some('(') {
            self.collection()?
        } else {
            self.subject()?
        };
        self.predicate_object_list(&subject)
    }

    fn predicate_object_list(&mut self, subject: &Term) -> Result<(), ParseError> {
        loop {
            self.cur.skip_ws_and_comments();
            let predicate = self.verb()?;
            loop {
                self.cur.skip_ws_and_comments();
                let object = self.object()?;
                self.ds.insert(subject.clone(), predicate.clone(), object);
                self.cur.skip_ws_and_comments();
                if !self.cur.eat(',') {
                    break;
                }
            }
            if !self.cur.eat(';') {
                return Ok(());
            }
            self.cur.skip_ws_and_comments();
            // Trailing `;` before `.` or `]` is allowed.
            if matches!(self.cur.peek(), Some('.') | Some(']') | None) {
                return Ok(());
            }
            // Multiple consecutive semicolons are also allowed.
            while self.cur.eat(';') {
                self.cur.skip_ws_and_comments();
            }
            if matches!(self.cur.peek(), Some('.') | Some(']') | None) {
                return Ok(());
            }
        }
    }

    fn verb(&mut self) -> Result<Term, ParseError> {
        // `a` keyword: must be followed by a delimiter.
        if self.cur.peek() == Some('a') {
            let next = self.cur.peek2();
            if next.is_none_or(|c| c.is_whitespace() || c == '<' || c == '[' || c == '#') {
                self.cur.bump();
                return Ok(Term::iri(rdf::TYPE));
            }
        }
        let term = self.iri_term()?;
        if !term.is_valid_predicate() {
            return Err(self.cur.error("predicate must be an IRI"));
        }
        Ok(term)
    }

    fn subject(&mut self) -> Result<Term, ParseError> {
        let term = match self.cur.peek() {
            Some('_') => self.blank_node_label()?,
            _ => self.iri_term()?,
        };
        if !term.is_valid_subject() {
            return Err(self.cur.error("subject must be an IRI or blank node"));
        }
        Ok(term)
    }

    fn object(&mut self) -> Result<Term, ParseError> {
        match self.cur.peek() {
            Some('<') => self.iri_term(),
            Some('_') => self.blank_node_label(),
            Some('[') => self.blank_node_property_list(),
            Some('(') => self.collection(),
            Some('"') | Some('\'') => self.rdf_literal(),
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' || c == '.' => {
                self.numeric_literal()
            }
            Some('t') if self.keyword_boolean() => {
                self.cur.eat_str("true");
                Ok(Term::Literal(Literal::boolean(true)))
            }
            Some('f') if self.keyword_boolean() => {
                self.cur.eat_str("false");
                Ok(Term::Literal(Literal::boolean(false)))
            }
            Some(_) => self.iri_term(),
            None => Err(self.cur.error("unexpected end of input, expected object")),
        }
    }

    /// True if the input starts with `true` or `false` followed by a
    /// delimiter (so that prefixed names like `true:x` are untouched).
    fn keyword_boolean(&self) -> bool {
        let rest = self.cur.rest();
        for kw in ["true", "false"] {
            if let Some(after) = rest.strip_prefix(kw) {
                let ok = after.chars().next().is_none_or(|c| {
                    c.is_whitespace() || matches!(c, '.' | ';' | ',' | ')' | ']' | '#')
                });
                if ok {
                    return true;
                }
            }
        }
        false
    }

    fn blank_node_label(&mut self) -> Result<Term, ParseError> {
        if !self.cur.eat_str("_:") {
            return Err(self.cur.error("expected blank node label"));
        }
        let mut label = String::new();
        while let Some(c) = self.cur.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                label.push(c);
                self.cur.bump();
            } else if c == '.' {
                // '.' is allowed inside labels but not at the end.
                match self.cur.peek2() {
                    Some(n) if n.is_alphanumeric() || n == '_' || n == '-' => {
                        label.push(c);
                        self.cur.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        if label.is_empty() {
            return Err(self.cur.error("empty blank node label"));
        }
        Ok(Term::blank(label))
    }

    fn fresh_blank(&mut self) -> Term {
        let t = Term::blank(format!("gen{}", self.next_anon));
        self.next_anon += 1;
        t
    }

    fn blank_node_property_list(&mut self) -> Result<Term, ParseError> {
        self.expect('[')?;
        self.depth += 1;
        let node = self.fresh_blank();
        self.cur.skip_ws_and_comments();
        if self.cur.eat(']') {
            self.depth -= 1;
            return Ok(node);
        }
        self.predicate_object_list(&node)?;
        self.cur.skip_ws_and_comments();
        self.expect(']')?;
        self.depth -= 1;
        Ok(node)
    }

    fn collection(&mut self) -> Result<Term, ParseError> {
        self.expect('(')?;
        self.depth += 1;
        let mut items = Vec::new();
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.eat(')') {
                self.depth -= 1;
                break;
            }
            items.push(self.object()?);
        }
        // Build the rdf:first/rdf:rest list back-to-front.
        let mut tail = Term::iri(rdf::NIL);
        for item in items.into_iter().rev() {
            let cell = self.fresh_blank();
            self.ds.insert(cell.clone(), Term::iri(rdf::FIRST), item);
            self.ds.insert(cell.clone(), Term::iri(rdf::REST), tail);
            tail = cell;
        }
        Ok(tail)
    }

    fn iri_term(&mut self) -> Result<Term, ParseError> {
        if self.cur.peek() == Some('<') {
            let iri = self.iriref()?;
            return Ok(Term::iri(iri));
        }
        self.prefixed_name()
    }

    fn iriref(&mut self) -> Result<String, ParseError> {
        self.expect('<')?;
        let mut iri = String::new();
        loop {
            let c = self
                .cur
                .bump()
                .ok_or_else(|| self.cur.error("unterminated IRI"))?;
            match c {
                '>' => break,
                '\\' => match self.cur.bump() {
                    Some('u') => iri.push(decode_unicode_escape(&mut self.cur, 4)?),
                    Some('U') => iri.push(decode_unicode_escape(&mut self.cur, 8)?),
                    _ => return Err(self.cur.error("invalid escape in IRI")),
                },
                c if c.is_whitespace() || matches!(c, '<' | '"' | '{' | '}' | '|' | '^' | '`') => {
                    return Err(self
                        .cur
                        .error(format!("character '{c}' not allowed in IRI")))
                }
                c => iri.push(c),
            }
        }
        Ok(self.resolve(&iri))
    }

    /// Resolves a possibly-relative IRI against the current base.
    /// Covers the forms Turtle data uses in practice: absolute IRIs pass
    /// through; fragments append to the base; other relative references
    /// replace the base's last path segment.
    fn resolve(&self, iri: &str) -> String {
        let has_scheme = iri.split_once(':').is_some_and(|(scheme, _)| {
            !scheme.is_empty()
                && scheme
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.'))
                && scheme
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic())
        });
        if has_scheme {
            return iri.to_string();
        }
        let Some(base) = &self.base else {
            return iri.to_string();
        };
        if iri.is_empty() {
            return base.clone();
        }
        if let Some(frag) = iri.strip_prefix('#') {
            let stem = base.split('#').next().unwrap_or(base);
            return format!("{stem}#{frag}");
        }
        if iri.starts_with("//") {
            let scheme = base.split(':').next().unwrap_or("http");
            return format!("{scheme}:{iri}");
        }
        if let Some(abs_path) = iri.strip_prefix('/') {
            // Authority-relative: keep scheme://host.
            if let Some(scheme_end) = base.find("://") {
                let after = &base[scheme_end + 3..];
                let host_end = after
                    .find('/')
                    .map(|i| scheme_end + 3 + i)
                    .unwrap_or(base.len());
                return format!("{}/{}", &base[..host_end], abs_path);
            }
            return format!("{base}/{abs_path}");
        }
        // Path-relative: replace everything after the last '/'.
        match base.rfind('/') {
            Some(i) => format!("{}{}", &base[..=i], iri),
            None => format!("{base}{iri}"),
        }
    }

    fn prefixed_name(&mut self) -> Result<Term, ParseError> {
        let prefix = {
            let mut p = String::new();
            while let Some(c) = self.cur.peek() {
                if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                    p.push(c);
                    self.cur.bump();
                } else {
                    break;
                }
            }
            p
        };
        if !self.cur.eat(':') {
            return Err(self
                .cur
                .error(format!("expected ':' after prefix '{prefix}'")));
        }
        let ns = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.cur.error(format!("undefined prefix '{prefix}:'")))?;
        let mut iri = ns.clone();
        // PN_LOCAL with escapes; '.' only if followed by another local char.
        while let Some(c) = self.cur.peek() {
            match c {
                '\\' => {
                    self.cur.bump();
                    let e = self
                        .cur
                        .bump()
                        .ok_or_else(|| self.cur.error("unterminated local escape"))?;
                    if matches!(
                        e,
                        '_' | '~'
                            | '.'
                            | '-'
                            | '!'
                            | '$'
                            | '&'
                            | '\''
                            | '('
                            | ')'
                            | '*'
                            | '+'
                            | ','
                            | ';'
                            | '='
                            | '/'
                            | '?'
                            | '#'
                            | '@'
                            | '%'
                    ) {
                        iri.push(e);
                    } else {
                        return Err(self.cur.error(format!("invalid local escape '\\{e}'")));
                    }
                }
                '.' => match self.cur.peek2() {
                    Some(n) if is_local_char(n) || n == '\\' => {
                        iri.push('.');
                        self.cur.bump();
                    }
                    _ => break,
                },
                c if is_local_char(c) => {
                    iri.push(c);
                    self.cur.bump();
                }
                _ => break,
            }
        }
        Ok(Term::iri(iri))
    }

    fn rdf_literal(&mut self) -> Result<Term, ParseError> {
        let quote = self.cur.peek().expect("caller checked quote");
        let lexical = self.quoted_string(quote)?;
        // Optional language tag or datatype.
        if self.cur.peek() == Some('@') {
            self.cur.bump();
            let mut lang = String::new();
            while let Some(c) = self.cur.peek() {
                if c.is_ascii_alphanumeric() || c == '-' {
                    lang.push(c);
                    self.cur.bump();
                } else {
                    break;
                }
            }
            if lang.is_empty() {
                return Err(self.cur.error("empty language tag"));
            }
            return Ok(Term::Literal(Literal::lang_string(lexical, &lang)));
        }
        if self.cur.eat_str("^^") {
            let dt = self.iri_term()?;
            let Term::Iri(dt) = dt else {
                return Err(self.cur.error("datatype must be an IRI"));
            };
            return Ok(Term::Literal(Literal::typed(lexical, dt.as_str())));
        }
        Ok(Term::Literal(Literal::string(lexical)))
    }

    fn quoted_string(&mut self, quote: char) -> Result<String, ParseError> {
        // Long form: three quotes.
        let long = {
            let mut buf = [0u8; 4];
            let q = quote.encode_utf8(&mut buf).repeat(3);
            self.cur.eat_str(&q)
        };
        if !long {
            self.expect(quote)?;
        }
        let mut s = String::new();
        loop {
            if long {
                let mut buf = [0u8; 4];
                let q = quote.encode_utf8(&mut buf).repeat(3);
                if self.cur.eat_str(&q) {
                    return Ok(s);
                }
            }
            let c = self
                .cur
                .bump()
                .ok_or_else(|| self.cur.error("unterminated string literal"))?;
            match c {
                '\\' => s.push(decode_string_escape(&mut self.cur)?),
                c if c == quote && !long => return Ok(s),
                '\n' | '\r' if !long => {
                    return Err(self.cur.error("newline in short string literal"))
                }
                c => s.push(c),
            }
        }
    }

    fn numeric_literal(&mut self) -> Result<Term, ParseError> {
        let mut s = String::new();
        if matches!(self.cur.peek(), Some('+') | Some('-')) {
            s.push(self.cur.bump().expect("peeked sign"));
        }
        let mut has_digits = false;
        let mut has_dot = false;
        let mut has_exp = false;
        while let Some(c) = self.cur.peek() {
            match c {
                '0'..='9' => {
                    has_digits = true;
                    s.push(c);
                    self.cur.bump();
                }
                '.' if !has_dot && !has_exp => {
                    // A trailing '.' is the statement terminator, not part
                    // of the number, unless followed by a digit or exponent.
                    match self.cur.peek2() {
                        Some(n) if n.is_ascii_digit() || n == 'e' || n == 'E' => {
                            has_dot = true;
                            s.push('.');
                            self.cur.bump();
                        }
                        _ => break,
                    }
                }
                'e' | 'E' if has_digits && !has_exp => {
                    has_exp = true;
                    s.push(c);
                    self.cur.bump();
                    if matches!(self.cur.peek(), Some('+') | Some('-')) {
                        s.push(self.cur.bump().expect("peeked sign"));
                    }
                }
                _ => break,
            }
        }
        if !has_digits {
            return Err(self.cur.error("expected numeric literal"));
        }
        let datatype = if has_exp {
            xsd::DOUBLE
        } else if has_dot {
            xsd::DECIMAL
        } else {
            xsd::INTEGER
        };
        Ok(Term::Literal(Literal::typed(s, datatype)))
    }

    fn expect(&mut self, ch: char) -> Result<(), ParseError> {
        self.cur.skip_ws_and_comments();
        if self.cur.eat(ch) {
            Ok(())
        } else {
            Err(self.cur.error(format!(
                "expected '{ch}', found {}",
                self.cur
                    .peek()
                    .map(|c| format!("'{c}'"))
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }
}

fn is_local_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '%' | ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use crate::vocab::{foaf, xsd};

    fn count(src: &str) -> usize {
        parse(src).unwrap().graph.len()
    }

    #[test]
    fn lenient_clean_document_matches_strict() {
        let src = r#"
            @prefix : <http://example.org/> .
            :a :p 1 . :b :p 2 .
        "#;
        let (ds, errors) = parse_lenient(src);
        assert!(errors.is_empty());
        assert_eq!(ds.graph.len(), parse(src).unwrap().graph.len());
    }

    #[test]
    fn lenient_skips_corrupt_statement() {
        let src = r#"
            @prefix : <http://example.org/> .
            :a :p 1 .
            :b :::!garbage here .
            :c :p 3 .
        "#;
        assert!(parse(src).is_err());
        let (ds, errors) = parse_lenient(src);
        assert_eq!(errors.len(), 1);
        assert!(ds.iri("http://example.org/a").is_some());
        assert!(ds.iri("http://example.org/c").is_some());
        assert_eq!(
            ds.graph
                .triples()
                .filter(|t| ds.pool.term(t.object).as_literal().is_some())
                .count(),
            2
        );
    }

    #[test]
    fn lenient_dot_inside_string_does_not_end_recovery() {
        // The corrupt statement contains a string with ". :x :y" inside —
        // recovery must not resume mid-string.
        let src = "@prefix : <http://example.org/> .\n\
                   :a ::bad \"text with . inside\" more garbage .\n\
                   :c :p 3 .\n";
        let (ds, errors) = parse_lenient(src);
        assert_eq!(errors.len(), 1);
        assert!(ds.iri("http://example.org/c").is_some());
    }

    #[test]
    fn lenient_dot_inside_iri_and_comment_skipped() {
        let src = "@prefix : <http://example.org/> .\n\
                   :a ~~ <http://example.org/v1.2/x> # trailing . comment\n\
                   garbage .\n\
                   :c :p 3 .\n";
        let (ds, errors) = parse_lenient(src);
        assert_eq!(errors.len(), 1);
        assert!(ds.iri("http://example.org/c").is_some());
    }

    #[test]
    fn lenient_error_in_property_list_skips_whole_statement() {
        // The error strikes at depth 1, inside `[...]`. Recovery must not
        // accept the "1." inside the brackets as the statement terminator —
        // that would replay ":x :y :z ." as a phantom statement.
        let src = "@prefix : <http://example.org/> .\n\
                   :a :p [ :q %%% 1. :x :y :z . ] .\n\
                   :b :s 3 .\n";
        let (ds, errors) = parse_lenient(src);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(
            ds.iri("http://example.org/x").is_none(),
            "tail of the corrupt list replayed as a phantom statement"
        );
        assert!(ds.iri("http://example.org/b").is_some());
        assert_eq!(ds.graph.len(), 1);
    }

    #[test]
    fn lenient_error_in_nested_collection_skips_whole_statement() {
        let src = "@prefix : <http://example.org/> .\n\
                   :a :p ( 1 ( @@ 2. :x :y :z . ) ) .\n\
                   :b :s 3 .\n";
        let (ds, errors) = parse_lenient(src);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(ds.iri("http://example.org/x").is_none());
        assert!(ds.iri("http://example.org/b").is_some());
    }

    #[test]
    fn lenient_depth_resets_between_statements() {
        // Two corrupt statements, the first inside brackets: the elevated
        // depth from the first must not leak into recovery for the second.
        let src = "@prefix : <http://example.org/> .\n\
                   :a :p [ :q %% ] .\n\
                   :c !! plain garbage .\n\
                   :b :s 3 .\n";
        let (ds, errors) = parse_lenient(src);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(ds.iri("http://example.org/b").is_some());
    }

    #[test]
    fn lenient_multiple_corrupt_statements() {
        let src = "@prefix : <http://example.org/> .\n\
                   :a :p 1 .\n\
                   !!bad one .\n\
                   :b :p 2 .\n\
                   ??bad two .\n\
                   :c :p 3 .\n";
        let (ds, errors) = parse_lenient(src);
        assert_eq!(errors.len(), 2);
        assert_eq!(ds.graph.len(), 3);
        // Errors carry real positions for diagnostics.
        assert!(errors.iter().all(|e| e.line > 1));
    }

    #[test]
    fn lenient_prefixes_survive_corruption() {
        // The prefix defined before the corrupt line still resolves after.
        let src = "@prefix p: <http://example.org/> .\n\
                   broken junk .\n\
                   p:a p:q p:b .\n";
        let (ds, errors) = parse_lenient(src);
        assert_eq!(errors.len(), 1);
        assert_eq!(ds.graph.len(), 1);
        assert!(ds.iri("http://example.org/a").is_some());
    }

    #[test]
    fn lenient_unterminated_everything_terminates() {
        for src in [
            "@prefix : <http://e/> .\n:a :p \"never closed",
            "@prefix : <http://e/> .\n:a :p \"\"\"long never closed",
            "@prefix : <http://e/> .\n:a :p <never-closed",
            ":a",
            ".",
        ] {
            let (_, errors) = parse_lenient(src);
            assert!(!errors.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn paper_example_2_graph() {
        let src = r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :john foaf:age 23;
                  foaf:name "John";
                  foaf:knows :bob .
            :bob foaf:age 34;
                 foaf:name "Bob", "Robert" .
            :mary foaf:age 50, 65 .
        "#;
        let ds = parse(src).unwrap();
        assert_eq!(ds.graph.len(), 8);
        let john = ds.iri("http://example.org/john").unwrap();
        assert_eq!(ds.graph.neighbourhood(john).len(), 3);
        let mary = ds.iri("http://example.org/mary").unwrap();
        assert_eq!(ds.graph.neighbourhood(mary).len(), 2);
        // foaf:age 23 is an xsd:integer literal
        let age = ds.iri(foaf::AGE).unwrap();
        let objs: Vec<_> = ds.graph.objects(john, age).collect();
        assert_eq!(objs.len(), 1);
        let Term::Literal(l) = ds.pool.term(objs[0]) else {
            panic!("expected literal");
        };
        assert_eq!(l.lexical_form(), "23");
        assert_eq!(l.datatype(), xsd::INTEGER);
    }

    #[test]
    fn sparql_style_directives() {
        let src = r#"
            PREFIX ex: <http://example.org/>
            Base <http://base.org/>
            ex:a ex:p <rel> .
        "#;
        let ds = parse(src).unwrap();
        assert!(ds.iri("http://base.org/rel").is_some());
    }

    #[test]
    fn a_keyword_is_rdf_type() {
        let src = "@prefix : <http://e/> . :x a :Person .";
        let ds = parse(src).unwrap();
        assert!(ds.iri(crate::vocab::rdf::TYPE).is_some());
    }

    #[test]
    fn literal_forms() {
        let src = r#"
            @prefix : <http://e/> .
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            :x :p "plain", "typed"^^xsd:string, "tagged"@en-GB,
                 'single', """long
            string""", '''other long''' .
        "#;
        let ds = parse(src).unwrap();
        assert_eq!(ds.graph.len(), 6);
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::lang_string("tagged", "en-GB")))
            .is_some());
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::string("long\n            string")))
            .is_some());
    }

    #[test]
    fn numeric_shorthand_datatypes() {
        let src = "@prefix : <http://e/> . :x :p 42, -7, 3.14, -0.5, 1.0E3, 2e-2 .";
        let ds = parse(src).unwrap();
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::typed("42", xsd::INTEGER)))
            .is_some());
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::typed("3.14", xsd::DECIMAL)))
            .is_some());
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::typed("1.0E3", xsd::DOUBLE)))
            .is_some());
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::typed("2e-2", xsd::DOUBLE)))
            .is_some());
    }

    #[test]
    fn integer_then_statement_dot() {
        // The trailing dot terminates the statement, not the number.
        let src = "@prefix : <http://e/> . :x :p 42.";
        assert_eq!(count(src), 1);
    }

    #[test]
    fn boolean_shorthand() {
        let src = "@prefix : <http://e/> . :x :p true; :q false .";
        let ds = parse(src).unwrap();
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::boolean(true)))
            .is_some());
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::boolean(false)))
            .is_some());
    }

    #[test]
    fn blank_node_labels_and_anon() {
        let src = "@prefix : <http://e/> . _:b1 :p _:b2 . [] :q [ :r :o ] .";
        let ds = parse(src).unwrap();
        assert_eq!(ds.graph.len(), 3);
        assert!(ds.pool.get(&Term::blank("b1")).is_some());
    }

    #[test]
    fn nested_property_lists() {
        let src = "@prefix : <http://e/> . :x :p [ :q [ :r 1 ]; :s 2 ] .";
        assert_eq!(count(src), 4);
    }

    #[test]
    fn collections_expand_to_first_rest() {
        let src = "@prefix : <http://e/> . :x :p (1 2) .";
        let ds = parse(src).unwrap();
        // :x :p cell1, cell1 first/rest, cell2 first/rest = 5 triples
        assert_eq!(ds.graph.len(), 5);
        assert!(ds.iri(rdf::NIL).is_some());
    }

    #[test]
    fn empty_collection_is_nil() {
        let src = "@prefix : <http://e/> . :x :p () .";
        let ds = parse(src).unwrap();
        assert_eq!(ds.graph.len(), 1);
        let x = ds.iri("http://e/x").unwrap();
        let p = ds.iri("http://e/p").unwrap();
        let o = ds.graph.objects(x, p).next().unwrap();
        assert_eq!(ds.pool.term(o), &Term::iri(rdf::NIL));
    }

    #[test]
    fn iri_unicode_escapes() {
        let src = r"@prefix : <http://e/> . <http://e/A\U00000042> :p :o .";
        let ds = parse(src).unwrap();
        assert!(ds.iri("http://e/AB").is_some());
    }

    #[test]
    fn local_name_escapes() {
        let src = r"@prefix ex: <http://e/> . ex:with\,comma ex:p ex:o .";
        let ds = parse(src).unwrap();
        assert!(ds.iri("http://e/with,comma").is_some());
    }

    #[test]
    fn local_name_with_inner_dot() {
        let src = "@prefix ex: <http://e/> . ex:a.b ex:p ex:o .";
        let ds = parse(src).unwrap();
        assert!(ds.iri("http://e/a.b").is_some());
    }

    #[test]
    fn relative_iri_resolution() {
        let src = r#"
            @base <http://example.org/dir/doc> .
            <> <#frag> <other> .
            </abs> <//host/x> <http://full/y> .
        "#;
        let ds = parse(src).unwrap();
        assert!(ds.iri("http://example.org/dir/doc").is_some());
        assert!(ds.iri("http://example.org/dir/doc#frag").is_some());
        assert!(ds.iri("http://example.org/dir/other").is_some());
        assert!(ds.iri("http://example.org/abs").is_some());
        assert!(ds.iri("http://host/x").is_some());
        assert!(ds.iri("http://full/y").is_some());
    }

    #[test]
    fn comments_are_skipped() {
        let src = "# header\n@prefix : <http://e/> . # trailing\n:x :p :o . # end";
        assert_eq!(count(src), 1);
    }

    #[test]
    fn undefined_prefix_is_an_error() {
        let err = parse(":x :p :o .").unwrap_err();
        assert!(err.message.contains("undefined prefix"), "{err}");
    }

    #[test]
    fn unterminated_iri_is_an_error() {
        assert!(parse("<http://e/x :p :o .").is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse("@prefix : <http://e/> . :x :p \"abc .").is_err());
    }

    #[test]
    fn newline_in_short_string_is_an_error() {
        assert!(parse("@prefix : <http://e/> . :x :p \"a\nb\" .").is_err());
    }

    #[test]
    fn missing_dot_is_an_error() {
        let err = parse("@prefix : <http://e/> . :x :p :o").unwrap_err();
        assert!(err.message.contains("expected '.'"), "{err}");
    }

    #[test]
    fn literal_subject_is_an_error() {
        assert!(parse("@prefix : <http://e/> . \"lit\" :p :o .").is_err());
    }

    #[test]
    fn error_position_is_reported() {
        let err = parse("@prefix : <http://e/> .\n:x :p @bad .").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn trailing_semicolon_allowed() {
        let src = "@prefix : <http://e/> . :x :p :o ; .";
        assert_eq!(count(src), 1);
    }

    #[test]
    fn duplicate_triples_collapse() {
        let src = "@prefix : <http://e/> . :x :p :o . :x :p :o .";
        assert_eq!(count(src), 1);
    }

    #[test]
    fn parse_into_shares_pool() {
        let mut ds = Dataset::new();
        parse_into("@prefix : <http://e/> . :a :p :b .", &mut ds).unwrap();
        parse_into("@prefix : <http://e/> . :b :p :a .", &mut ds).unwrap();
        assert_eq!(ds.graph.len(), 2);
        assert_eq!(ds.pool.len(), 3); // :a, :p, :b shared
    }

    #[test]
    fn long_string_with_embedded_quotes() {
        let src = "@prefix : <http://e/> . :x :p \"\"\"she said \"hi\" twice\"\"\" .".to_string();
        let ds = parse(&src).unwrap();
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::string("she said \"hi\" twice")))
            .is_some());
    }

    #[test]
    fn unicode_escapes_in_strings() {
        let src = r#"@prefix : <http://e/> . :x :p "A\u0042\U00000043" ."#;
        let ds = parse(src).unwrap();
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::string("ABC")))
            .is_some());
    }

    #[test]
    fn empty_prefix_name() {
        // The default (empty) prefix is legal Turtle.
        let src = "@prefix : <http://e/> . : :p :o .";
        let ds = parse(src).unwrap();
        assert!(ds.iri("http://e/").is_some());
    }

    #[test]
    fn base_changes_mid_document() {
        let src = r#"
            @base <http://one.example/dir/> .
            <a> <p> <o> .
            @base <http://two.example/dir/> .
            <a> <p> <o> .
        "#;
        let ds = parse(src).unwrap();
        assert!(ds.iri("http://one.example/dir/a").is_some());
        assert!(ds.iri("http://two.example/dir/a").is_some());
    }

    #[test]
    fn prefix_redefinition_takes_effect() {
        let src =
            "@prefix p: <http://one/> . p:x p:q p:y .\n@prefix p: <http://two/> . p:x p:q p:y .";
        let ds = parse(src).unwrap();
        assert!(ds.iri("http://one/x").is_some());
        assert!(ds.iri("http://two/x").is_some());
    }

    #[test]
    fn nested_collections() {
        let src = "@prefix : <http://e/> . :x :p ((1) (2 3)) .";
        let ds = parse(src).unwrap();
        // outer list: 2 cells (4 triples) + :x:p (1) + inner lists: 1 cell
        // (2) + 2 cells (4) = 11 triples
        assert_eq!(ds.graph.len(), 11);
    }

    #[test]
    fn signed_and_decimal_shorthand_objects() {
        let src = "@prefix : <http://e/> . :x :p +5, -0.25, .5 .";
        let ds = parse(src).unwrap();
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::typed("+5", xsd::INTEGER)))
            .is_some());
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::typed("-0.25", xsd::DECIMAL)))
            .is_some());
        assert!(ds
            .pool
            .get(&Term::Literal(Literal::typed(".5", xsd::DECIMAL)))
            .is_some());
    }

    #[test]
    fn anonymous_subject_statement() {
        let src = "@prefix : <http://e/> . [ :p 1; :q 2 ] .";
        let ds = parse(src).unwrap();
        assert_eq!(ds.graph.len(), 2);
    }

    #[test]
    fn crlf_line_endings() {
        let src = "@prefix : <http://e/> .\r\n:x :p :o .\r\n";
        assert_eq!(parse(src).unwrap().graph.len(), 1);
    }

    #[test]
    fn error_on_literal_predicate() {
        assert!(parse("@prefix : <http://e/> . :x \"p\" :o .").is_err());
    }
}
